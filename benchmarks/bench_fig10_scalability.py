"""Figure 10 — training time versus number of machines (DW and GBDT).

The paper plots distributed DeepWalk time (minutes) and distributed GBDT time
(seconds) for 4/10/20/40 machines, half servers and half workers.  Shape to
reproduce: DW keeps improving up to 40 machines, GBDT stops improving beyond
20 because communication / uneven traffic dominates.

Three things are measured here:

* the calibrated cluster cost model evaluated at the paper's machine counts
  (the plotted series), including the dense/sparse communication account,
* an actual distributed DeepWalk / GBDT run on the simulated KunPeng cluster,
  which exercises the pull/push machinery end to end, and
* a dense-vs-sparse A/B of the DeepWalk training loop at matched effective
  update counts: the sparse pull/compute/push cycle must move at least 5x
  fewer embedding rows per round than full-matrix model averaging while
  reaching recall@top-1 within 2 % of it.

Running this file directly (``python -m benchmarks.bench_fig10_scalability``)
executes a tiny two-worker smoke of both training modes and fails on
exceptions or non-finite losses; CI uses that as the training smoke job.
"""

from __future__ import annotations

import numpy as np

from repro.core.evaluation import evaluate_scores
from repro.datagen.datasets import DatasetBuilder
from repro.features.basic import BasicFeatureExtractor
from repro.graph.builder import build_network
from repro.graph.random_walk import RandomWalkConfig
from repro.kunpeng import ClusterConfig
from repro.kunpeng.cost_model import (
    deepwalk_round_volume,
    estimate_deepwalk_time,
    scalability_curve,
)
from repro.models.distributed import DistributedGBDT
from repro.nrl.distributed import DistributedDeepWalk, DistributedDeepWalkConfig
from repro.nrl.embeddings import top1_neighbor_recall
from repro.nrl.word2vec import SkipGramConfig


def test_fig10_scalability_curve(benchmark):
    from benchmarks.conftest import run_once

    rows = run_once(benchmark, scalability_curve)

    print("\nFigure 10 — estimated training time vs number of machines")
    print(f"  {'machines':>9} {'DW (minutes)':>14} {'GBDT (seconds)':>16}")
    for row in rows:
        print(
            f"  {int(row['num_machines']):>9} {row['deepwalk_minutes']:>14.1f} "
            f"{row['gbdt_seconds']:>16.1f}"
        )

    print("  DW estimate with the sparse pull/push loop instead of model averaging:")
    for machines in (4, 10, 20, 40):
        dense = estimate_deepwalk_time(machines)
        sparse = estimate_deepwalk_time(machines, mode="sparse")
        print(
            f"  {machines:>9} {sparse.total_minutes:>14.1f} "
            f"(communication {dense.communication_seconds:.0f}s -> "
            f"{sparse.communication_seconds:.0f}s)"
        )
        assert sparse.communication_seconds < dense.communication_seconds

    deepwalk = [row["deepwalk_minutes"] for row in rows]
    gbdt = [row["gbdt_seconds"] for row in rows]
    assert deepwalk == sorted(deepwalk, reverse=True), "DW time must fall with more machines"
    assert gbdt[2] < gbdt[0], "GBDT should improve from 4 to 20 machines"
    assert gbdt[3] > 0.8 * gbdt[2], "GBDT should stop improving from 20 to 40 machines"


def test_fig10_distributed_training_runs(benchmark, bench_world):
    """Exercise the real PS training loop and report its recorded workload."""
    from benchmarks.conftest import run_once

    builder = DatasetBuilder(bench_world, network_days=25, train_days=7)
    dataset = builder.build(builder.earliest_test_day())
    network = build_network(dataset.network_transactions)
    extractor = BasicFeatureExtractor(bench_world.profiles_by_id)
    train = extractor.extract(dataset.train_transactions)
    test = extractor.extract(dataset.test_transactions)

    def _run():
        deepwalk = DistributedDeepWalk(
            DistributedDeepWalkConfig(
                cluster=ClusterConfig(num_machines=4),
                walk=RandomWalkConfig(walk_length=15, num_walks_per_node=3),
                skipgram=SkipGramConfig(dimension=16, window=4, epochs=1, batch_size=2048),
                rounds_per_epoch=3,
                seed=0,
            )
        ).fit(network)
        gbdt = DistributedGBDT(
            cluster=ClusterConfig(num_machines=4), num_trees=30, seed=0
        ).fit(train.values, train.labels)
        scores = gbdt.predict_proba(test.values)
        return {
            "dw_workload": deepwalk.workload_summary(),
            "dw_losses": deepwalk.loss_history,
            "gbdt_f1": evaluate_scores(test.labels, scores).f1,
        }

    result = run_once(benchmark, _run)
    print("\nFigure 10 companion — simulated PS run on 4 machines")
    print(f"  DW worker compute units : {result['dw_workload']['worker_compute_units']:.0f}")
    print(f"  DW values transferred   : {result['dw_workload']['values_transferred']:.0f}")
    print(f"  DW rows per round       : {result['dw_workload']['values_per_round']:.0f}")
    print(f"  distributed GBDT test F1: {result['gbdt_f1']:.2%}")
    assert result["gbdt_f1"] > 0.0
    assert result["dw_workload"]["values_transferred"] > 0
    assert result["dw_workload"]["rounds_recorded"] > 0
    assert np.isfinite(result["dw_losses"]).all()


def _ab_config(mode: str, rounds_per_epoch: int, epochs: int) -> DistributedDeepWalkConfig:
    """Shared dense/sparse A/B configuration (only budget and mode differ)."""
    return DistributedDeepWalkConfig(
        cluster=ClusterConfig(num_machines=4),
        walk=RandomWalkConfig(walk_length=20, num_walks_per_node=3, batch_size=64),
        skipgram=SkipGramConfig(dimension=16, window=4, epochs=epochs, batch_size=128, negatives=3),
        mode=mode,
        rounds_per_epoch=rounds_per_epoch,
        seed=0,
    )


def test_fig10_dense_vs_sparse_communication(benchmark, bench_world):
    """The tentpole claim: row-sparse pull/push cuts per-round traffic >= 5x
    at matched embedding quality.

    Budgets are matched on *effective* updates at the shared model: a sparse
    round applies every worker's minibatch additively (W minibatches/round),
    while a dense model-average round nets out to about one minibatch of
    progress regardless of W — so dense gets W times as many rounds.  Dense
    per-round traffic does not depend on the round count, which keeps the
    communication comparison fair.
    """
    from benchmarks.conftest import run_once

    builder = DatasetBuilder(bench_world, network_days=25, train_days=7)
    dataset = builder.build(builder.earliest_test_day())
    network = build_network(dataset.network_transactions)
    communities = {
        node: bench_world.profiles_by_id[node].community
        for node in network.nodes()
        if node in bench_world.profiles_by_id
    }
    num_workers = ClusterConfig(num_machines=4).num_workers

    def _run():
        results = {}
        for mode, epochs in (("sparse", 8), ("dense", 8 * num_workers)):
            model = DistributedDeepWalk(_ab_config(mode, 2000, epochs)).fit(network)
            assert np.isfinite(model.loss_history).all()
            summary = model.workload_summary()
            results[mode] = {
                "values_per_round": summary["values_per_round"],
                "rounds": model.rounds_completed,
                "recall": top1_neighbor_recall(model.embeddings(), communities),
                "vocab_rows": len(model.vocabulary_),
            }
        return results

    results = run_once(benchmark, _run)
    dense, sparse = results["dense"], results["sparse"]
    reduction = dense["values_per_round"] / sparse["values_per_round"]
    predicted = deepwalk_round_volume(
        dense["vocab_rows"], num_workers, mode="dense"
    ) / deepwalk_round_volume(
        dense["vocab_rows"], num_workers, mode="sparse", batch_pairs=128, negatives=3
    )

    print("\nFigure 10 A/B — dense model averaging vs sparse pull/push (4 machines)")
    print(f"  {'':>8} {'rows/round':>12} {'rounds':>8} {'recall@top-1':>13}")
    for mode in ("dense", "sparse"):
        row = results[mode]
        print(
            f"  {mode:>8} {row['values_per_round']:>12.0f} {row['rounds']:>8} "
            f"{row['recall']:>13.3f}"
        )
    print(f"  measured per-round traffic reduction: {reduction:.1f}x")
    print(f"  cost-model predicted lower bound    : {predicted:.1f}x")

    assert reduction >= 5.0, f"sparse mode must move >=5x fewer rows/round, got {reduction:.1f}x"
    assert sparse["recall"] >= dense["recall"] - 0.02, (
        f"sparse recall {sparse['recall']:.3f} must be within 2% of dense "
        f"{dense['recall']:.3f}"
    )


def _training_smoke() -> None:
    """Tiny two-worker run of both modes; raises on exceptions or NaN loss."""
    from repro.datagen import generate_world
    from repro.datagen.profiles import ProfileConfig
    from repro.datagen.transactions import WorldConfig

    world = generate_world(
        WorldConfig(
            profile=ProfileConfig(num_users=120, num_communities=4, seed=7),
            num_days=12,
            transactions_per_user_per_day=0.8,
            seed=7,
        )
    )
    builder = DatasetBuilder(world, network_days=8, train_days=2)
    dataset = builder.build(builder.earliest_test_day())
    network = build_network(dataset.network_transactions)
    print(f"smoke network: {network.num_nodes} nodes, {network.num_edges} edges")
    for mode in ("dense", "sparse"):
        model = DistributedDeepWalk(
            DistributedDeepWalkConfig(
                cluster=ClusterConfig(num_machines=4),  # 2 servers + 2 workers
                walk=RandomWalkConfig(walk_length=10, num_walks_per_node=2, batch_size=32),
                skipgram=SkipGramConfig(dimension=8, window=3, epochs=2, batch_size=64),
                mode=mode,
                rounds_per_epoch=10,
                seed=1,
            )
        ).fit(network)
        losses = np.asarray(model.loss_history)
        if losses.size == 0 or not np.isfinite(losses).all():
            raise AssertionError(f"{mode} mode produced empty or non-finite losses")
        summary = model.workload_summary()
        print(
            f"  {mode:>6}: {model.rounds_completed} rounds, "
            f"{summary['values_per_round']:.0f} rows/round, "
            f"final loss {losses[-1]:.3f}"
        )
    print("training smoke OK")


if __name__ == "__main__":
    _training_smoke()
