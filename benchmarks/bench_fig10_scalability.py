"""Figure 10 — training time versus number of machines (DW and GBDT).

The paper plots distributed DeepWalk time (minutes) and distributed GBDT time
(seconds) for 4/10/20/40 machines, half servers and half workers.  Shape to
reproduce: DW keeps improving up to 40 machines, GBDT stops improving beyond
20 because communication / uneven traffic dominates.

Two things are measured here:

* the calibrated cluster cost model evaluated at the paper's machine counts
  (the plotted series), and
* an actual distributed DeepWalk / GBDT run on the simulated KunPeng cluster,
  which exercises the pull/push/model-average machinery end to end.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.core.evaluation import evaluate_scores
from repro.datagen.datasets import DatasetBuilder
from repro.features.basic import BasicFeatureExtractor
from repro.graph.builder import build_network
from repro.graph.random_walk import RandomWalkConfig
from repro.kunpeng import ClusterConfig
from repro.kunpeng.cost_model import scalability_curve
from repro.models.distributed import DistributedGBDT
from repro.nrl.distributed import DistributedDeepWalk, DistributedDeepWalkConfig
from repro.nrl.word2vec import SkipGramConfig


def test_fig10_scalability_curve(benchmark):
    rows = run_once(benchmark, scalability_curve)

    print("\nFigure 10 — estimated training time vs number of machines")
    print(f"  {'machines':>9} {'DW (minutes)':>14} {'GBDT (seconds)':>16}")
    for row in rows:
        print(
            f"  {int(row['num_machines']):>9} {row['deepwalk_minutes']:>14.1f} "
            f"{row['gbdt_seconds']:>16.1f}"
        )

    deepwalk = [row["deepwalk_minutes"] for row in rows]
    gbdt = [row["gbdt_seconds"] for row in rows]
    assert deepwalk == sorted(deepwalk, reverse=True), "DW time must fall with more machines"
    assert gbdt[2] < gbdt[0], "GBDT should improve from 4 to 20 machines"
    assert gbdt[3] > 0.8 * gbdt[2], "GBDT should stop improving from 20 to 40 machines"


def test_fig10_distributed_training_runs(benchmark, bench_world):
    """Exercise the real PS training loop and report its recorded workload."""
    builder = DatasetBuilder(bench_world, network_days=25, train_days=7)
    dataset = builder.build(builder.earliest_test_day())
    network = build_network(dataset.network_transactions)
    extractor = BasicFeatureExtractor(bench_world.profiles_by_id)
    train = extractor.extract(dataset.train_transactions)
    test = extractor.extract(dataset.test_transactions)

    def _run():
        deepwalk = DistributedDeepWalk(
            DistributedDeepWalkConfig(
                cluster=ClusterConfig(num_machines=4),
                walk=RandomWalkConfig(walk_length=15, num_walks_per_node=3),
                skipgram=SkipGramConfig(dimension=16, window=4, epochs=1, batch_size=2048),
                rounds_per_epoch=3,
                seed=0,
            )
        ).fit(network)
        gbdt = DistributedGBDT(
            cluster=ClusterConfig(num_machines=4), num_trees=30, seed=0
        ).fit(train.values, train.labels)
        scores = gbdt.predict_proba(test.values)
        return {
            "dw_workload": deepwalk.workload_summary(),
            "gbdt_f1": evaluate_scores(test.labels, scores).f1,
        }

    result = run_once(benchmark, _run)
    print("\nFigure 10 companion — simulated PS run on 4 machines")
    print(f"  DW worker compute units : {result['dw_workload']['worker_compute_units']:.0f}")
    print(f"  DW values transferred   : {result['dw_workload']['values_transferred']:.0f}")
    print(f"  distributed GBDT test F1: {result['gbdt_f1']:.2%}")
    assert result["gbdt_f1"] > 0.0
    assert result["dw_workload"]["values_transferred"] > 0
