"""Figure 11 — F1 versus the dimension of the learned user node embeddings.

The paper sweeps 8/16/32/64 dimensions for S2V / DW / DW+S2V with GBDT and
finds 32 to be the best: too few dimensions cannot hold the topological
information, too many overfit.  On the synthetic world the exact optimum can
shift by one grid point, so the assertion is only that the middle dimensions
are not dominated by both extremes.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.core.config import FeatureSetName


DIMENSIONS = (8, 16, 32, 64)


def test_fig11_embedding_dimension_sweep(benchmark, bench_runner):
    def _run():
        return bench_runner.run_dimension_sweep(
            DIMENSIONS,
            feature_sets=(FeatureSetName.BASIC_S2V, FeatureSetName.BASIC_DW),
        )

    results = run_once(benchmark, _run)

    print("\nFigure 11 — F1 vs embedding dimension (GBDT classifier)")
    header = "  " + f"{'feature set':<16}" + "".join(f"{d:>8}" for d in DIMENSIONS)
    print(header)
    for feature_set, by_dim in results.items():
        row = "  " + f"{feature_set:<16}" + "".join(f"{by_dim[d]:>8.2%}" for d in DIMENSIONS)
        print(row)

    for by_dim in results.values():
        assert set(by_dim) == set(DIMENSIONS)
        assert all(0.0 <= value <= 1.0 for value in by_dim.values())
        # The mid-range dimensions should be competitive with the extremes.
        assert max(by_dim[16], by_dim[32]) >= min(by_dim[8], by_dim[64]) - 0.05
