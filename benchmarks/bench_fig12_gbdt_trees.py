"""Figure 12 — F1 versus the number of GBDT decision trees.

The paper sweeps 100/200/400/800 trees for four feature sets and sees F1 rise
until 400 trees, then dip at 800 (overfitting).  The benchmark evaluates the
same tree counts from a single staged model per feature set; on the reduced
synthetic world the assertion is that more trees help initially and that the
curve is not monotonically increasing forever (i.e. the largest budget is not
required to reach the best score).

The file also hosts the exact-vs-histogram A/B at the paper's 400-tree
budget: ``tree_method="hist"`` must fit at least 3x faster than ``"exact"``
with test AUC within 0.01.  Running the file directly
(``python -m benchmarks.bench_fig12_gbdt_trees``) executes a reduced smoke of
the same A/B plus a distributed histogram-aggregation run; CI uses that as
the GBDT training smoke job.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import BENCH_SCALE, run_once
from repro.core.config import FeatureSetName

TREE_COUNTS = (100, 200, 400, 800) if BENCH_SCALE == "paper" else (20, 40, 80, 160)

#: Tree budget of the exact-vs-hist A/B — the paper's production setting.
AB_TREES = 400


def test_fig12_gbdt_tree_sweep(benchmark, bench_runner):
    def _run():
        return bench_runner.run_tree_sweep(
            TREE_COUNTS,
            feature_sets=(FeatureSetName.BASIC, FeatureSetName.BASIC_DW),
        )

    results = run_once(benchmark, _run)

    print("\nFigure 12 — F1 vs number of GBDT trees")
    header = "  " + f"{'feature set':<16}" + "".join(f"{c:>8}" for c in TREE_COUNTS)
    print(header)
    for feature_set, by_count in results.items():
        row = "  " + f"{feature_set:<16}" + "".join(
            f"{by_count[c]:>8.2%}" for c in TREE_COUNTS
        )
        print(row)

    for by_count in results.values():
        assert set(by_count) == set(TREE_COUNTS)
        assert all(0.0 <= value <= 1.0 for value in by_count.values())
        # The best score should be reachable before the largest tree budget
        # (the paper's curve peaks at 400 of 800), within a small tolerance.
        best = max(by_count.values())
        assert max(by_count[c] for c in TREE_COUNTS[1:-1]) >= best - 0.08


def _fit_and_score(method, train, test, *, num_trees, seed=0):
    """Fit one GBDT variant; returns (fit_seconds, test AUC)."""
    from repro.core.evaluation import roc_auc
    from repro.models.gbdt import GradientBoostingClassifier

    start = time.perf_counter()
    model = GradientBoostingClassifier(
        num_trees=num_trees, tree_method=method, seed=seed
    ).fit(train.values, train.labels)
    fit_seconds = time.perf_counter() - start
    auc = roc_auc(test.labels, model.predict_proba(test.values))
    return fit_seconds, auc


def test_fig12_exact_vs_hist_ab(benchmark, bench_world):
    """The tentpole A/B: histogram binning must cut the 400-tree fit time by
    at least 3x at AUC parity (within 0.01) on the benchmark dataset."""
    from repro.datagen.datasets import DatasetBuilder
    from repro.features.basic import BasicFeatureExtractor

    builder = DatasetBuilder(bench_world, network_days=25, train_days=7)
    dataset = builder.build(builder.earliest_test_day())
    extractor = BasicFeatureExtractor(bench_world.profiles_by_id)
    train = extractor.extract(dataset.train_transactions)
    test = extractor.extract(dataset.test_transactions)

    def _run():
        return {
            method: _fit_and_score(method, train, test, num_trees=AB_TREES)
            for method in ("exact", "hist")
        }

    results = run_once(benchmark, _run)
    exact_seconds, exact_auc = results["exact"]
    hist_seconds, hist_auc = results["hist"]
    speedup = exact_seconds / hist_seconds

    print(f"\nFigure 12 A/B — exact vs hist tree method at {AB_TREES} trees")
    print(f"  {'method':>8} {'fit (s)':>9} {'test AUC':>9}")
    for method, (seconds, auc) in results.items():
        print(f"  {method:>8} {seconds:>9.2f} {auc:>9.4f}")
    print(f"  speedup: {speedup:.1f}x")

    assert speedup >= 3.0, f"hist must be >=3x faster at {AB_TREES} trees, got {speedup:.1f}x"
    assert abs(hist_auc - exact_auc) <= 0.01, (
        f"hist AUC {hist_auc:.4f} must be within 0.01 of exact {exact_auc:.4f}"
    )


def _gbdt_smoke() -> None:
    """Reduced exact-vs-hist A/B plus a distributed histogram run (CI smoke)."""
    import numpy as np

    from repro.core.evaluation import roc_auc
    from repro.kunpeng import ClusterConfig, gbdt_round_volume
    from repro.models.distributed import DistributedGBDT

    rng = np.random.default_rng(0)

    class _Matrix:
        def __init__(self, values, labels):
            self.values, self.labels = values, labels

    def _make(num_rows):
        values = rng.normal(size=(num_rows, 12))
        logits = 1.5 * values[:, 0] - values[:, 1] + 0.8 * values[:, 2] * values[:, 3]
        labels = (logits + rng.normal(scale=0.5, size=num_rows) > 0.5).astype(float)
        return _Matrix(values, labels)

    train, test = _make(4000), _make(1000)
    results = {
        method: _fit_and_score(method, train, test, num_trees=120)
        for method in ("exact", "hist")
    }
    speedup = results["exact"][0] / results["hist"][0]
    auc_gap = abs(results["hist"][1] - results["exact"][1])
    print(
        f"smoke A/B at 120 trees: exact {results['exact'][0]:.2f}s, "
        f"hist {results['hist'][0]:.2f}s ({speedup:.1f}x), AUC gap {auc_gap:.4f}"
    )
    if speedup < 2.0:
        raise AssertionError(f"hist smoke speedup below 2x: {speedup:.1f}x")
    if auc_gap > 0.02:
        raise AssertionError(f"hist smoke AUC gap above 0.02: {auc_gap:.4f}")

    # Distributed histogram aggregation: per-round traffic must stay within
    # the analytic bins x features bound, i.e. independent of the row count.
    num_bins = 16
    model = DistributedGBDT(
        cluster=ClusterConfig(num_machines=4),
        num_trees=10,
        num_bins=num_bins,
        seed=0,
    ).fit(train.values, train.labels)
    summary = model.cluster.workload_summary()
    features_per_tree = max(1, int(round(0.4 * train.values.shape[1])))
    bound = gbdt_round_volume(
        train.values.shape[0],
        features_per_tree,
        ClusterConfig(num_machines=4).num_workers,
        mode="hist",
        num_bins=num_bins,
    )
    print(
        f"distributed hist: {summary['values_per_round']:.0f} values/round "
        f"(bound {bound:.0f}), {model.stats.rounds} rounds"
    )
    if summary["values_per_round"] > bound:
        raise AssertionError("histogram round volume exceeded the analytic bound")
    accuracy = (model.predict(test.values) == test.labels).mean()
    if accuracy < 0.8:
        raise AssertionError(f"distributed hist smoke accuracy too low: {accuracy:.3f}")
    print(f"distributed hist test accuracy: {accuracy:.3f}")


if __name__ == "__main__":
    _gbdt_smoke()
