"""Figure 12 — F1 versus the number of GBDT decision trees.

The paper sweeps 100/200/400/800 trees for four feature sets and sees F1 rise
until 400 trees, then dip at 800 (overfitting).  The benchmark evaluates the
same tree counts from a single staged model per feature set; on the reduced
synthetic world the assertion is that more trees help initially and that the
curve is not monotonically increasing forever (i.e. the largest budget is not
required to reach the best score).
"""

from __future__ import annotations

import os

from benchmarks.conftest import BENCH_SCALE, run_once
from repro.core.config import FeatureSetName

TREE_COUNTS = (100, 200, 400, 800) if BENCH_SCALE == "paper" else (20, 40, 80, 160)


def test_fig12_gbdt_tree_sweep(benchmark, bench_runner):
    def _run():
        return bench_runner.run_tree_sweep(
            TREE_COUNTS,
            feature_sets=(FeatureSetName.BASIC, FeatureSetName.BASIC_DW),
        )

    results = run_once(benchmark, _run)

    print("\nFigure 12 — F1 vs number of GBDT trees")
    header = "  " + f"{'feature set':<16}" + "".join(f"{c:>8}" for c in TREE_COUNTS)
    print(header)
    for feature_set, by_count in results.items():
        row = "  " + f"{feature_set:<16}" + "".join(
            f"{by_count[c]:>8.2%}" for c in TREE_COUNTS
        )
        print(row)

    for by_count in results.values():
        assert set(by_count) == set(TREE_COUNTS)
        assert all(0.0 <= value <= 1.0 for value in by_count.values())
        # The best score should be reachable before the largest tree budget
        # (the paper's curve peaks at 400 of 800), within a small tolerance.
        best = max(by_count.values())
        assert max(by_count[c] for c in TREE_COUNTS[1:-1]) >= best - 0.08
