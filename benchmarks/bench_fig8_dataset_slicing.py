"""Figure 8 — construction of the rolling T+1 evaluation datasets.

The figure illustrates how each test day is paired with the preceding 14 days
of labelled training records and the 90 days of records before that used only
to build the transaction network, shifting forward one day at a time over a
continuous week.  The benchmark measures the slicing itself over the synthetic
world and verifies the invariants of the construction.
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_NETWORK_DAYS, BENCH_TRAIN_DAYS, run_once
from repro.datagen.datasets import RollingDatasets


def test_fig8_rolling_dataset_construction(benchmark, bench_world):
    def _run():
        return RollingDatasets.build(
            bench_world,
            num_datasets=7,
            network_days=BENCH_NETWORK_DAYS,
            train_days=BENCH_TRAIN_DAYS,
        )

    rolling = run_once(benchmark, _run)

    print("\nFigure 8 — rolling T+1 datasets (synthetic world)")
    for dataset in rolling:
        spec = dataset.spec
        print(
            f"  test day {spec.test_day}: network days [{spec.network_start}, {spec.network_end}), "
            f"train days [{spec.train_start}, {spec.train_end}), "
            f"{len(dataset.network_transactions)} network / {len(dataset.train_transactions)} train / "
            f"{len(dataset.test_transactions)} test transactions, "
            f"train fraud rate {dataset.class_balance():.2%}"
        )

    assert len(rolling) == 7
    days = [d.spec.test_day for d in rolling]
    assert days == list(range(days[0], days[0] + 7))
    for dataset in rolling:
        assert dataset.spec.network_end - dataset.spec.network_start == BENCH_NETWORK_DAYS
        assert dataset.spec.train_end - dataset.spec.train_start == BENCH_TRAIN_DAYS
        assert dataset.class_balance() < 0.2
