"""Figure 9 — recall of the top 1 % most suspicious transactions per detector.

Paper shape: IF is far below the rest (outliers are usually not fraud),
rule-based ID3/C5.0 land in the middle, LR and GBDT are best with GBDT
slightly ahead.
"""

from __future__ import annotations

from benchmarks.conftest import run_once


def test_fig9_recall_at_top_1_percent(benchmark, bench_runner):
    results = run_once(benchmark, bench_runner.run_recall_at_top)

    print("\nFigure 9 — rec@top 1% per detection method (synthetic world)")
    for name in ("if", "id3", "c50", "lr", "gbdt"):
        print(f"  {name.upper():>5}: {results[name]:.2%}")

    assert set(results) == {"if", "id3", "c50", "lr", "gbdt"}
    assert all(0.0 <= value <= 1.0 for value in results.values())
    # IF should not beat the best classifier on ranking the most suspicious cases.
    assert results["if"] <= max(results["gbdt"], results["lr"]) + 1e-9
