"""Process-backend parameter server: measured wall-clock speedup (PR 6).

Every other benchmark in this directory times *simulated* distributed
training — one Python process playing every role.  This one measures real
hardware parallelism: the same workloads run once on the ``inline`` backend
and once on the ``process`` backend (each PS shard a live OS process applying
updates to shared-memory blocks, see :mod:`repro.kunpeng.parallel`), and the
wall-clock ratio is reported per worker count.

Three workloads:

* ``ps_round`` — a controlled pull/compute/push microbench against one
  parameter matrix.  Pushes are the expensive ``np.subtract.at`` scatter the
  real trainers use, which is exactly the work the process backend offloads
  to the shard processes.  The final matrix checksum must be **bit-exact**
  across backends (same numpy expressions, same per-shard op order).
* ``deepwalk_sparse`` — :class:`~repro.nrl.distributed.DistributedDeepWalk`
  in the paper's row-sparse pull/push mode on a small generated network.
* ``gbdt_hist`` — :class:`~repro.models.distributed.DistributedGBDT` with
  PS-side histogram aggregation on synthetic classification data.

Each process-backend run also becomes a :class:`~repro.kunpeng.MeasuredRound`;
:meth:`ClusterCostModel.calibrate` fits the four cost constants to those
measurements and the bench asserts the calibrated model's relative error
stays within :data:`CALIBRATION_ERROR_BOUND` — the model-validation loop the
simulated backend could never close.

Wall-clock speedup needs real cores.  Perf assertions are therefore gated on
the CPU count (and the JSON records ``perf_asserts_active`` honestly): the
``--smoke`` assert (two-worker speedup >= :data:`SMOKE_SPEEDUP_FLOOR`) needs
at least :data:`SMOKE_MIN_CPUS` CPUs, the full-mode monotone 1 -> 2 -> 4
worker assert needs :data:`FULL_MIN_CPUS`.  Timings are recorded either way.

Run ``python -m benchmarks.bench_parallel_ps --smoke`` (the CI job) or
without flags for the full 1/2/4-worker sweep.  Results are persisted to the
repo-root ``BENCH_parallel_ps.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.datagen import generate_world
from repro.datagen.datasets import DatasetBuilder
from repro.datagen.profiles import ProfileConfig
from repro.datagen.transactions import WorldConfig
from repro.graph.builder import build_network
from repro.graph.random_walk import RandomWalkConfig
from repro.kunpeng import ClusterConfig, ClusterCostModel, KunPengCluster, MeasuredRound
from repro.models.distributed import DistributedGBDT
from repro.nrl.distributed import DistributedDeepWalk, DistributedDeepWalkConfig
from repro.nrl.word2vec import SkipGramConfig

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_parallel_ps.json"

#: Stated bound on the calibrated cost model's per-measurement relative error.
CALIBRATION_ERROR_BOUND = 0.5

#: The CI smoke bar: two process shards vs inline on the microbench.
SMOKE_SPEEDUP_FLOOR = 1.3
SMOKE_MIN_CPUS = 2

#: Full mode asserts monotone speedup across 1/2/4 workers, which needs the
#: driver plus four shard processes to hold real cores simultaneously.
FULL_MIN_CPUS = 6

#: Worker counts map to total machines (half servers, half workers): the
#: paper's topology, so ``workers`` also equals the number of shard processes.
WORKERS_TO_MACHINES = {1: 2, 2: 4, 4: 8}


def cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


# ---------------------------------------------------------------------------
# Workload 1: pull/compute/push microbench
# ---------------------------------------------------------------------------


def ps_round_workload(
    backend: str,
    num_machines: int,
    *,
    rows: int = 24576,
    dim: int = 48,
    batch: int = 8192,
    rounds: int = 8,
    seed: int = 0,
) -> Dict[str, object]:
    """Synchronous BSP rounds against one row-sharded matrix.

    Per round every worker pulls a row batch, computes a gradient from the
    pulled values, and pushes it back.  All pulls happen before all pushes
    within a round, so both backends apply the same per-shard op sequence and
    the final checksum is bit-exact.  A one-row-per-shard probe pull closes
    each round — on the process backend that fences every shard, so the
    recorded round time includes the full apply cost, not just the enqueue.
    """
    config = ClusterConfig(num_machines=num_machines)
    rng = np.random.default_rng(seed)
    matrix = (rng.random((rows, dim)) - 0.5) / dim
    boundaries = np.linspace(0, rows, config.num_servers + 1).astype(np.int64)
    probe = boundaries[:-1]  # one owned row per shard: fences everything
    with KunPengCluster(config, backend=backend) as cluster:
        cluster.create_parameter("w", matrix)
        num_workers = cluster.config.num_workers
        batches = [
            rng.integers(0, rows, size=batch).astype(np.int64)
            for _ in range(rounds * num_workers)
        ]
        round_seconds: List[float] = []
        start_all = time.perf_counter()
        index = 0
        for _ in range(rounds):
            cluster.begin_round()
            start = time.perf_counter()
            pulled_batches = []
            for worker in range(num_workers):
                pulled_batches.append(cluster.pull_row_block("w", batches[index + worker]))
            for worker in range(num_workers):
                gradients = np.tanh(pulled_batches[worker]) * 0.1
                cluster.push_row_block(
                    "w", batches[index + worker], gradients, learning_rate=0.05
                )
            index += num_workers
            cluster.pull_row_block("w", probe)
            round_seconds.append(time.perf_counter() - start)
            cluster.end_round()
        final = cluster.pull_matrix("w")
        total_seconds = time.perf_counter() - start_all
        summary = cluster.workload_summary()
    return {
        "backend": backend,
        "num_machines": num_machines,
        "num_workers": int(summary["num_workers"]),
        "rounds": rounds,
        "total_seconds": total_seconds,
        "round_seconds": round_seconds,
        "rows_per_second": rounds * int(summary["num_workers"]) * batch / total_seconds,
        "checksum": float(final.sum()),
        "compute_units": float(rounds * int(summary["num_workers"]) * batch * dim) / 1e6,
        "values_per_round": float(summary["values_per_round"]),
    }


# ---------------------------------------------------------------------------
# Workload 2/3: the real distributed trainers
# ---------------------------------------------------------------------------


def build_bench_network(seed: int = 7):
    """A small-but-real transaction network for the DeepWalk workload."""
    world = generate_world(
        WorldConfig(
            profile=ProfileConfig(num_users=150, num_communities=4, seed=seed),
            num_days=12,
            transactions_per_user_per_day=0.8,
            seed=seed,
        )
    )
    builder = DatasetBuilder(world, network_days=8, train_days=2)
    dataset = builder.build(builder.earliest_test_day())
    return build_network(dataset.network_transactions)


def _warm_shards(cluster: KunPengCluster) -> None:
    """Spawn the shard processes before the timer starts.

    A real cluster's server nodes are already up when training begins; hosting
    a one-row-per-shard throwaway parameter forces every lazy shard handle to
    spawn so ``fit`` timings measure training, not process startup.  (The
    microbench gets this for free: its ``create_parameter`` precedes the
    timer.)  Harmless on the inline backend.
    """
    cluster.create_parameter("_warmup", np.zeros((len(cluster.servers), 1)))


def deepwalk_workload(backend: str, num_machines: int, network) -> Dict[str, object]:
    config = DistributedDeepWalkConfig(
        cluster=ClusterConfig(num_machines=num_machines),
        walk=RandomWalkConfig(walk_length=12, num_walks_per_node=4, batch_size=64),
        skipgram=SkipGramConfig(dimension=32, window=3, epochs=3, batch_size=256),
        mode="sparse",
        rounds_per_epoch=8,
        backend=backend,
        seed=11,
    )
    model = DistributedDeepWalk(config)
    _warm_shards(model.cluster)
    start = time.perf_counter()
    model.fit(network)
    total_seconds = time.perf_counter() - start
    summary = model.workload_summary()
    model.close()
    rounds = max(1, int(summary["rounds_recorded"]))
    return {
        "backend": backend,
        "num_machines": num_machines,
        "num_workers": int(summary["num_workers"]),
        "rounds": rounds,
        "total_seconds": total_seconds,
        "compute_units": summary["worker_compute_units"] / 1e3,
        "values_per_round": float(summary["values_per_round"]),
        "checksum": float(np.sum(model.loss_history)),
    }


def gbdt_workload(
    backend: str, num_machines: int, features: np.ndarray, labels: np.ndarray
) -> Dict[str, object]:
    model = DistributedGBDT(
        cluster=ClusterConfig(num_machines=num_machines),
        num_trees=40,
        tree_method="hist",
        backend=backend,
        seed=0,
    )
    _warm_shards(model.cluster)
    start = time.perf_counter()
    model.fit(features, labels)
    total_seconds = time.perf_counter() - start
    summary = model.cluster.workload_summary()
    probabilities = model.predict_proba(features)
    model.close()
    rounds = max(1, int(summary["rounds_recorded"]))
    return {
        "backend": backend,
        "num_machines": num_machines,
        "num_workers": int(summary["num_workers"]),
        "rounds": rounds,
        "total_seconds": total_seconds,
        "compute_units": summary["worker_compute_units"] / 1e3,
        "values_per_round": float(summary["values_per_round"]),
        "checksum": float(probabilities.sum()),
    }


def synthetic_classification(num_rows: int = 6000, num_features: int = 10, seed: int = 7):
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(num_rows, num_features))
    logits = features @ rng.normal(size=num_features) + 0.3 * features[:, 0] * features[:, 1]
    labels = (logits + rng.normal(scale=0.5, size=num_rows) > 0.0).astype(np.float64)
    return features, labels


# ---------------------------------------------------------------------------
# Sweep + calibration
# ---------------------------------------------------------------------------


def sweep_workload(
    name: str,
    runner: Callable[[str, int], Dict[str, object]],
    worker_counts: List[int],
) -> Dict[str, object]:
    """Run ``runner`` on both backends per worker count; calibrate on process."""
    entries: List[Dict[str, object]] = []
    measurements: List[MeasuredRound] = []
    checksums_match = True
    for workers in worker_counts:
        num_machines = WORKERS_TO_MACHINES[workers]
        inline = runner("inline", num_machines)
        process = runner("process", num_machines)
        checksums_match = checksums_match and inline["checksum"] == process["checksum"]
        measurements.append(
            MeasuredRound(
                cluster=ClusterConfig(num_machines=num_machines),
                total_compute_units=float(process["compute_units"]),
                comm_values_per_round=float(process["values_per_round"]),
                num_rounds=int(process["rounds"]),
                measured_seconds=float(process["total_seconds"]),
            )
        )
        entry = {
            "workers": workers,
            "num_machines": num_machines,
            "inline_seconds": inline["total_seconds"],
            "process_seconds": process["total_seconds"],
            "speedup": inline["total_seconds"] / process["total_seconds"],
        }
        for key in ("round_seconds", "rows_per_second"):
            if key in process:
                entry[f"process_{key}"] = process[key]
        entries.append(entry)
        print(
            f"  {name:>15} workers={workers} machines={num_machines}: "
            f"inline {inline['total_seconds']:.3f}s, "
            f"process {process['total_seconds']:.3f}s, "
            f"speedup {entry['speedup']:.2f}x"
        )
    fitted = ClusterCostModel().calibrate(measurements)
    errors = fitted.relative_errors(measurements)
    print(
        f"  {name:>15} calibration: max relative error "
        f"{max(errors):.4f} (bound {CALIBRATION_ERROR_BOUND})"
    )
    return {
        "entries": entries,
        "checksums_match": checksums_match,
        "calibration": {
            "relative_errors": errors,
            "max_relative_error": max(errors),
            "bound": CALIBRATION_ERROR_BOUND,
            "fitted": {
                "compute_seconds_per_unit": fitted.compute_seconds_per_unit,
                "comm_seconds_per_value": fitted.comm_seconds_per_value,
                "sync_seconds_per_round": fitted.sync_seconds_per_round,
                "per_machine_overhead_seconds": fitted.per_machine_overhead_seconds,
                "straggler_factor": fitted.straggler_factor,
            },
        },
    }


def _monotone_increasing(values: List[float]) -> bool:
    return all(later > earlier for earlier, later in zip(values, values[1:]))


def run_bench(smoke: bool, output: Optional[Path] = None) -> Dict[str, object]:
    cpus = cpu_count()
    perf_asserts_active = cpus >= (SMOKE_MIN_CPUS if smoke else FULL_MIN_CPUS)
    mode = "smoke" if smoke else "full"
    print(
        f"bench_parallel_ps [{mode}] on {cpus} CPU(s) "
        f"(perf asserts {'ACTIVE' if perf_asserts_active else 'recorded only'})"
    )

    workloads: Dict[str, Dict[str, object]] = {}
    if smoke:
        worker_counts = [1, 2]
        workloads["ps_round"] = sweep_workload(
            "ps_round",
            lambda backend, machines: ps_round_workload(
                backend, machines, rows=16384, dim=32, batch=8192, rounds=6
            ),
            worker_counts,
        )
    else:
        worker_counts = [1, 2, 4]
        workloads["ps_round"] = sweep_workload(
            "ps_round", ps_round_workload, worker_counts
        )
        network = build_bench_network()
        workloads["deepwalk_sparse"] = sweep_workload(
            "deepwalk_sparse",
            lambda backend, machines: deepwalk_workload(backend, machines, network),
            worker_counts,
        )
        features, labels = synthetic_classification()
        workloads["gbdt_hist"] = sweep_workload(
            "gbdt_hist",
            lambda backend, machines: gbdt_workload(backend, machines, features, labels),
            worker_counts,
        )

    # --- correctness asserts: always on, independent of the CPU count ----
    for name, workload in workloads.items():
        assert workload["checksums_match"], f"{name}: backends disagree bit-exactly"
        max_error = workload["calibration"]["max_relative_error"]
        assert max_error <= CALIBRATION_ERROR_BOUND, (
            f"{name}: calibrated cost model off by {max_error:.3f} "
            f"(> {CALIBRATION_ERROR_BOUND})"
        )

    # --- perf asserts: need real cores -----------------------------------
    if perf_asserts_active:
        if smoke:
            two_worker = next(
                entry
                for entry in workloads["ps_round"]["entries"]
                if entry["workers"] == 2
            )
            assert two_worker["speedup"] >= SMOKE_SPEEDUP_FLOOR, (
                f"process backend only {two_worker['speedup']:.2f}x vs inline "
                f"with 2 shards (need >= {SMOKE_SPEEDUP_FLOOR}x)"
            )
        else:
            speedup_series = {
                name: [entry["speedup"] for entry in workload["entries"]]
                for name, workload in workloads.items()
                if name in ("deepwalk_sparse", "gbdt_hist")
            }
            assert any(
                _monotone_increasing(series) for series in speedup_series.values()
            ), f"no workload shows monotone 1->2->4 worker speedup: {speedup_series}"

    results = {
        "benchmark": "parallel_ps",
        "mode": mode,
        "platform": platform.platform(),
        "cpu_count": cpus,
        "perf_asserts_active": perf_asserts_active,
        "smoke_speedup_floor": SMOKE_SPEEDUP_FLOOR,
        "worker_counts": worker_counts,
        "workloads": workloads,
    }
    destination = output or BENCH_PATH
    destination.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {destination}")
    return results


def main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="microbench only, 1/2 workers (the CI job)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help=f"result JSON path (default: {BENCH_PATH})",
    )
    arguments = parser.parse_args(argv)
    run_bench(smoke=arguments.smoke, output=arguments.output)


if __name__ == "__main__":
    main()
