"""Serving latency — the paper's "predict online real-time transaction fraud
within only milliseconds" claim (Sections 1, 4.4, 5).

The benchmark deploys a trained GBDT model (plus its exported FeaturePlan)
and the per-user feature / embedding rows to the simulated Ali-HBase, then
replays a test day's transactions through the Alipay server → Model Server
path, measuring the per-request wall-clock latency of the full online flow
(HBase reads, plan execution, model scoring, alert decision).

Two modes are compared:

* **scalar** — one ``predict`` per request, the pre-refactor hot path,
* **batch** — micro-batched ``predict_batch`` (one ``multi_get`` per column
  family, one vectorised assembly, one ``predict_proba`` per batch).

A third benchmark compares the fleet *routing* policies: every Model Server
runs on its own HBase connection (a private client-side row cache, the real
fleet shape), and consistent-hash sharding by payer account
(:class:`~repro.serving.router.ServingRouter`) must lift the fleet-wide
RowCache hit rate over round-robin on the same replay — the account's rows
are cached once on its owning replica instead of missed once per replica.
"""

from __future__ import annotations

import time

from benchmarks.conftest import run_once
from repro.core.config import DetectorName, FeatureSetName, Table1Configuration
from repro.serving import (
    AlipayServer,
    LatencyTracker,
    ModelServer,
    ModelServerConfig,
    ServingRouter,
    fleet_cache_stats,
)

SLA_BUDGET_MS = 50.0
BATCH_SIZE = 256
ROUTING_FLEET_SIZE = 4
#: Minimum relative fleet cache-hit-rate lift of sharded over round-robin.
ROUTING_HIT_LIFT = 1.15


def _serving_stack(bench_runner):
    dataset = bench_runner.datasets()[0]
    preparation = bench_runner.preparation_for(dataset)
    configuration = Table1Configuration(9, DetectorName.GBDT, FeatureSetName.BASIC_DW)
    bundle, hbase, servers, alipay = bench_runner.build_serving_stack(
        preparation, configuration, sla_budget_ms=SLA_BUDGET_MS
    )
    return dataset, hbase, servers[0], alipay


def test_serving_latency_milliseconds(benchmark, bench_runner):
    dataset, hbase, server, alipay = _serving_stack(bench_runner)
    replay = dataset.test_transactions[:500]

    def _run():
        return alipay.replay_transactions(replay)

    report = run_once(benchmark, _run)
    latency = server.latency.report()

    print("\nServing latency — online prediction path (HBase reads + scoring)")
    print(f"  requests served : {latency.count}")
    print(f"  mean latency    : {latency.mean_ms:.2f} ms")
    print(f"  p95 latency     : {latency.p95_ms:.2f} ms")
    print(f"  p99 latency     : {latency.p99_ms:.2f} ms")
    print(f"  interrupted     : {report.interrupted} of {report.total}")
    print(f"  alert precision : {report.alert_precision:.2%}")
    print(f"  alert recall    : {report.alert_recall:.2%}")

    assert latency.count == len(replay)
    # The paper's budget is "tens of milliseconds"; the in-process path should
    # comfortably fit a 50 ms p95.
    assert latency.p95_ms < SLA_BUDGET_MS


def test_batch_path_throughput_vs_scalar(benchmark, bench_runner):
    """The vectorised batch path must beat the scalar loop ≥ 5× at batch 256."""
    dataset, hbase, server, _ = _serving_stack(bench_runner)
    replay = dataset.test_transactions[:512]

    # Warm the row cache and interned city lookups so both modes measure the
    # steady state rather than first-touch misses.
    AlipayServer(server).replay_transactions(replay[:64], batch_size=64)

    def _compare():
        scalar_front = AlipayServer(server)
        started = time.perf_counter()
        scalar_front.replay_transactions(replay)
        scalar_seconds = time.perf_counter() - started

        batch_front = AlipayServer(server)
        batch_tracker = LatencyTracker(sla_budget_ms=SLA_BUDGET_MS)
        batch_start_index = len(server.latency)
        started = time.perf_counter()
        batch_front.replay_transactions(replay, batch_size=BATCH_SIZE)
        batch_seconds = time.perf_counter() - started
        for sample in server.latency.latencies_ms[batch_start_index:]:
            batch_tracker.record(sample)
        return scalar_seconds, batch_seconds, batch_tracker.report()

    scalar_seconds, batch_seconds, batch_latency = run_once(benchmark, _compare)
    scalar_rps = len(replay) / scalar_seconds
    batch_rps = len(replay) / batch_seconds
    speedup = batch_rps / scalar_rps

    print(f"\nScalar vs batch serving throughput ({len(replay)} requests)")
    print(f"  scalar loop       : {scalar_rps:10.0f} req/s")
    print(f"  batch (size {BATCH_SIZE}) : {batch_rps:10.0f} req/s")
    print(f"  speedup           : {speedup:.1f}x")
    print(f"  batch per-request p99 : {batch_latency.p99_ms:.3f} ms "
          f"(SLA budget {SLA_BUDGET_MS:.0f} ms)")
    print(f"  row cache         : {fleet_cache_stats([server])}")

    assert speedup >= 5.0, f"batch path only {speedup:.1f}x faster than scalar"
    # Amortised per-request latency must still clear the paper's SLA budget.
    assert batch_latency.p99_ms < SLA_BUDGET_MS


def test_sharded_routing_lifts_cache_hit_rate(benchmark, bench_runner):
    """Account-sharded routing must beat round-robin on RowCache hit rate.

    Both fleets serve the identical replay from the same published HBase
    store; only the front-end routing policy differs.  Each replica holds a
    private per-connection cache, so round-robin pays up to fleet-size
    compulsory misses per hot account while sharding pays exactly one.
    """
    dataset = bench_runner.datasets()[0]
    preparation = bench_runner.preparation_for(dataset)
    configuration = Table1Configuration(9, DetectorName.GBDT, FeatureSetName.BASIC_DW)
    bundle, hbase, _, _ = bench_runner.build_serving_stack(
        preparation, configuration, sla_budget_ms=SLA_BUDGET_MS
    )
    replay = dataset.test_transactions

    def build_fleet():
        fleet = [
            ModelServer(
                hbase.connection(row_cache_ttl_s=3600.0),
                ModelServerConfig(sla_budget_ms=SLA_BUDGET_MS),
            )
            for _ in range(ROUTING_FLEET_SIZE)
        ]
        for server in fleet:
            server.load_model(
                bundle.detector,
                version=bundle.version,
                threshold=bundle.threshold,
                plan=bundle.plan,
            )
        return fleet

    def _compare():
        round_robin_fleet = build_fleet()
        AlipayServer(round_robin_fleet).replay_transactions(replay, batch_size=64)
        sharded_fleet = build_fleet()
        AlipayServer(
            sharded_fleet, router=ServingRouter(ROUTING_FLEET_SIZE)
        ).replay_transactions(replay, batch_size=64)
        return fleet_cache_stats(round_robin_fleet), fleet_cache_stats(sharded_fleet)

    round_robin, sharded = run_once(benchmark, _compare)
    lift = sharded["hit_rate"] / round_robin["hit_rate"] if round_robin["hit_rate"] else float("inf")

    print(f"\nRouting policy vs fleet RowCache hit rate "
          f"({len(replay)} requests, {ROUTING_FLEET_SIZE} replicas)")
    print(f"  round-robin hit rate : {round_robin['hit_rate']:.2%} "
          f"({round_robin['hits']:.0f} hits / {round_robin['misses']:.0f} misses)")
    print(f"  sharded hit rate     : {sharded['hit_rate']:.2%} "
          f"({sharded['hits']:.0f} hits / {sharded['misses']:.0f} misses)")
    print(f"  lift                 : {lift:.2f}x")

    assert sharded["hit_rate"] > round_robin["hit_rate"] * ROUTING_HIT_LIFT, (
        f"sharded routing lifted the hit rate only {lift:.2f}x "
        f"(required ≥ {ROUTING_HIT_LIFT}x)"
    )
