"""Serving latency — the paper's "predict online real-time transaction fraud
within only milliseconds" claim (Sections 1, 4.4, 5).

The benchmark deploys a trained GBDT model and the per-user feature /
embedding rows to the simulated Ali-HBase, then replays a test day's
transactions through the Alipay server → Model Server path, measuring the
per-request wall-clock latency of the full online flow (HBase point reads,
feature assembly, model scoring, alert decision).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.core.config import DetectorName, FeatureSetName, Table1Configuration
from repro.hbase import HBaseClient
from repro.serving import AlipayServer, ModelServer, ModelServerConfig


def test_serving_latency_milliseconds(benchmark, bench_runner):
    dataset = bench_runner.datasets()[0]
    preparation = bench_runner.preparation_for(dataset)
    configuration = Table1Configuration(9, DetectorName.GBDT, FeatureSetName.BASIC_DW)
    bundle = bench_runner.pipeline.train(preparation, configuration)

    hbase = HBaseClient()
    server = ModelServer(hbase, ModelServerConfig(sla_budget_ms=50.0))
    bench_runner.pipeline.deploy(bundle, preparation, hbase, server)
    alipay = AlipayServer(server)
    replay = dataset.test_transactions[:500]

    def _run():
        return alipay.replay_transactions(replay)

    report = run_once(benchmark, _run)
    latency = server.latency.report()

    print("\nServing latency — online prediction path (HBase reads + scoring)")
    print(f"  requests served : {latency.count}")
    print(f"  mean latency    : {latency.mean_ms:.2f} ms")
    print(f"  p95 latency     : {latency.p95_ms:.2f} ms")
    print(f"  p99 latency     : {latency.p99_ms:.2f} ms")
    print(f"  interrupted     : {report.interrupted} of {report.total}")
    print(f"  alert precision : {report.alert_precision:.2%}")
    print(f"  alert recall    : {report.alert_recall:.2%}")

    assert latency.count == len(replay)
    # The paper's budget is "tens of milliseconds"; the in-process path should
    # comfortably fit a 50 ms p95.
    assert latency.p95_ms < 50.0
