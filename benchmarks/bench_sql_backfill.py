"""SQL-native windowed backfill vs the in-process loop (PR 9).

The paper's T+1 aggregate backfill runs as windowed SQL over day-partitioned
MaxCompute tables.  This bench drives the repo's reproduction of that path —
:class:`~repro.features.sql_backfill.SQLBackfillEngine` staging the history
into a day-keyed :class:`~repro.maxcompute.partitioned.PartitionedTable` and
evaluating ``... OVER (PARTITION BY account ORDER BY event_time RANGE
BETWEEN <W> PRECEDING AND CURRENT ROW)`` queries — and answers three
questions:

* **Correctness** — the SQL backfill must be *bit-identical* to the Python
  loop on an event-time-ordered history (same fold, addition for addition),
  and the pruned run must equal the unpruned run exactly.  Both are asserted
  on every run, smoke and full.
* **Partition skipping** — a 14-day window over a longer history must let
  the zone maps skip at least half the day partitions (the acceptance bar:
  >= 2x fewer partitions scanned than a full scan).  Asserted always.
* **Throughput** — the headline metric is staged rows aggregated per second
  by the pruned SQL backfill (staging + three generated queries + assembly).
  The pruned/unpruned comparison reports the honest wall-clock win of zone
  maps on the same engine.

Run ``python -m benchmarks.bench_sql_backfill --smoke`` (the CI job) or
without flags for the full run.  Results are persisted to the repo-root
``BENCH_sql_backfill.json`` and validated/regression-gated by
``scripts/check_bench.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.datagen import generate_world
from repro.datagen.datasets import small_world_config
from repro.features.aggregation import AggregationConfig, TransactionAggregator
from repro.features.sql_backfill import SQLBackfillEngine
from repro.features.streaming import event_order

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_sql_backfill.json"

SEED = 9
WINDOW_DAYS = 14

#: Acceptance bar: a 14-day window over the longer history must scan at
#: least 2x fewer partitions than a full scan.
PARTITION_REDUCTION_FLOOR = 2.0

#: Perf floor on the headline metric, active only with real cores behind it
#: (matching the other benches' honest ``perf_asserts_active`` convention).
PERF_MIN_CPUS = 2
SMOKE_ROWS_PER_SECOND_FLOOR = 2_000.0
FULL_ROWS_PER_SECOND_FLOOR = 2_000.0


def cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _run_sql(history, config, as_of_time, *, prune: bool) -> Dict[str, object]:
    """One timed SQL backfill (staging included); returns stats + aggregates."""
    engine = SQLBackfillEngine(config, prune_partitions=prune)
    started = time.perf_counter()
    aggregates = engine.backfill(history, as_of_time=as_of_time)
    seconds = time.perf_counter() - started
    stats = engine.last_stats
    return {
        "aggregates": aggregates,
        "seconds": seconds,
        "rows_staged": stats.rows_staged,
        "rows_scanned": stats.rows_scanned,
        "rows_matched": stats.rows_matched,
        "partitions_total": stats.partitions_total,
        "partitions_scanned": stats.partitions_scanned,
        "partitions_skipped": stats.partitions_skipped,
        "rows_per_second": stats.rows_staged / seconds,
    }


def _public(run: Dict[str, object]) -> Dict[str, object]:
    """The JSON-safe slice of a ``_run_sql`` result."""
    return {key: value for key, value in run.items() if key != "aggregates"}


def _assert_identical(left: Dict, right: Dict, label: str) -> None:
    assert sorted(left) == sorted(right), f"{label}: account sets differ"
    for account in left:
        assert vars(left[account]) == vars(right[account]), (
            f"{label}: aggregate state differs for {account!r}"
        )


def run_bench(*, smoke: bool) -> Dict[str, object]:
    cpus = cpu_count()
    perf_asserts_active = cpus >= PERF_MIN_CPUS
    if smoke:
        params = {"num_users": 150, "num_days": 32}
    else:
        params = {"num_users": 600, "num_days": 42}

    print(f"generating {params['num_users']}-user, {params['num_days']}-day world ...")
    world = generate_world(
        small_world_config(
            num_users=params["num_users"], num_days=params["num_days"], seed=SEED
        )
    )
    # Event-time order makes the SQL fold literally the loop's fold, so the
    # parity assert below can demand bitwise equality on float sums.
    history = sorted(world.transactions, key=event_order)
    as_of_day = params["num_days"]
    as_of_time = float(as_of_day * 86_400 - 1)
    config = AggregationConfig(window_days=WINDOW_DAYS)
    print(f"  {len(history):,} transactions; window {WINDOW_DAYS} days, "
          f"as_of day {as_of_day}")

    # -- the loop baseline ---------------------------------------------------
    started = time.perf_counter()
    loop = TransactionAggregator(config).fit(history, as_of_time=as_of_time)
    loop_seconds = time.perf_counter() - started

    # -- SQL backfill, pruned and unpruned ----------------------------------
    print("running pruned SQL backfill ...")
    pruned = _run_sql(history, config, as_of_time, prune=True)
    print("running unpruned SQL backfill ...")
    unpruned = _run_sql(history, config, as_of_time, prune=False)

    # -- correctness asserts (always on) ------------------------------------
    _assert_identical(pruned["aggregates"], unpruned["aggregates"], "pruned vs unpruned")
    sql = TransactionAggregator(config).fit(history, as_of_time=as_of_time, engine="sql")
    assert loop.account_ids() == sql.account_ids()
    mismatches = [
        account
        for account in loop.account_ids()
        if loop.hbase_row(account) != sql.hbase_row(account)
    ]
    assert mismatches == [], (
        f"SQL backfill diverges bitwise from the loop for {len(mismatches)} accounts"
    )

    partition_reduction = (
        pruned["partitions_total"] / pruned["partitions_scanned"]
    )
    assert unpruned["partitions_skipped"] == 0
    assert pruned["partitions_skipped"] > 0
    assert partition_reduction >= PARTITION_REDUCTION_FLOOR, (
        f"zone maps scanned 1/{partition_reduction:.2f} of the partitions; "
        f"the acceptance bar is >= {PARTITION_REDUCTION_FLOOR}x fewer"
    )

    # -- perf asserts (CPU-gated) -------------------------------------------
    floor = SMOKE_ROWS_PER_SECOND_FLOOR if smoke else FULL_ROWS_PER_SECOND_FLOOR
    if perf_asserts_active:
        assert pruned["rows_per_second"] >= floor, (
            f"pruned backfill ran at {pruned['rows_per_second']:,.0f} staged "
            f"rows/s, below the {floor:,.0f} floor"
        )

    results: Dict[str, object] = {
        "benchmark": "sql_backfill",
        "mode": "smoke" if smoke else "full",
        "platform": platform.platform(),
        "cpu_count": cpus,
        "perf_asserts_active": perf_asserts_active,
        "params": {
            **params,
            "window_days": WINDOW_DAYS,
            "seed": SEED,
            "transactions": len(history),
            "accounts_with_activity": len(loop.account_ids()),
        },
        "backfill": {
            "loop_seconds": loop_seconds,
            "loop_rows_per_second": len(history) / loop_seconds,
            "pruned": _public(pruned),
            "unpruned": _public(unpruned),
            "partition_reduction": partition_reduction,
            "partition_reduction_floor": PARTITION_REDUCTION_FLOOR,
            "scan_reduction": unpruned["rows_scanned"] / pruned["rows_scanned"],
            "speedup_vs_unpruned": unpruned["seconds"] / pruned["seconds"],
        },
        "parity": {
            "accounts": len(loop.account_ids()),
            "bitwise_mismatches": len(mismatches),
        },
    }

    print(f"\nsql backfill — {results['mode']} mode")
    print(f"  loop baseline     : {len(history) / loop_seconds:10,.0f} rows/s")
    print(f"  sql (pruned)      : {pruned['rows_per_second']:10,.0f} staged rows/s")
    print(f"  sql (unpruned)    : {unpruned['rows_per_second']:10,.0f} staged rows/s")
    print(f"  partitions        : {pruned['partitions_scanned']}/"
          f"{pruned['partitions_total']} scanned "
          f"({partition_reduction:.2f}x reduction, "
          f"{pruned['partitions_skipped']} skipped)")
    print(f"  rows scanned      : {pruned['rows_scanned']:,} pruned vs "
          f"{unpruned['rows_scanned']:,} unpruned "
          f"({results['backfill']['scan_reduction']:.2f}x fewer)")
    print(f"  bitwise parity    : {len(loop.account_ids())} accounts, "
          f"{len(mismatches)} mismatches")
    return results


def main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument(
        "--output", type=Path, default=BENCH_PATH, help="where to write the JSON artifact"
    )
    args = parser.parse_args(argv)
    results = run_bench(smoke=args.smoke)
    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nresults written to {args.output}")


if __name__ == "__main__":
    main()
