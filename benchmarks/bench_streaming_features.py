"""Streaming sliding-window features — incremental update vs full recompute.

The ROADMAP's "fast as the hardware allows" claim for the online path hinges
on aggregation features being maintained *incrementally*: the
:class:`SlidingWindowAggregator` folds each transaction into per-account
buckets in O(1) and answers a feature query by scanning O(window/bucket)
buckets, while the pre-refactor alternative recomputes the whole look-back
window per transaction (O(stream prefix)).

The benchmark replays a 50 000-transaction event stream through both paths:

* **incremental** — serve ``features_for`` then ``ingest``, per transaction,
  over the whole stream (the exact online serve-then-ingest contract),
* **full recompute** — for a uniform sample of stream positions, fit a batch
  :class:`TransactionAggregator` on the entire prefix and transform the one
  transaction (sampled because the quadratic full sweep would dominate CI).

It asserts the incremental path is ≥ 10× faster per transaction and that the
two paths emit identical feature vectors at every sampled position, then
reports end-to-end write-through throughput (aggregator + Ali-HBase puts).

Run directly (the CI ``streaming-feature-smoke`` job) with::

    PYTHONPATH=src python -m benchmarks.bench_streaming_features
"""

from __future__ import annotations

import time
from typing import List

import numpy as np

from repro.datagen.schema import Transaction, TransactionChannel
from repro.features.aggregation import (
    AggregationConfig,
    TransactionAggregator,
    transaction_event_time,
)
from repro.features.streaming import SlidingWindowAggregator
from repro.hbase.client import HBaseClient
from repro.serving.streaming import StreamingFeatureUpdater

NUM_EVENTS = 50_000
NUM_ACCOUNTS = 3_000
NUM_DAYS = 30
BASELINE_SAMPLES = 200
TARGET_SPEEDUP = 10.0


def synthetic_stream(
    *, num_events: int = NUM_EVENTS, num_accounts: int = NUM_ACCOUNTS, seed: int = 9
) -> List[Transaction]:
    """A time-ordered synthetic transfer stream (hour-granular event times).

    Twin of ``random_stream`` in tests/test_streaming_features.py (kept
    separate so the bench stays runnable via ``python -m`` without the test
    tree on the path) — keep the Transaction field conventions in sync.
    """
    rng = np.random.default_rng(seed)
    slots = np.sort(rng.integers(0, NUM_DAYS * 24, size=num_events))
    payers = rng.integers(0, num_accounts, size=num_events)
    offsets = rng.integers(1, num_accounts, size=num_events)
    payees = (payers + offsets) % num_accounts
    amounts = rng.integers(1, 1 << 20, size=num_events) / 64.0
    return [
        Transaction(
            transaction_id=f"t{index}",
            day=int(slot // 24),
            hour=int(slot % 24),
            payer_id=f"u{payer:04d}",
            payee_id=f"u{payee:04d}",
            amount=float(amount),
            channel=TransactionChannel.APP,
            trans_city="city_001",
            device_id="d0",
            is_new_device=False,
            ip_risk_score=0.0,
            payer_recent_txn_count=0,
            payer_recent_amount=0.0,
            payee_recent_inbound_count=0,
            is_fraud=False,
            label_available_day=int(slot // 24),
        )
        for index, (slot, payer, payee, amount) in enumerate(
            zip(slots, payers, payees, amounts)
        )
    ]


def run_incremental(events: List[Transaction], config: AggregationConfig):
    """Serve-then-ingest the whole stream; returns (seconds, engine, vectors)."""
    engine = SlidingWindowAggregator(config)
    sampled_positions = set(
        np.linspace(0, len(events) - 1, BASELINE_SAMPLES).astype(int).tolist()
    )
    sampled_vectors = {}
    started = time.perf_counter()
    for position, event in enumerate(events):
        vector = engine.features_for(event)
        engine.ingest(event)
        if position in sampled_positions:
            sampled_vectors[position] = vector
    elapsed = time.perf_counter() - started
    return elapsed, engine, sampled_vectors


def run_full_recompute(events: List[Transaction], config: AggregationConfig):
    """Per-transaction full-window recompute at sampled stream positions."""
    positions = np.linspace(0, len(events) - 1, BASELINE_SAMPLES).astype(int).tolist()
    vectors = {}
    started = time.perf_counter()
    for position in positions:
        event = events[position]
        reference = TransactionAggregator(config).fit(
            events[:position], as_of_time=transaction_event_time(event)
        )
        vectors[position] = reference.transform([event]).values[0]
    elapsed = time.perf_counter() - started
    return elapsed / len(positions), vectors


def run_write_through(events: List[Transaction], config: AggregationConfig) -> float:
    """End-to-end ingest throughput including HBase write-through (events/s)."""
    hbase = HBaseClient()
    hbase.create_feature_store()
    updater = StreamingFeatureUpdater(SlidingWindowAggregator(config), hbase)
    started = time.perf_counter()
    for event in events:
        updater.observe_transaction(event)
    return len(events) / (time.perf_counter() - started)


def streaming_benchmark(num_events: int = NUM_EVENTS) -> dict:
    config = AggregationConfig(window_days=14)
    events = synthetic_stream(num_events=num_events)

    incremental_seconds, engine, incremental_vectors = run_incremental(events, config)
    incremental_per_txn = incremental_seconds / len(events)
    baseline_per_txn, baseline_vectors = run_full_recompute(events, config)
    speedup = baseline_per_txn / incremental_per_txn

    for position, expected in baseline_vectors.items():
        if not np.allclose(incremental_vectors[position], expected):
            raise AssertionError(
                f"parity violation at stream position {position}: "
                f"{incremental_vectors[position]} != {expected}"
            )

    write_through_rate = run_write_through(events[:10_000], config)

    print(f"Streaming feature engine — {len(events):,}-transaction replay")
    print(f"  incremental serve+ingest : {incremental_per_txn * 1e6:8.1f} µs/txn "
          f"({1.0 / incremental_per_txn:,.0f} txn/s)")
    print(f"  full recompute           : {baseline_per_txn * 1e6:8.1f} µs/txn "
          f"(sampled at {BASELINE_SAMPLES} positions)")
    print(f"  speedup                  : {speedup:8.1f}x  (target ≥ {TARGET_SPEEDUP:.0f}x)")
    print(f"  write-through (HBase)    : {write_through_rate:8,.0f} events/s")
    print(f"  engine state             : {engine.stats()}")
    print(f"  parity                   : OK at {len(baseline_vectors)} sampled positions")
    return {
        "incremental_per_txn_s": incremental_per_txn,
        "baseline_per_txn_s": baseline_per_txn,
        "speedup": speedup,
        "write_through_rate": write_through_rate,
    }


def test_incremental_beats_full_recompute(benchmark):
    """Pytest-benchmark entry point (smaller stream, same assertions)."""
    from benchmarks.conftest import run_once

    result = run_once(benchmark, lambda: streaming_benchmark(num_events=20_000))
    assert result["speedup"] >= TARGET_SPEEDUP


def _smoke() -> None:
    result = streaming_benchmark(num_events=NUM_EVENTS)
    assert result["speedup"] >= TARGET_SPEEDUP, (
        f"incremental path must be ≥{TARGET_SPEEDUP:.0f}x faster than "
        f"per-transaction full recompute, got {result['speedup']:.1f}x"
    )
    print("streaming feature smoke OK")


if __name__ == "__main__":
    _smoke()
