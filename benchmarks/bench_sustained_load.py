"""Sustained-load harness: a sharded fleet rides the diurnal curve (PR 7).

The other serving benchmarks measure a *burst* of requests against a warm
stack.  This one measures the production question the paper's Model Server
fleet actually faces: sustained throughput over a multi-day arrival process
whose instantaneous rate swings with the diurnal curve and transient bursts,
against a population far too large to materialize.

The pipeline under test, end to end:

* **Data layer** — a :class:`~repro.datagen.stream.ScalableWorldStream` with
  O(active-accounts) state generates the full transaction history lazily
  (full mode: one million accounts, multiple days, never a transaction list).
* **Feature store** — a small-world GBDT on basic features is trained and
  deployed through the normal offline pipeline, then the streamed
  population's most active accounts are bulk-loaded into Ali-HBase; colder
  accounts degrade to the neutral default row, exactly as a brand-new
  account would in production.
* **Fleet** — four Model Servers, each on a private row-cache connection,
  behind an account-sharded :class:`~repro.serving.router.ServingRouter`,
  an :class:`~repro.serving.admission.AdmissionController` sized *below* the
  diurnal peak (so evening hours and bursts shed to the rule-based fallback)
  and a deadline-bounded request coalescer.  ``retain_served=False`` keeps
  the front end's memory flat over million-request replays.
* **Arrival clock** — per-event arrival times follow the stream's own
  diurnal curve (bursts included), compressed so the *mean* offered rate is
  ``target_rps``; the admission controller must ride the instantaneous rate.

Recorded per run: sustained serving throughput (wall clock), latency
p50/p99/p999, fleet row-cache hit rate, shed-to-rules fraction and peak
queue depth, generation throughput, and a peak-RSS probe comparing the
streamed data layer against a materialize-everything run of the same world
(subprocesses, so each run's high-water mark is its own).

Perf assertions are CPU-gated as in ``bench_parallel_ps`` (the JSON records
``perf_asserts_active`` honestly); correctness assertions always run.  The
memory-probe assertion is skip-gated on platforms without ``resource``.

Run ``python -m benchmarks.bench_sustained_load --smoke`` (the CI job) or
without flags for the full million-account run.  Results are persisted to
the repo-root ``BENCH_sustained_load.json``.
"""

from __future__ import annotations

import argparse
import collections
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.core.config import (
    DetectorName,
    ExperimentConfig,
    FeatureSetName,
    ModelHyperparameters,
    Table1Configuration,
)
from repro.core.experiment import ExperimentRunner
from repro.datagen import generate_world
from repro.datagen.datasets import small_world_config
from repro.datagen.profiles import ProfileConfig
from repro.datagen.schema import Transaction
from repro.datagen.stream import ScalableWorldStream
from repro.datagen.transactions import ArrivalConfig, BurstSpec, WorldConfig
from repro.hbase.client import BASIC_FEATURES_FAMILY
from repro.logging_utils import ProgressTracker
from repro.serving.admission import AdmissionConfig, AdmissionController
from repro.serving.alipay import AlipayServer
from repro.serving.coalescer import CoalescerConfig
from repro.serving.router import ServingRouter, fleet_cache_stats

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_sustained_load.json"

SEED = 11
FLEET_SIZE = 4
SLA_BUDGET_MS = 50.0
TABLE_NAME = "titant_features"

#: Admission capacity relative to the *mean* offered rate.  The diurnal peak
#: reaches ~2x the mean (plus bursts), so a 1.2x capacity sheds at peak —
#: the overload behaviour this harness is built to observe.
CAPACITY_OVER_MEAN = 1.2

#: Most-active accounts bulk-loaded into HBase in full mode.  Loading all
#: 1M rows would itself materialize gigabytes; production equally publishes
#: hot accounts and serves neutral defaults for the cold tail.
FULL_MODE_HOT_ACCOUNTS = 50_000

#: Perf floors, active only with real cores to back them.
PERF_MIN_CPUS = 2
SMOKE_SUSTAINED_RPS_FLOOR = 300.0
FULL_SUSTAINED_RPS_FLOOR = 1_000.0

#: Memory probe world: large enough that a materialized transaction list
#: dwarfs the streamed run's columnar state + one hour-chunk.
PROBE_ACCOUNTS = 100_000
PROBE_DAYS = 6
PROBE_TX_PER_USER_DAY = 0.5
PROBE_MIN_RSS_RATIO = 1.4


def cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def world_config(
    *,
    num_accounts: int,
    num_days: int,
    transactions_per_user_per_day: float,
) -> WorldConfig:
    """The streamed world under load: diurnal curve + an evening flash sale."""
    return WorldConfig(
        profile=ProfileConfig(
            num_users=num_accounts,
            num_communities=max(8, num_accounts // 5_000),
            fraudster_fraction=0.02,
            seed=SEED,
        ),
        num_days=num_days,
        transactions_per_user_per_day=transactions_per_user_per_day,
        arrival=ArrivalConfig(
            bursts=[BurstSpec(day=1, start_hour=19, duration_hours=2, amplitude=2.5)]
        ),
        seed=SEED,
    )


# ---------------------------------------------------------------------------
# Arrival clock: the stream's own diurnal curve, compressed to target_rps
# ---------------------------------------------------------------------------


class DiurnalArrivalClock:
    """Tags a lazily consumed stream with diurnal arrival times.

    ``transactions()`` yields the stream's events unchanged while recording
    each event's arrival instant; ``times()`` yields those instants in
    lockstep (the replay loop pulls the transaction first, then its time).
    Nothing is buffered beyond the events the replay has pulled but not yet
    clocked, so the pair adds O(1) memory to a million-event replay.

    Each simulated hour maps to a fixed replay window sized so the *mean*
    offered rate over the whole run is ``target_rps``; within an hour,
    events are spaced at the hour's *expected* rate (diurnal multiplier and
    bursts included), so hours that overshoot their estimate pile up at the
    window edge — exactly the instantaneous overload the admission
    controller exists to shed.
    """

    def __init__(self, stream: ScalableWorldStream, *, target_rps: float) -> None:
        if target_rps <= 0:
            raise ValueError("target_rps must be positive")
        self._stream = stream
        config = stream.config
        self._arrival = config.arrival or ArrivalConfig()
        expected_per_day = stream.expected_events_per_day()
        num_hours = 24 * config.num_days
        #: Replay seconds per simulated hour: mean rate == target_rps.
        self.window_s = (expected_per_day * config.num_days / target_rps) / num_hours
        self._expected_per_day = expected_per_day
        self._pending: collections.deque = collections.deque()
        self._last = 0.0
        self._multipliers: Dict[int, np.ndarray] = {}
        self._hour_counts: Dict[int, int] = {}
        self.events = 0
        self.progress = ProgressTracker("sustained replay", unit="requests")

    def _arrival_time(self, txn: Transaction) -> float:
        multipliers = self._multipliers.get(txn.day)
        if multipliers is None:
            multipliers = self._arrival.hour_multipliers(txn.day)
            self._multipliers[txn.day] = multipliers
        hour_index = txn.day * 24 + txn.hour
        expected = max(self._expected_per_day / 24.0 * multipliers[txn.hour], 1.0)
        k = self._hour_counts.get(hour_index, 0)
        self._hour_counts[hour_index] = k + 1
        start = hour_index * self.window_s
        instant = min(start + k * (self.window_s / expected), start + self.window_s)
        self._last = max(self._last, instant)
        return self._last

    def transactions(self) -> Iterator[Transaction]:
        for txn in self._stream:
            self._pending.append(self._arrival_time(txn))
            self.events += 1
            self.progress.advance()
            yield txn

    def times(self) -> Iterator[float]:
        while True:
            if not self._pending:
                return
            yield self._pending.popleft()


# ---------------------------------------------------------------------------
# Stack construction
# ---------------------------------------------------------------------------


def train_and_deploy(*, smoke: bool):
    """Train the small-world GBDT and deploy it to a 4-server routed fleet.

    The model is trained on basic features only, so the exported FeaturePlan
    reads just the profile column family — any account missing from HBase is
    served the neutral default row instead of failing, which is what lets a
    small-world-trained model score a million-account stream.
    """
    world = generate_world(small_world_config(num_users=300, num_days=40, seed=SEED))
    hyper = (
        ModelHyperparameters.fast_test_scale(seed=SEED)
        if smoke
        else ModelHyperparameters.laptop_scale(seed=SEED)
    )
    runner = ExperimentRunner(
        world,
        ExperimentConfig(
            num_datasets=1,
            network_days=25,
            train_days=7,
            hyperparameters=hyper,
            configurations=[Table1Configuration(1, DetectorName.GBDT, FeatureSetName.BASIC)],
        ),
    )
    dataset = runner.datasets()[0]
    preparation = runner.preparation_for(dataset)
    bundle, hbase, servers, _ = runner.build_serving_stack(
        preparation,
        runner.config.configurations[0],
        num_servers=FLEET_SIZE,
        sla_budget_ms=SLA_BUDGET_MS,
        row_cache_ttl_s=3600.0,
        router=ServingRouter(FLEET_SIZE),
    )
    return bundle, hbase, servers


def publish_streamed_population(hbase, stream: ScalableWorldStream, *, smoke: bool) -> int:
    """Bulk-load the streamed population's hottest profile rows into HBase."""
    accounts = stream.accounts
    if smoke or accounts.num_accounts <= FULL_MODE_HOT_ACCOUNTS:
        indices = np.arange(accounts.num_accounts)
    else:
        order = np.argsort(accounts.activity_level)
        indices = order[-FULL_MODE_HOT_ACCOUNTS:]
    rows: Dict[str, Dict[str, object]] = {}
    for profile in accounts.iter_profiles(indices):
        rows[profile.user_id] = {
            "age": profile.age,
            "gender": profile.gender.value,
            "home_city": profile.home_city,
            "account_age_days": profile.account_age_days,
            "kyc_level": profile.kyc_level,
            "is_merchant": profile.is_merchant,
            "device_count": profile.device_count,
            "community": profile.community,
        }
    return hbase.bulk_load(TABLE_NAME, BASIC_FEATURES_FAMILY, rows, version=10_000)


# ---------------------------------------------------------------------------
# Memory probe (subprocess children, satellite f)
# ---------------------------------------------------------------------------


def _probe_config() -> WorldConfig:
    return world_config(
        num_accounts=PROBE_ACCOUNTS,
        num_days=PROBE_DAYS,
        transactions_per_user_per_day=PROBE_TX_PER_USER_DAY,
    )


def run_memory_probe_child(mode: str) -> None:
    """Child entry point: generate the probe world, print peak RSS as JSON."""
    import resource

    stream = ScalableWorldStream(_probe_config())
    if mode == "streamed":
        events = sum(1 for _ in stream)
    elif mode == "materialized":
        transactions = list(stream)
        events = len(transactions)
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(f"unknown probe mode {mode!r}")
    peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    print(json.dumps({"mode": mode, "events": events, "peak_rss_kb": peak_rss_kb}))


def run_memory_probe() -> Dict[str, object]:
    """Compare streamed vs materialized peak RSS in separate processes.

    Each mode runs in its own child so the other's allocations cannot
    inflate its high-water mark.  Skipped (recorded, not failed) where the
    ``resource`` module is unavailable.
    """
    try:
        import resource  # noqa: F401
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return {"skipped": True, "reason": "resource module unavailable"}

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), str(REPO_ROOT)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    results: Dict[str, Dict[str, float]] = {}
    for mode in ("streamed", "materialized"):
        completed = subprocess.run(
            [sys.executable, "-m", "benchmarks.bench_sustained_load", "--memory-probe", mode],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        results[mode] = json.loads(completed.stdout.strip().splitlines()[-1])
    streamed_kb = float(results["streamed"]["peak_rss_kb"])
    materialized_kb = float(results["materialized"]["peak_rss_kb"])
    ratio = materialized_kb / streamed_kb if streamed_kb else float("inf")
    return {
        "skipped": False,
        "accounts": PROBE_ACCOUNTS,
        "days": PROBE_DAYS,
        "events": results["streamed"]["events"],
        "streamed_peak_rss_mb": streamed_kb / 1024.0,
        "materialized_peak_rss_mb": materialized_kb / 1024.0,
        "materialized_over_streamed": ratio,
        "min_required_ratio": PROBE_MIN_RSS_RATIO,
    }


# ---------------------------------------------------------------------------
# The bench
# ---------------------------------------------------------------------------


def run_bench(*, smoke: bool, skip_memory_probe: bool = False) -> Dict[str, object]:
    cpus = cpu_count()
    perf_asserts_active = cpus >= PERF_MIN_CPUS
    if smoke:
        params = {
            "num_accounts": 20_000,
            "num_days": 2,
            "transactions_per_user_per_day": 0.25,
            "target_rps": 800.0,
        }
    else:
        params = {
            "num_accounts": 1_000_000,
            "num_days": 3,
            "transactions_per_user_per_day": 0.1,
            "target_rps": 4_000.0,
        }
    config = world_config(
        num_accounts=params["num_accounts"],
        num_days=params["num_days"],
        transactions_per_user_per_day=params["transactions_per_user_per_day"],
    )

    # -- memory probe (satellite f) -----------------------------------------
    # Runs FIRST: the children are forked from this process, and on Linux a
    # forked child's RSS high-water mark starts at the parent's current RSS —
    # probing after the million-account structures exist would report the
    # parent's footprint for both modes and drown the comparison.
    if skip_memory_probe:
        memory_probe: Dict[str, object] = {"skipped": True, "reason": "disabled by flag"}
    else:
        print("running peak-RSS probe (streamed vs materialized subprocesses) ...")
        memory_probe = run_memory_probe()
        if not memory_probe.get("skipped"):
            print(f"  streamed     : {memory_probe['streamed_peak_rss_mb']:.0f} MB peak RSS")
            print(f"  materialized : {memory_probe['materialized_peak_rss_mb']:.0f} MB peak RSS")
            assert memory_probe["materialized_over_streamed"] >= PROBE_MIN_RSS_RATIO, (
                f"materialized run peaked at only "
                f"{memory_probe['materialized_over_streamed']:.2f}x the streamed run's "
                f"RSS (need >= {PROBE_MIN_RSS_RATIO}x): the data layer is not "
                "actually bounded-memory"
            )

    # -- generation-only pass: streamed data-layer throughput ---------------
    print(f"generating {params['num_accounts']:,}-account stream ({params['num_days']} days) ...")
    gen_stream = ScalableWorldStream(config)
    gen_progress = ProgressTracker("generation", unit="events")
    started = time.perf_counter()
    gen_events = 0
    for batch in gen_stream.batches(8192):
        gen_events += len(batch)
        gen_progress.advance(len(batch))
    gen_seconds = time.perf_counter() - started
    print(f"  {gen_events:,} events in {gen_seconds:.1f}s "
          f"({gen_events / gen_seconds:,.0f} events/s)")

    # -- train + deploy the fleet ------------------------------------------
    print("training small-world GBDT and deploying the 4-server fleet ...")
    bundle, hbase, servers = train_and_deploy(smoke=smoke)
    replay_stream = ScalableWorldStream(config)
    hot_rows = publish_streamed_population(hbase, replay_stream, smoke=smoke)
    print(f"  bulk-loaded {hot_rows:,} hot profile rows into Ali-HBase")

    capacity_rps = CAPACITY_OVER_MEAN * params["target_rps"]
    admission = AdmissionController(
        AdmissionConfig(capacity_rps=capacity_rps, max_queue_depth=256)
    )
    alipay = AlipayServer(
        servers,
        router=ServingRouter(FLEET_SIZE),
        admission=admission,
        retain_served=False,
    )

    # -- the sustained replay ----------------------------------------------
    clock = DiurnalArrivalClock(replay_stream, target_rps=params["target_rps"])
    print(f"replaying at target {params['target_rps']:,.0f} rps "
          f"(admission capacity {capacity_rps:,.0f} rps) ...")
    started = time.perf_counter()
    report = alipay.replay_transactions(
        clock.transactions(),
        arrival_times_s=clock.times(),
        coalescer=CoalescerConfig(max_batch=128, max_delay_ms=4.0),
    )
    replay_seconds = time.perf_counter() - started
    clock.progress.finish()

    latency = alipay.latency_report()
    cache = fleet_cache_stats(servers)
    sustained_rps = report.total / replay_seconds
    degraded_fraction = report.degraded / report.total if report.total else 0.0

    # -- correctness asserts (always on) ------------------------------------
    assert report.total == clock.events, (
        f"answered {report.total} of {clock.events} streamed requests"
    )
    assert len(clock._pending) == 0, "arrival clock desynchronized from the stream"
    assert admission.admitted + admission.degraded == report.total
    assert int(latency["count"]) == admission.admitted, (
        "every admitted request must cross the scored (latency-tracked) path"
    )
    assert 0.0 < degraded_fraction < 0.9, (
        f"shed fraction {degraded_fraction:.2%} outside (0, 90%): the capacity "
        "must bind at the diurnal peak without drowning the whole replay"
    )
    assert 0.0 <= cache["hit_rate"] <= 1.0

    # -- perf asserts (CPU-gated) -------------------------------------------
    floor = SMOKE_SUSTAINED_RPS_FLOOR if smoke else FULL_SUSTAINED_RPS_FLOOR
    if perf_asserts_active:
        assert sustained_rps >= floor, (
            f"sustained throughput {sustained_rps:,.0f} rps below {floor:,.0f} floor"
        )

    results: Dict[str, object] = {
        "benchmark": "sustained_load",
        "mode": "smoke" if smoke else "full",
        "platform": platform.platform(),
        "cpu_count": cpus,
        "perf_asserts_active": perf_asserts_active,
        "params": {
            **params,
            "fleet_size": FLEET_SIZE,
            "capacity_rps": capacity_rps,
            "sla_budget_ms": SLA_BUDGET_MS,
            "seed": SEED,
            "hot_profile_rows": hot_rows,
            "model": bundle.version if hasattr(bundle, "version") else None,
        },
        "generation": {
            "events": gen_events,
            "seconds": gen_seconds,
            "events_per_s": gen_events / gen_seconds,
            "accounts": params["num_accounts"],
        },
        "serving": {
            "requests": report.total,
            "seconds": replay_seconds,
            "sustained_rps": sustained_rps,
            "sustained_rps_floor": floor,
            "p50_ms": latency["p50_ms"],
            "p99_ms": latency["p99_ms"],
            "p999_ms": latency["p999_ms"],
            "mean_ms": latency["mean_ms"],
            "sla_violation_rate": (
                latency["sla_violations"] / latency["count"] if latency["count"] else 0.0
            ),
            "fleet_cache_hit_rate": cache["hit_rate"],
            "degraded_fraction": degraded_fraction,
            "peak_queue_depth": report.peak_queue_depth,
            "shed_intervals": admission.shed_intervals,
            "interrupted": report.interrupted,
            "coalescer": alipay.last_coalescer_stats,
        },
    }
    results["memory_probe"] = memory_probe

    print(f"\nsustained load — {results['mode']} mode")
    print(f"  generation        : {gen_events / gen_seconds:10,.0f} events/s")
    print(f"  sustained serving : {sustained_rps:10,.0f} req/s over {report.total:,} requests")
    print(f"  latency           : p50 {latency['p50_ms']:.3f} ms | "
          f"p99 {latency['p99_ms']:.3f} ms | p999 {latency['p999_ms']:.3f} ms")
    print(f"  fleet cache hits  : {cache['hit_rate']:.1%}")
    print(f"  shed to rules     : {degraded_fraction:.2%} "
          f"(peak queue {report.peak_queue_depth:.0f})")
    return results


def main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument(
        "--output", type=Path, default=BENCH_PATH, help="where to write the JSON artifact"
    )
    parser.add_argument(
        "--memory-probe",
        choices=("streamed", "materialized"),
        default=None,
        help="internal: run one memory-probe child and print its peak RSS",
    )
    parser.add_argument(
        "--skip-memory-probe",
        action="store_true",
        help="skip the subprocess RSS comparison (records the skip in the JSON)",
    )
    args = parser.parse_args(argv)
    if args.memory_probe is not None:
        run_memory_probe_child(args.memory_probe)
        return
    results = run_bench(smoke=args.smoke, skip_memory_probe=args.skip_memory_probe)
    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nresults written to {args.output}")


if __name__ == "__main__":
    main()
