"""Table 1 — F1 of the eleven detector × feature-set configurations.

Paper shape to reproduce: IF ≪ ID3 < C5.0 < LR < GBDT on basic features;
adding node embeddings (S2V or DW) improves LR and GBDT; DW is at least as
good as S2V; DW+S2V brings no further gain over DW alone.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.core import ExperimentRunner


def test_table1_configurations(benchmark, bench_runner):
    results = run_once(benchmark, bench_runner.run_table1)

    print("\nTable 1 — F1 per configuration and day (synthetic world)")
    print(ExperimentRunner.format_table1(results))

    by_label = {r.label: r.mean_f1 for r in results}
    # Headline orderings of the paper (checked on the mean over days).
    assert by_label["Basic Features+IF"] <= min(
        by_label["Basic Features+ID3"],
        by_label["Basic Features+C5.0"],
        by_label["Basic Features+LR"],
        by_label["Basic Features+GBDT"],
    ), "Isolation Forest should be the weakest detector"
    assert by_label["Basic Features+GBDT"] >= by_label["Basic Features+LR"] - 0.05
    # Aggregated (embedding) features help the strongest classifier.
    assert (
        max(by_label["Basic Features+DW+GBDT"], by_label["Basic Features+S2V+GBDT"])
        >= by_label["Basic Features+GBDT"] - 0.02
    ), "adding node embeddings should not hurt GBDT"
