"""Table 2 — F1 versus the DeepWalk number of node samplings.

The paper varies the number of walks started per node (25/50/100/200) and
finds the performance saturates around 100: more walks barely help but double
the embedding-learning time.  On the reduced synthetic world we sweep a scaled
grid and assert the saturation behaviour: the largest sampling budget does not
meaningfully beat the second largest.
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_SCALE, run_once

SAMPLING_COUNTS = (25, 50, 100, 200) if BENCH_SCALE == "paper" else (4, 8, 15, 30)


def test_table2_node_sampling_sweep(benchmark, bench_runner):
    def _run():
        return bench_runner.run_node_sampling_sweep(SAMPLING_COUNTS)

    results = run_once(benchmark, _run)

    print("\nTable 2 — F1 vs number of node samplings (Basic+DW+GBDT)")
    print("  " + "".join(f"{c:>8}" for c in SAMPLING_COUNTS))
    print("  " + "".join(f"{results[c]:>8.2%}" for c in SAMPLING_COUNTS))

    assert set(results) == set(SAMPLING_COUNTS)
    assert all(0.0 <= value <= 1.0 for value in results.values())
    # Saturation: doubling the sampling budget beyond the second-largest value
    # should not be required to stay within a few points of the best F1.
    best = max(results.values())
    assert results[SAMPLING_COUNTS[-2]] >= best - 0.10
