"""Per-typology fraud recall on the labelled typology suite (PR 10).

A single pooled recall number can hide an entire fraud scenario: a detector
trained mostly on smurfing-style volume can post high overall recall while
missing every bust-out.  This bench generates a world whose campaign frauds
are emitted by the five labelled typology models (mule/relay chains, account
takeover, bust-out, merchant collusion, smurfing — see
:class:`~repro.datagen.fraud.TypologyFraudSuite`), trains the paper's
GBDT+S2V configuration on a T+1 slice, and reports recall *per typology* at
the single deployed threshold via
:func:`~repro.core.evaluation.typology_recall_report`.

Always-on correctness asserts:

* the labelled eval slice contains frauds from **all five** typologies (the
  per-typology report is meaningless if a scenario never occurs), and
* every reported recall is a valid fraction backed by a positive fraud count.

The headline throughput metric is eval rows scored per second through the
offline assembler + GBDT (the same plan-driven path the Model Server runs).

Run ``python -m benchmarks.bench_typology_recall --smoke`` (the CI job) or
without flags for the full run.  Results are persisted to the repo-root
``BENCH_typology_recall.json`` and validated/regression-gated by
``scripts/check_bench.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.config import (
    DetectorName,
    FeatureSetName,
    ModelHyperparameters,
    Table1Configuration,
)
from repro.core.evaluation import typology_recall_report
from repro.core.pipeline import OfflineTrainingPipeline
from repro.datagen import (
    FRAUD_TYPOLOGIES,
    DatasetBuilder,
    TypologyConfig,
    WorldConfig,
    generate_world,
)
from repro.datagen.profiles import ProfileConfig

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_typology_recall.json"

SEED = 23

#: Perf floor on the headline metric, active only with real cores behind it
#: (matching the other benches' honest ``perf_asserts_active`` convention).
PERF_MIN_CPUS = 2
ROWS_PER_SECOND_FLOOR = 500.0


def cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _typology_world(params: Dict[str, int]) -> "WorldConfig":
    """World config whose campaign frauds come from the labelled suite.

    ``active_day_probability`` is kept low so the one-shot bust-out campaigns
    spread across the horizon instead of all firing right after their buildup
    window — the eval slice needs live examples of every typology.
    """
    return WorldConfig(
        profile=ProfileConfig(
            num_users=params["num_users"],
            num_communities=8,
            fraudster_fraction=0.10,
            seed=SEED,
        ),
        num_days=params["num_days"],
        transactions_per_user_per_day=0.6,
        typologies=TypologyConfig(active_day_probability=0.10),
        seed=SEED,
    )


def run_bench(*, smoke: bool) -> Dict[str, object]:
    cpus = cpu_count()
    perf_asserts_active = cpus >= PERF_MIN_CPUS
    if smoke:
        params = {"num_users": 300, "num_days": 30, "network_days": 14, "train_days": 7}
    else:
        params = {"num_users": 700, "num_days": 36, "network_days": 16, "train_days": 8}

    print(f"generating {params['num_users']}-user, {params['num_days']}-day "
          "typology world ...")
    world = generate_world(_typology_world(params))
    builder = DatasetBuilder(
        world,
        network_days=params["network_days"],
        train_days=params["train_days"],
    )
    test_day = builder.earliest_test_day()
    dataset = builder.build(test_day)
    # The labelled eval slice pools every day from the test day to the
    # horizon: a single day is too small a sample for five typologies, and
    # the one-shot bust-outs in particular land on different days per account.
    eval_transactions = world.transactions_in_days(test_day, params["num_days"])
    eval_frauds = sum(1 for t in eval_transactions if t.is_fraud)
    print(f"  train day {test_day}; eval slice days [{test_day}, "
          f"{params['num_days']}): {len(eval_transactions):,} transactions, "
          f"{eval_frauds} frauds")

    pipeline = OfflineTrainingPipeline(
        world.profiles_by_id, ModelHyperparameters.laptop_scale(seed=SEED)
    )
    configuration = Table1Configuration(7, DetectorName.GBDT, FeatureSetName.BASIC_S2V)
    print("training GBDT+S2V on the T+1 slice ...")
    preparation = pipeline.prepare(
        dataset,
        need_deepwalk=False,
        embedding_dimension=8 if smoke else 16,
    )
    bundle = pipeline.train(preparation, configuration)

    # -- timed scoring path (assemble + score, the serving-plan flow) --------
    assembler = pipeline.assembler_for(preparation, configuration.feature_set)
    started = time.perf_counter()
    matrix = assembler.assemble(eval_transactions)
    scores = bundle.detector.predict_proba(matrix.values)
    seconds = time.perf_counter() - started
    rows_per_second = len(eval_transactions) / seconds

    report = typology_recall_report(
        eval_transactions, scores, threshold=bundle.threshold
    )

    # -- correctness asserts (always on) ------------------------------------
    missing = sorted(set(FRAUD_TYPOLOGIES) - set(report))
    assert not missing, (
        f"eval slice has no frauds for typologies {missing}; "
        "the per-typology report must cover all five"
    )
    for name, entry in report.items():
        assert entry.num_frauds > 0, f"{name}: empty slice in the report"
        assert 0.0 <= entry.recall <= 1.0, f"{name}: recall out of range"

    # -- perf asserts (CPU-gated) -------------------------------------------
    if perf_asserts_active:
        assert rows_per_second >= ROWS_PER_SECOND_FLOOR, (
            f"scored {rows_per_second:,.0f} eval rows/s, below the "
            f"{ROWS_PER_SECOND_FLOOR:,.0f} floor"
        )

    results: Dict[str, object] = {
        "benchmark": "typology_recall",
        "mode": "smoke" if smoke else "full",
        "platform": platform.platform(),
        "cpu_count": cpus,
        "perf_asserts_active": perf_asserts_active,
        "params": {
            **params,
            "seed": SEED,
            "detector": configuration.detector.value,
            "feature_set": configuration.feature_set.value,
            "threshold": bundle.threshold,
            "eval_transactions": len(eval_transactions),
            "eval_frauds": eval_frauds,
        },
        "scoring": {
            "seconds": seconds,
            "rows_per_second": rows_per_second,
        },
        "typology_recall": {
            name: entry.as_dict() for name, entry in report.items()
        },
    }

    print(f"\ntypology recall — {results['mode']} mode")
    print(f"  scoring: {rows_per_second:10,.0f} eval rows/s")
    for name, entry in report.items():
        print(f"  {name:>18}: recall {entry.recall:6.2%} "
              f"({entry.num_detected}/{entry.num_frauds})")
    return results


def main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument(
        "--output", type=Path, default=BENCH_PATH, help="where to write the JSON artifact"
    )
    args = parser.parse_args(argv)
    results = run_bench(smoke=args.smoke)
    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nresults written to {args.output}")


if __name__ == "__main__":
    main()
