"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper on a synthetic
world.  The world is larger than the unit-test one (so that per-day metrics
are less noisy) but still laptop-scale; set the environment variable
``REPRO_BENCH_SCALE=paper`` to run closer to the paper's hyperparameters
(slower, more faithful hyperparameter values).
"""

from __future__ import annotations

import os

import pytest

from repro.core import ExperimentConfig, ExperimentRunner, ModelHyperparameters
from repro.datagen import generate_world
from repro.datagen.profiles import ProfileConfig
from repro.datagen.transactions import WorldConfig

BENCH_NETWORK_DAYS = 25
BENCH_TRAIN_DAYS = 7
BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "laptop")


def bench_hyperparameters() -> ModelHyperparameters:
    if BENCH_SCALE == "paper":
        return ModelHyperparameters.paper_scale()
    return ModelHyperparameters.laptop_scale()


@pytest.fixture(scope="session")
def bench_world():
    """The synthetic evaluation world shared by every benchmark."""
    config = WorldConfig(
        profile=ProfileConfig(
            num_users=1500,
            num_communities=12,
            fraudster_fraction=0.03,
            seed=11,
        ),
        num_days=BENCH_NETWORK_DAYS + BENCH_TRAIN_DAYS + 8,
        transactions_per_user_per_day=0.45,
        seed=11,
    )
    return generate_world(config)


@pytest.fixture(scope="session")
def bench_runner(bench_world):
    """Experiment runner with the benchmark hyperparameters (2 rolling datasets)."""
    config = ExperimentConfig(
        num_datasets=2,
        network_days=BENCH_NETWORK_DAYS,
        train_days=BENCH_TRAIN_DAYS,
        hyperparameters=bench_hyperparameters(),
    )
    return ExperimentRunner(bench_world, config)


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
