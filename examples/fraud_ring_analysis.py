"""Fraud-ring analysis with the transaction network and node embeddings.

The paper motivates aggregated (graph) features with the observation that
about 70 % of fraudsters repeat their behaviour, so the victims of one
fraudster "gather" around the fraudster node as 2-hop neighbours (Figure 2).
This example quantifies that structure on a synthetic world:

* the gathering coefficient of victim sets around their fraudster,
* how DeepWalk embeddings separate high-risk (ring) communities from the rest,
* the MaxCompute MapReduce job that builds the edge list, and extraction of
  explicit IF/THEN rules from a C5.0 tree for analyst review.

Run with:  python examples/fraud_ring_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.datagen import generate_world
from repro.datagen.datasets import DatasetBuilder
from repro.datagen.profiles import ProfileConfig
from repro.datagen.transactions import WorldConfig
from repro.features.basic import BasicFeatureExtractor
from repro.graph.builder import build_network
from repro.graph.metrics import degree_statistics, gathering_coefficient
from repro.maxcompute import MaxComputeClient
from repro.maxcompute.mapreduce import transaction_edge_job
from repro.models import C45Classifier, extract_rules
from repro.nrl import DeepWalk, DeepWalkConfig


def main() -> None:
    print("1. Generating a world with fraud rings ...")
    world = generate_world(
        WorldConfig(
            profile=ProfileConfig(num_users=1000, num_communities=12, fraudster_fraction=0.03, seed=23),
            num_days=40,
            transactions_per_user_per_day=0.45,
            seed=23,
        )
    )
    builder = DatasetBuilder(world, network_days=25, train_days=7)
    dataset = builder.build(builder.earliest_test_day())

    print("2. Building the transaction network via the MaxCompute MapReduce job ...")
    client = MaxComputeClient()
    client.load_records("transactions", [t.to_row() for t in dataset.network_transactions])
    job_result = client.submit_mapreduce(transaction_edge_job(), "transactions", result_table="edges")
    print(f"   MapReduce stats: {job_result.stats}")
    network = build_network(dataset.network_transactions)
    print(f"   network: {network.num_nodes} nodes, {network.num_edges} edges")
    print(f"   degrees: {degree_statistics(network)}")

    print("3. Measuring the 'gathering' structure around repeat fraudsters ...")
    victims_by_fraudster: dict[str, set[str]] = {}
    for txn in dataset.network_transactions:
        if txn.is_fraud:
            victims_by_fraudster.setdefault(txn.payee_id, set()).add(txn.payer_id)
    repeat = {k: v for k, v in victims_by_fraudster.items() if len(v) >= 2}
    coefficient = gathering_coefficient(network, repeat)
    print(f"   fraudsters with >= 2 victims in the window: {len(repeat)}")
    print(f"   gathering coefficient (victims sharing a neighbour): {coefficient:.2f}")

    print("4. Checking that DeepWalk embeddings separate ring communities ...")
    embeddings = DeepWalk(DeepWalkConfig.fast(dimension=16, seed=1)).fit(network).embeddings()
    by_ring: dict[bool, list[np.ndarray]] = {True: [], False: []}
    for profile in world.profiles:
        if profile.user_id in embeddings:
            by_ring[profile.community % 4 == 0].append(embeddings[profile.user_id])
    ring_centroid = np.mean(by_ring[True], axis=0)
    other_centroid = np.mean(by_ring[False], axis=0)
    ring_cos = [
        float(np.dot(v, ring_centroid) / (np.linalg.norm(v) * np.linalg.norm(ring_centroid) + 1e-12))
        for v in by_ring[True][:200]
    ]
    cross_cos = [
        float(np.dot(v, other_centroid) / (np.linalg.norm(v) * np.linalg.norm(other_centroid) + 1e-12))
        for v in by_ring[True][:200]
    ]
    print(f"   ring members vs ring centroid   : mean cosine {np.mean(ring_cos):.2f}")
    print(f"   ring members vs other centroid  : mean cosine {np.mean(cross_cos):.2f}")

    print("5. Extracting reviewable IF/THEN rules from a C5.0 tree ...")
    extractor = BasicFeatureExtractor(world.profiles_by_id)
    train = extractor.extract(dataset.train_transactions)
    tree = C45Classifier(max_depth=4).fit(train.values, train.labels)
    rules = extract_rules(tree.tree_)
    risky = rules.high_risk_rules(min_probability=0.3)
    print(f"   extracted {len(rules)} rules, {len(risky)} flag elevated fraud risk; examples:")
    for rule in risky[:3]:
        print("   -", rule.describe(train.feature_names))


if __name__ == "__main__":
    main()
