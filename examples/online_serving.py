"""End-to-end TitAnt deployment: offline training, HBase upload, online serving.

Reproduces the full system of the paper's Figure 3 / Figure 5 on the
simulated substrates, then walks the production serving runtime:

1. offline T+1 training (transaction network → DeepWalk embeddings → GBDT),
2. registry-driven deployment to a sharded Model Server fleet — per-user
   features/embeddings to Ali-HBase, each replica on its own HBase
   connection (private row cache), the model loaded through the
   ``FleetController``,
3. the Alipay server replaying transfer requests through consistent-hash
   account sharding with deadline-bounded request coalescing,
4. a hot model rotation on the live fleet: shadow-score a challenger,
   canary it onto part of the fleet, promote — then roll back,
5. an overload burst: admission control sheds past-capacity arrivals to the
   rule-based fallback instead of queueing unboundedly, and
6. latency / alert-quality / cache reports of the online path.

Run with:  python examples/online_serving.py
"""

from __future__ import annotations

from repro.core import ExperimentConfig, ExperimentRunner, ModelHyperparameters, ModelRegistry
from repro.core.config import DetectorName, FeatureSetName, Table1Configuration
from repro.features import AggregationConfig
from repro.datagen import generate_world
from repro.datagen.profiles import ProfileConfig
from repro.datagen.transactions import WorldConfig
from repro.hbase import HBaseClient
from repro.serving import (
    AdmissionConfig,
    AdmissionController,
    AlipayServer,
    CoalescerConfig,
    FleetController,
    ModelServer,
    ModelServerConfig,
    ServingRouter,
    fleet_cache_stats,
)

FLEET_SIZE = 3


def main() -> None:
    print("1. Offline: generating data and training the day's model ...")
    world = generate_world(
        WorldConfig(
            profile=ProfileConfig(num_users=900, num_communities=10, fraudster_fraction=0.03, seed=19),
            num_days=40,
            transactions_per_user_per_day=0.45,
            seed=19,
        )
    )
    runner = ExperimentRunner(
        world,
        ExperimentConfig(
            num_datasets=1,
            network_days=25,
            train_days=7,
            hyperparameters=ModelHyperparameters.laptop_scale(),
            # Sliding-window aggregation features: trained point-in-time and
            # kept fresh online by the streaming feature updater.
            aggregation=AggregationConfig(window_days=14),
        ),
    )
    dataset = runner.datasets()[0]
    preparation = runner.pipeline.prepare(dataset, need_deepwalk=True, need_structure2vec=False)
    champion = runner.pipeline.train(
        preparation, Table1Configuration(9, DetectorName.GBDT, FeatureSetName.BASIC_DW)
    )

    print("2. Deploying to a sharded Model Server fleet via the registry ...")
    # Bound WAL retention: the streaming updater writes two aggregate rows
    # per processed transfer, and a long-running front end would otherwise
    # retain every entry (a real region server rotates its WALs the same way).
    hbase = HBaseClient(num_regions=4, wal_max_entries=50_000)
    # One HBase connection per replica: each Model Server process owns a
    # private client-side row cache over the shared store (the fleet shape
    # that account-sharded routing keeps hot).
    fleet = [
        ModelServer(hbase.connection(), ModelServerConfig(sla_budget_ms=50.0))
        for _ in range(FLEET_SIZE)
    ]
    registry = ModelRegistry()
    updater = runner.pipeline.deploy_fleet(
        champion, preparation, hbase, fleet, registry=registry
    )
    controller = FleetController(fleet, registry)
    print(f"   registered model       : {registry.latest().describe()}")
    print(f"   fleet versions         : {controller.fleet_versions()}")
    print(f"   exported feature plan  : {len(champion.plan.feature_names)} features, "
          f"window {champion.plan.aggregation}")

    print("3. Online: coalesced replay through the account-sharded fleet ...")
    alipay = AlipayServer(
        fleet, feature_updater=updater, router=ServingRouter(FLEET_SIZE)
    )
    test_transactions = dataset.test_transactions
    half = len(test_transactions) // 2
    report = alipay.replay_transactions(
        test_transactions[:half],
        arrival_rate_per_s=2000.0,
        coalescer=CoalescerConfig(max_batch=64, max_delay_ms=5.0),
    )
    latency = alipay.latency_report()
    stats = alipay.last_coalescer_stats
    print(f"   transactions processed : {report.total}")
    print(f"   interrupted (alerts)   : {report.interrupted} "
          f"(precision {report.alert_precision:.2%}, recall {report.alert_recall:.2%})")
    print(f"   mean / p99 latency     : {latency['mean_ms']:.3f} ms / {latency['p99_ms']:.3f} ms "
          "(amortised per request)")
    print(f"   coalescing             : {stats['batches']:.0f} batches, "
          f"mean size {stats['mean_batch']:.1f}, max wait {stats['max_wait_ms']:.1f} ms")
    print(f"   fleet row caches       : {fleet_cache_stats(fleet)}")

    print("4. Hot rotation: shadow a challenger, canary it, promote, roll back ...")
    challenger = runner.pipeline.train(
        preparation, Table1Configuration(7, DetectorName.LOGISTIC_REGRESSION, FeatureSetName.BASIC_DW)
    )
    runner.pipeline.register_model(registry, challenger)
    controller.start_shadow(challenger.version)
    alipay.replay_transactions(
        test_transactions[half:],
        arrival_rate_per_s=2000.0,
        coalescer=CoalescerConfig(max_batch=64, max_delay_ms=5.0),
    )
    divergence = controller.stop_shadow()
    print(f"   shadow divergence      : mean |Δp| {divergence.mean_abs_divergence:.4f}, "
          f"decision flips {divergence.decision_flips}/{divergence.requests}")
    canary = controller.deploy(challenger.version, canary_fraction=1 / FLEET_SIZE)
    print(f"   canary fleet           : {canary.fleet_versions}")
    promoted = controller.promote()
    print(f"   promoted fleet         : {promoted.fleet_versions}")
    rolled_back = controller.rollback()
    print(f"   rolled-back fleet      : {rolled_back.fleet_versions} "
          "(zero requests dropped throughout)")

    print("5. Overload: a 10x-capacity burst sheds to the rule-based fallback ...")
    admission = AdmissionController(
        AdmissionConfig(capacity_rps=300.0, max_queue_depth=32, resume_queue_depth=16)
    )
    # No feature updater here: sections 3-4 already streamed this test day
    # into the shared window engine, and re-ingesting the same transactions
    # would double-count every account's aggregates.
    burst_front = AlipayServer(
        fleet,
        router=ServingRouter(FLEET_SIZE),
        admission=admission,
    )
    burst_report = burst_front.replay_transactions(
        test_transactions, arrival_rate_per_s=3000.0
    )
    print(f"   burst answered         : {burst_report.total} of {len(test_transactions)} "
          "(zero dropped)")
    print(f"   shed to rules          : {burst_report.degraded} "
          f"({burst_report.shed_to_rules_fraction:.1%})")
    print(f"   peak queue depth       : {burst_report.peak_queue_depth:.1f} "
          f"(bound {admission.config.max_queue_depth})")
    if burst_front.notifications:
        print("   example notification   :", burst_front.notifications[0])


if __name__ == "__main__":
    main()
