"""End-to-end TitAnt deployment: offline training, HBase upload, online serving.

Reproduces the full system of the paper's Figure 3 / Figure 5 on the
simulated substrates:

1. offline T+1 training (transaction network → DeepWalk embeddings → GBDT),
2. publication of per-user basic features and embeddings to Ali-HBase and the
   model file to the Model Server,
3. the Alipay server replaying the next day's transfer requests through the
   Model Server, interrupting the transactions flagged as fraud, and
4. a latency / alert-quality report of the online path.

Run with:  python examples/online_serving.py
"""

from __future__ import annotations

from repro.core import ExperimentConfig, ExperimentRunner, ModelHyperparameters, ModelRegistry
from repro.core.config import DetectorName, FeatureSetName, Table1Configuration
from repro.features import AggregationConfig
from repro.datagen import generate_world
from repro.datagen.profiles import ProfileConfig
from repro.datagen.transactions import WorldConfig
from repro.hbase import HBaseClient
from repro.serving import AlipayServer, ModelServer, ModelServerConfig


def main() -> None:
    print("1. Offline: generating data and training the day's model ...")
    world = generate_world(
        WorldConfig(
            profile=ProfileConfig(num_users=900, num_communities=10, fraudster_fraction=0.03, seed=19),
            num_days=40,
            transactions_per_user_per_day=0.45,
            seed=19,
        )
    )
    runner = ExperimentRunner(
        world,
        ExperimentConfig(
            num_datasets=1,
            network_days=25,
            train_days=7,
            hyperparameters=ModelHyperparameters.laptop_scale(),
            # Sliding-window aggregation features: trained point-in-time and
            # kept fresh online by the streaming feature updater.
            aggregation=AggregationConfig(window_days=14),
        ),
    )
    dataset = runner.datasets()[0]
    preparation = runner.pipeline.prepare(dataset, need_deepwalk=True, need_structure2vec=False)
    bundle = runner.pipeline.train(
        preparation, Table1Configuration(9, DetectorName.GBDT, FeatureSetName.BASIC_DW)
    )
    registry = ModelRegistry()
    runner.pipeline.register_model(registry, bundle)
    print(f"   registered model: {registry.latest().describe()}")

    print("2. Publishing features/embeddings to Ali-HBase and loading the MS fleet ...")
    # Bound WAL retention: the streaming updater writes two aggregate rows
    # per processed transfer, and a long-running front end would otherwise
    # retain every entry (a real region server rotates its WALs the same way).
    hbase = HBaseClient(num_regions=4, wal_max_entries=50_000)
    fleet = [ModelServer(hbase, ModelServerConfig(sla_budget_ms=50.0)) for _ in range(2)]
    updater = runner.pipeline.deploy_fleet(bundle, preparation, hbase, fleet)
    print(f"   exported feature plan  : {len(bundle.plan.feature_names)} features, "
          f"blocks {bundle.plan.embedding_specs}, side {bundle.plan.embedding_side!r}, "
          f"window {bundle.plan.aggregation}")
    print(f"   HBase rows written through the WAL: {hbase.wal_size()}")
    print(f"   region load report: {hbase.region_load_report()}")

    print("3. Online: replaying the test day in micro-batches through the fleet ...")
    alipay = AlipayServer(fleet, feature_updater=updater)
    report = alipay.replay_transactions(dataset.test_transactions, batch_size=256)
    latency = alipay.latency_report()
    print(f"   transactions processed : {report.total}")
    print(f"   interrupted (alerts)   : {report.interrupted}")
    print(f"   alert precision        : {report.alert_precision:.2%}")
    print(f"   alert recall           : {report.alert_recall:.2%}")
    print(f"   mean / p99 latency     : {latency['mean_ms']:.3f} ms / {latency['p99_ms']:.3f} ms "
          "(amortised per request)")
    print(f"   HBase row-cache stats  : {hbase.row_cache_stats()}")
    if alipay.notifications:
        print("   example notification   :", alipay.notifications[0])


if __name__ == "__main__":
    main()
