"""Quickstart: train TitAnt offline and score one day of transactions.

Generates a small synthetic transaction world, builds one T+1 dataset slice
(history for the transaction network, a labelled training window, one test
day), learns DeepWalk user node embeddings, trains the paper's best detector
(basic features + DW embeddings + GBDT) and reports F1 and rec@top 1 % on the
test day.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import ExperimentConfig, ExperimentRunner, ModelHyperparameters
from repro.core.config import DetectorName, FeatureSetName, Table1Configuration
from repro.core.evaluation import evaluate_scores, recall_at_top_percent
from repro.datagen import generate_world
from repro.datagen.profiles import ProfileConfig
from repro.datagen.transactions import WorldConfig
from repro.logging_utils import configure_logging


def main() -> None:
    configure_logging()

    print("1. Generating a synthetic transaction world ...")
    world = generate_world(
        WorldConfig(
            profile=ProfileConfig(num_users=1000, num_communities=10, fraudster_fraction=0.03, seed=7),
            num_days=40,
            transactions_per_user_per_day=0.45,
            seed=7,
        )
    )
    print(f"   {world.summary().describe()}")

    print("2. Building the T+1 dataset slice and training the pipeline ...")
    runner = ExperimentRunner(
        world,
        ExperimentConfig(
            num_datasets=1,
            network_days=25,
            train_days=7,
            hyperparameters=ModelHyperparameters.laptop_scale(),
        ),
    )
    dataset = runner.datasets()[0]
    preparation = runner.pipeline.prepare(dataset, need_deepwalk=True, need_structure2vec=False)
    print(
        f"   transaction network: {preparation.network.num_nodes} nodes, "
        f"{preparation.network.num_edges} edges; "
        f"DW embeddings: {preparation.embeddings['dw'].dimension} dimensions"
    )

    configuration = Table1Configuration(9, DetectorName.GBDT, FeatureSetName.BASIC_DW)
    bundle = runner.pipeline.train(preparation, configuration)
    print(f"   trained {bundle.configuration.label} on {bundle.train_rows} transactions "
          f"({bundle.train_frauds} labelled frauds)")

    print("3. Scoring the test day ...")
    test_matrix = runner.pipeline.evaluate(preparation, bundle)
    scores = bundle.detector.predict_proba(test_matrix.values)
    metrics = evaluate_scores(test_matrix.labels, scores)
    top1 = recall_at_top_percent(test_matrix.labels, scores, percent=1.0)
    print(f"   test transactions : {metrics.num_transactions} ({metrics.num_frauds} frauds)")
    print(f"   F1                : {metrics.f1:.2%}")
    print(f"   precision / recall: {metrics.precision:.2%} / {metrics.recall:.2%}")
    print(f"   rec@top 1%        : {top1:.2%}")


if __name__ == "__main__":
    main()
