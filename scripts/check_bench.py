#!/usr/bin/env python
"""Validate the repo-root ``BENCH_*.json`` artifacts and gate regressions.

Every benchmark in ``benchmarks/`` that persists a machine-readable artifact
writes it to the repo root with a shared envelope::

    {
      "benchmark": "<name>",            # matches the BENCH_<name>.json file
      "mode": "smoke" | "full",
      "platform": "<platform.platform()>",
      "cpu_count": <int>,
      "perf_asserts_active": <bool>,    # were perf floors actually enforced?
      ...benchmark-specific sections...
    }

Two jobs, both exercised by CI:

* **Schema validation** (default): every ``BENCH_*.json`` in the repo root
  must carry the envelope, its ``benchmark`` field must match its filename,
  and its benchmark-specific throughput metric must be present and positive.
  Run as ``python scripts/check_bench.py``.

* **Regression gate** (``--candidate``/``--baseline``): compares a freshly
  produced artifact against a committed one and fails when the candidate's
  headline throughput drops more than ``--tolerance`` (default 30 %, since
  CI runners vary).  The gate only *enforces* when both artifacts ran with
  ``perf_asserts_active`` (an honest single-core run cannot regress a
  multi-core baseline); otherwise the comparison is reported but advisory.

Violations are :class:`repro.analysis.Finding` records rendered through the
shared reporters, so output (and the ``--json`` schema) matches
``scripts/lint_repo.py`` and ``scripts/check_docs.py``.  Exits non-zero
listing every violation.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import Finding, render_json, render_text  # noqa: E402

#: Envelope fields every artifact must carry, with their required types.
COMMON_REQUIRED = {
    "benchmark": str,
    "mode": str,
    "platform": str,
    "cpu_count": int,
    "perf_asserts_active": bool,
}

MODES = ("smoke", "full")

#: Default relative throughput drop tolerated by the regression gate.
DEFAULT_TOLERANCE = 0.30

#: Rule ids used by this tool (one shared diagnostic format repo-wide).
RULE_JSON = "bench-json"
RULE_SCHEMA = "bench-schema"
RULE_REGRESSION = "bench-regression"


def _parallel_ps_throughput(results: Dict) -> float:
    """Headline metric: best process-backend row throughput on the microbench."""
    entries = results["workloads"]["ps_round"]["entries"]
    return max(float(entry["process_rows_per_second"]) for entry in entries)


def _sustained_load_throughput(results: Dict) -> float:
    """Headline metric: sustained serving requests per second."""
    return float(results["serving"]["sustained_rps"])


def _sql_backfill_throughput(results: Dict) -> float:
    """Headline metric: staged rows/s through the pruned SQL backfill."""
    return float(results["backfill"]["pruned"]["rows_per_second"])


def _typology_recall_throughput(results: Dict) -> float:
    """Headline metric: eval rows scored per second (assemble + GBDT)."""
    return float(results["scoring"]["rows_per_second"])


#: benchmark name -> (headline throughput extractor, metric label).
THROUGHPUT_METRICS: Dict[str, tuple] = {
    "parallel_ps": (_parallel_ps_throughput, "ps_round process rows/s"),
    "sql_backfill": (_sql_backfill_throughput, "pruned backfill staged rows/s"),
    "sustained_load": (_sustained_load_throughput, "serving sustained rps"),
    "typology_recall": (_typology_recall_throughput, "eval rows scored/s"),
}


def _artifact_path(path: Path) -> str:
    """Repo-relative path for findings when possible, else the bare name."""
    try:
        return path.resolve().relative_to(REPO_ROOT).as_posix()
    except ValueError:
        return path.name


def load_artifact(path: Path) -> Dict:
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path.name}: not valid JSON ({exc})") from exc


def validate_artifact(path: Path, results: Dict, *, check_filename: bool = True) -> List[Finding]:
    """All schema violations of one artifact (empty list means valid).

    ``check_filename=False`` skips the filename <-> ``benchmark`` coupling:
    regression candidates are often freshly written to temporary paths.
    """
    rel = _artifact_path(path)
    findings: List[Finding] = []

    def violation(message: str) -> None:
        findings.append(Finding(path=rel, line=1, rule=RULE_SCHEMA, message=message))

    for field, expected_type in COMMON_REQUIRED.items():
        if field not in results:
            violation(f"missing required field {field!r}")
        elif not isinstance(results[field], expected_type):
            violation(
                f"field {field!r} must be {expected_type.__name__}, "
                f"got {type(results[field]).__name__}"
            )
    if findings:
        return findings
    expected_name = f"BENCH_{results['benchmark']}.json"
    if check_filename and path.name != expected_name:
        violation(
            f"benchmark field {results['benchmark']!r} implies filename {expected_name}"
        )
    if results["mode"] not in MODES:
        violation(f"mode must be one of {MODES}, got {results['mode']!r}")
    if results["cpu_count"] < 1:
        violation("cpu_count must be positive")
    metric = THROUGHPUT_METRICS.get(results["benchmark"])
    if metric is None:
        violation(
            f"unknown benchmark {results['benchmark']!r} — register its "
            "headline metric in scripts/check_bench.py THROUGHPUT_METRICS"
        )
        return findings
    extractor, label = metric
    try:
        throughput = extractor(results)
    except (KeyError, TypeError, ValueError) as exc:
        violation(f"cannot extract {label} ({exc!r})")
        return findings
    if not throughput > 0:
        violation(f"{label} must be positive, got {throughput}")
    return findings


def validate_all(root: Path, *, as_json: bool = False) -> int:
    artifacts = sorted(root.glob("BENCH_*.json"))
    if not artifacts:
        print(f"no BENCH_*.json artifacts under {root}", file=sys.stderr)
        return 1
    findings: List[Finding] = []
    for path in artifacts:
        try:
            results = load_artifact(path)
        except ValueError as exc:
            findings.append(
                Finding(path=_artifact_path(path), line=1, rule=RULE_JSON, message=str(exc))
            )
            continue
        violations = validate_artifact(path, results)
        findings.extend(violations)
        if not violations and not as_json:
            extractor, label = THROUGHPUT_METRICS[results["benchmark"]]
            print(
                f"ok {path.name}: mode={results['mode']} "
                f"{label}={extractor(results):,.0f}"
            )
    if as_json:
        print(render_json(findings, tool="check_bench"), end="")
    else:
        print(render_text(findings, tool="check_bench"), file=sys.stderr if findings else sys.stdout)
    return 1 if findings else 0


def check_regression(candidate: Path, baseline: Path, tolerance: float) -> int:
    """Fail when the candidate's headline throughput regresses past tolerance."""
    results = {}
    for role, path in (("candidate", candidate), ("baseline", baseline)):
        try:
            data = load_artifact(path)
        except ValueError as exc:
            print(f"error: {role} {exc}", file=sys.stderr)
            return 1
        violations = validate_artifact(path, data, check_filename=False)
        if violations:
            for violation in violations:
                print(f"error: {role} {violation.format()}", file=sys.stderr)
            return 1
        results[role] = data
    if results["candidate"]["benchmark"] != results["baseline"]["benchmark"]:
        print(
            "error: cannot compare different benchmarks "
            f"({results['candidate']['benchmark']!r} vs "
            f"{results['baseline']['benchmark']!r})",
            file=sys.stderr,
        )
        return 1
    extractor, label = THROUGHPUT_METRICS[results["candidate"]["benchmark"]]
    new = extractor(results["candidate"])
    old = extractor(results["baseline"])
    change = (new - old) / old
    enforced = (
        results["candidate"]["perf_asserts_active"]
        and results["baseline"]["perf_asserts_active"]
    )
    status = "enforced" if enforced else "advisory (perf asserts inactive)"
    print(
        f"{label}: baseline {old:,.0f} -> candidate {new:,.0f} "
        f"({change:+.1%}, tolerance -{tolerance:.0%}, {status})"
    )
    if enforced and change < -tolerance:
        regression = Finding(
            path=_artifact_path(candidate),
            line=1,
            rule=RULE_REGRESSION,
            message=(
                f"throughput regression {change:+.1%} exceeds the "
                f"-{tolerance:.0%} tolerance"
            ),
        )
        print(render_text([regression], tool="check_bench"), file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root", type=Path, default=REPO_ROOT, help="directory holding BENCH_*.json"
    )
    parser.add_argument(
        "--candidate", type=Path, default=None, help="fresh artifact for the regression gate"
    )
    parser.add_argument(
        "--baseline", type=Path, default=None, help="committed artifact to compare against"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="max tolerated relative throughput drop (default 0.30)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the shared JSON report schema (validation mode)"
    )
    args = parser.parse_args(argv)
    if (args.candidate is None) != (args.baseline is None):
        parser.error("--candidate and --baseline must be given together")
    if not 0 <= args.tolerance < 1:
        parser.error("--tolerance must be in [0, 1)")
    if args.candidate is not None:
        return check_regression(args.candidate, args.baseline, args.tolerance)
    return validate_all(args.root, as_json=args.json)


if __name__ == "__main__":
    sys.exit(main())
