#!/usr/bin/env python
"""Link-check the documentation so file references cannot rot.

Scans ``README.md`` and ``docs/*.md`` for

* relative Markdown links ``[text](path)`` — the target must exist on disk
  (anchors are stripped; ``http(s)``/``mailto`` links are skipped), and
* inline-code file references — backticked tokens that name a repo file
  (``bench_*.py`` / ``test_*.py`` basenames, or any ``path/with/slash.py``
  or ``.md``) must resolve to an existing file.

Exits non-zero listing every dangling reference.  Run by the docs CI job and
locally with ``python scripts/check_docs.py``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

MARKDOWN_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
INLINE_CODE = re.compile(r"`([^`\n]+)`")
#: Backticked basenames checked against these directories.
BASENAME_PATTERN = re.compile(r"^(bench_|test_)\w+\.py$")
BASENAME_DIRS = ("benchmarks", "tests")
#: Backticked repo paths (contain a slash, end in .py or .md).
PATH_PATTERN = re.compile(r"^[\w./-]+/[\w.-]+\.(?:py|md)$")


def doc_files() -> list:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def check_file(path: Path) -> list:
    errors = []
    text = path.read_text()
    rel = path.relative_to(REPO_ROOT)

    for match in MARKDOWN_LINK.finditer(text):
        target = match.group(1).split("#", 1)[0]
        if not target or target.startswith(("http://", "https://", "mailto:")):
            continue
        resolved = (path.parent / target).resolve()
        if not resolved.exists():
            errors.append(f"{rel}: broken link -> {match.group(1)}")

    for match in INLINE_CODE.finditer(text):
        token = match.group(1).strip()
        if BASENAME_PATTERN.match(token):
            if not any((REPO_ROOT / d / token).exists() for d in BASENAME_DIRS):
                errors.append(f"{rel}: referenced file not found -> `{token}`")
        elif PATH_PATTERN.match(token):
            # Tokens like `src/repro/serving/` style paths are checked too;
            # trailing-slash directory mentions fall through to the dir check.
            if not (REPO_ROOT / token).exists():
                errors.append(f"{rel}: referenced file not found -> `{token}`")
        elif token.endswith("/") and re.match(r"^[\w./-]+$", token):
            if not (REPO_ROOT / token).is_dir():
                errors.append(f"{rel}: referenced directory not found -> `{token}`")
    return errors


def main() -> None:
    files = doc_files()
    errors = []
    for path in files:
        errors.extend(check_file(path))
    if errors:
        print(f"doc link check failed ({len(errors)} dangling reference(s)):", file=sys.stderr)
        for error in errors:
            print(f"  - {error}", file=sys.stderr)
        sys.exit(1)
    print(f"doc link check passed ({len(files)} file(s))")


if __name__ == "__main__":
    main()
