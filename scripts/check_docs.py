#!/usr/bin/env python
"""Link-check the documentation so file references cannot rot.

Scans ``README.md`` and ``docs/*.md`` for

* relative Markdown links ``[text](path)`` — the target must exist on disk
  (anchors are stripped; ``http(s)``/``mailto`` links are skipped), and
* inline-code file references — backticked tokens that name a repo file
  (``bench_*.py`` / ``test_*.py`` basenames, or any ``path/with/slash.py``
  or ``.md``) must resolve to an existing file.

Diagnostics are :class:`repro.analysis.Finding` records rendered through the
shared reporters, so the output format (and ``--json`` schema) matches
``scripts/lint_repo.py`` and ``scripts/check_bench.py``.  Exits non-zero
listing every dangling reference.  Run by the docs CI job and locally with
``python scripts/check_docs.py``.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import Finding, render_json, render_text  # noqa: E402

MARKDOWN_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
INLINE_CODE = re.compile(r"`([^`\n]+)`")
#: Backticked basenames checked against these directories.
BASENAME_PATTERN = re.compile(r"^(bench_|test_)\w+\.py$")
BASENAME_DIRS = ("benchmarks", "tests")
#: Backticked repo paths (contain a slash, end in .py or .md).
PATH_PATTERN = re.compile(r"^[\w./-]+/[\w.-]+\.(?:py|md)$")


def doc_files() -> list:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def _line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def check_file(path: Path) -> List[Finding]:
    findings: List[Finding] = []
    text = path.read_text()
    rel = path.relative_to(REPO_ROOT).as_posix()

    def finding(offset: int, rule: str, message: str) -> None:
        findings.append(
            Finding(path=rel, line=_line_of(text, offset), rule=rule, message=message)
        )

    for match in MARKDOWN_LINK.finditer(text):
        target = match.group(1).split("#", 1)[0]
        if not target or target.startswith(("http://", "https://", "mailto:")):
            continue
        resolved = (path.parent / target).resolve()
        if not resolved.exists():
            finding(match.start(), "doc-link", f"broken link -> {match.group(1)}")

    for match in INLINE_CODE.finditer(text):
        token = match.group(1).strip()
        if BASENAME_PATTERN.match(token):
            if not any((REPO_ROOT / d / token).exists() for d in BASENAME_DIRS):
                finding(match.start(), "doc-file-ref", f"referenced file not found -> `{token}`")
        elif PATH_PATTERN.match(token):
            # Tokens like `src/repro/serving/` style paths are checked too;
            # trailing-slash directory mentions fall through to the dir check.
            if not (REPO_ROOT / token).exists():
                finding(match.start(), "doc-file-ref", f"referenced file not found -> `{token}`")
        elif token.endswith("/") and re.match(r"^[\w./-]+$", token):
            if not (REPO_ROOT / token).is_dir():
                finding(
                    match.start(), "doc-dir-ref", f"referenced directory not found -> `{token}`"
                )
    return findings


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="Doc link checker")
    parser.add_argument("--json", action="store_true", help="emit the shared JSON report schema")
    args = parser.parse_args(argv)

    files = doc_files()
    findings: List[Finding] = []
    for path in files:
        findings.extend(check_file(path))
    if args.json:
        print(render_json(findings, tool="check_docs"), end="")
    else:
        stream = sys.stderr if findings else sys.stdout
        print(render_text(findings, tool="check_docs"), file=stream)
        if not findings:
            print(f"doc link check passed ({len(files)} file(s))")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
