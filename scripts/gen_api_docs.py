#!/usr/bin/env python
"""Render docs/API.md from the public surface's docstrings.

The reference is *generated*, never hand-edited: this script introspects the
curated public API below (classes and functions), renders each signature plus
the first docstring paragraph to Markdown, and writes ``docs/API.md``.

Any covered public symbol or method *without* a docstring fails the run —
the generator doubles as the docstring linter for the public surface, so a
new public method cannot land undocumented.

Usage::

    PYTHONPATH=src python scripts/gen_api_docs.py           # (re)write docs/API.md
    PYTHONPATH=src python scripts/gen_api_docs.py --check   # CI: fail on drift

``--check`` regenerates in memory and fails when the committed docs/API.md
differs — the docs CI job runs it so the reference cannot rot.
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "docs" / "API.md"

#: The curated public surface: (section title, module, names, blurb).
PUBLIC_API = [
    (
        "Streaming data layer",
        "repro.datagen.stream",
        ["TransactionStream", "WorldStream", "ScalableWorldStream", "StreamCheckpoint"],
        "Seeded, resumable, event-time-ordered transaction streams: the "
        "legacy world as a lazy iterator (bit-identical to materialization) "
        "and the columnar million-account generator with bounded state.",
    ),
    (
        "Arrival process",
        "repro.datagen.transactions",
        ["ArrivalConfig", "BurstSpec"],
        "Non-homogeneous arrivals for the scalable stream: the diurnal load "
        "curve plus transient bursts, budget-validated per day.",
    ),
    (
        "Progress tracking",
        "repro.logging_utils",
        ["ProgressTracker"],
        "Throttled rate/ETA logging for long generation and load runs; "
        "quiet unless logging is configured.",
    ),
    (
        "Offline pipeline and experiments",
        "repro.core.pipeline",
        ["OfflineTrainingPipeline", "TrainedModelBundle", "build_detector"],
        "The T+1 training flow: network construction, embeddings, detector "
        "training/calibration, and publication to the online side.",
    ),
    (
        "Experiment harness",
        "repro.core.experiment",
        ["ExperimentRunner"],
        "Regenerates the paper's tables and figures, and builds ready-wired "
        "online serving stacks for the benchmarks.",
    ),
    (
        "Model registry",
        "repro.core.registry",
        ["ModelRegistry", "ModelVersion"],
        "Sequence-ordered version store shared by the offline trainer and the "
        "fleet rotation control plane.",
    ),
    (
        "Feature plan",
        "repro.features.plan",
        ["FeaturePlan", "FeaturePlanExecutor", "FeatureSource"],
        "The serialisable feature-vector spec exported with every model; one "
        "executor runs it offline and online so the two cannot drift.",
    ),
    (
        "Streaming feature engine",
        "repro.features.streaming",
        ["SlidingWindowAggregator"],
        "Event-time sliding-window aggregates with exact batch parity.",
    ),
    (
        "SQL backfill engine",
        "repro.features.sql_backfill",
        ["SQLBackfillEngine", "BackfillStats"],
        "The T+1 aggregate backfill as generated windowed SQL over a "
        "day-partitioned staging table, bit-identical to the Python loop.",
    ),
    (
        "MaxCompute SQL engine",
        "repro.maxcompute.sql",
        ["parse_sql", "SQLExecutor", "QueryStats", "WindowAggregate", "WindowFrame"],
        "The mini SQL dialect: parser, aggregate window functions over RANGE "
        "frames, and per-query scan/pruning statistics.",
    ),
    (
        "Partitioned tables",
        "repro.maxcompute.partitioned",
        ["PartitionedTable", "ZoneMap", "ColumnZone", "condition_may_match"],
        "Key-partitioned columnar tables with per-partition zone maps; the "
        "executor consults them to skip provably non-matching partitions.",
    ),
    (
        "Model Server",
        "repro.serving.model_server",
        [
            "ModelServer",
            "ModelServerConfig",
            "ServingModel",
            "ShadowReport",
            "TransactionRequest",
            "PredictionResponse",
        ],
        "The online scorer: HBase reads, plan execution, batched prediction, "
        "hot model swap and challenger shadow scoring.",
    ),
    (
        "Alipay front end",
        "repro.serving.alipay",
        ["AlipayServer", "ServingReport", "ServedTransaction"],
        "Replays transfer streams through the fleet and reports outcomes, "
        "latency, shedding and queue depth.",
    ),
    (
        "Request routing",
        "repro.serving.router",
        ["ServingRouter", "RoundRobinRouter", "fleet_cache_stats"],
        "Consistent-hash account sharding that keeps each replica's row cache "
        "and window state hot.",
    ),
    (
        "Request coalescing",
        "repro.serving.coalescer",
        ["RequestCoalescer", "CoalescerConfig"],
        "Deadline-bounded micro-batching of concurrent requests into "
        "vectorised predict_batch calls.",
    ),
    (
        "Admission control",
        "repro.serving.admission",
        ["AdmissionController", "AdmissionConfig", "RuleBasedFallback", "default_fraud_rules"],
        "Bounded-backlog overload behaviour: shed to the rule-based model "
        "instead of queueing unboundedly.",
    ),
    (
        "Fleet rotation",
        "repro.serving.rotation",
        ["FleetController", "RolloutReport"],
        "Registry-driven zero-downtime deploys, canaries, rollbacks and "
        "shadow scoring on a live fleet.",
    ),
    (
        "Streaming write-through",
        "repro.serving.streaming",
        ["StreamingFeatureUpdater"],
        "Folds served transactions into the window engine and writes fresh "
        "aggregate rows to Ali-HBase.",
    ),
    (
        "Dynamic embedding refresh",
        "repro.serving.embedding_refresh",
        [
            "EmbeddingRefresher",
            "EmbeddingRefreshQueue",
            "EmbeddingRefreshConfig",
            "RefreshReport",
        ],
        "Keeps served Structure2Vec vectors fresh as the graph grows: new "
        "edges enqueue their endpoints, a refresh pass re-embeds the touched "
        "k-hop neighbourhood and writes rows through the Ali-HBase "
        "write-through path with per-column-family cache invalidation.",
    ),
    (
        "Fraud typologies",
        "repro.datagen.fraud",
        ["TypologyConfig", "TypologyFraudSuite", "ColumnarTypologySuite"],
        "Five labelled fraud scenarios — mule/relay chains, account "
        "takeover, bust-out, merchant collusion, smurfing — as seeded "
        "behaviour-model variants emitting typology-tagged transactions "
        "through both stream generators.",
    ),
    (
        "Per-slice evaluation",
        "repro.core.evaluation",
        ["SliceRecall", "recall_by_slice", "typology_recall_report"],
        "Recall per labelled evaluation slice at one shared decision "
        "threshold — a pooled recall can hide an entirely missed fraud "
        "scenario.",
    ),
    (
        "Ali-HBase client",
        "repro.hbase.client",
        ["HBaseClient"],
        "Column-family store client: WAL, regions, per-connection row caches, "
        "batched reads.",
    ),
    (
        "Async serving front end",
        "repro.serving.async_server",
        ["AsyncServingFrontEnd"],
        "Event-loop coalescing: concurrent awaited requests flushed by a "
        "real wall-clock deadline timer instead of a simulated clock.",
    ),
    (
        "Process-backed parameter server",
        "repro.kunpeng.parallel",
        ["ProcessShardRuntime", "SharedBlockManager"],
        "Each PS shard a live OS process applying updates to shared-memory "
        "parameter blocks — measured, not simulated, parallelism.",
    ),
    (
        "Cluster cost model",
        "repro.kunpeng.cost_model",
        ["ClusterCostModel", "MeasuredRound"],
        "Training-time estimates per machine count, calibratable against "
        "wall-clock rounds measured on the process backend.",
    ),
    (
        "Distributed training",
        "repro.models.distributed",
        ["DistributedGBDT"],
        "PS-side histogram-aggregated GBDT on the KunPeng substrate.",
    ),
    (
        "Distributed representation learning",
        "repro.nrl.distributed",
        ["DistributedDeepWalk"],
        "Sparse pull/push DeepWalk training on the parameter-server cluster.",
    ),
    (
        "Static analysis",
        "repro.analysis",
        ["Finding", "Checker", "Baseline", "AnalysisReport", "run_analysis"],
        "The AST-based invariant linter behind scripts/lint_repo.py: one "
        "shared diagnostic record for all repo tooling, the checker/rule "
        "registry, baseline suppression and the analysis runner.",
    ),
]

HEADER = """\
# API reference

Generated from docstrings by [`scripts/gen_api_docs.py`](../scripts/gen_api_docs.py) —
do not edit by hand; run `PYTHONPATH=src python scripts/gen_api_docs.py` after
changing a covered docstring or signature (the docs CI job fails on drift).

See [ARCHITECTURE.md](ARCHITECTURE.md) for how these pieces fit together.
"""


def _first_paragraph(docstring: str) -> str:
    paragraph = inspect.cleandoc(docstring).split("\n\n", 1)[0]
    return " ".join(line.strip() for line in paragraph.splitlines())


def _signature(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def _document_class(module_name: str, cls, errors: list) -> list:
    lines = [f"### `{cls.__name__}`", ""]
    if not cls.__doc__:
        errors.append(f"{module_name}.{cls.__name__}: missing class docstring")
    else:
        lines += [_first_paragraph(cls.__doc__), ""]
    members = []
    for name, member in vars(cls).items():
        if name.startswith("_") and name != "__init__":
            continue
        if isinstance(member, property):
            members.append((name, member.fget, "property"))
        elif isinstance(member, staticmethod):
            members.append((name, member.__func__, "staticmethod"))
        elif isinstance(member, classmethod):
            members.append((name, member.__func__, "classmethod"))
        elif inspect.isfunction(member):
            members.append((name, member, "method"))
    documented = []
    for name, func, kind in members:
        if name == "__init__":
            continue
        doc = func.__doc__ if func is not None else None
        if not doc:
            errors.append(f"{module_name}.{cls.__name__}.{name}: missing docstring")
            continue
        signature = "" if kind == "property" else f"`{_signature(func)}`"
        label = " *(property)*" if kind == "property" else ""
        documented.append(f"- **`{name}`**{label} {signature} — {_first_paragraph(doc)}")
    if documented:
        lines += documented + [""]
    return lines


def _document_function(module_name: str, func, errors: list) -> list:
    lines = [f"### `{func.__name__}{_signature(func)}`", ""]
    if not func.__doc__:
        errors.append(f"{module_name}.{func.__name__}: missing docstring")
    else:
        lines += [_first_paragraph(func.__doc__), ""]
    return lines


def render() -> str:
    errors: list = []
    lines = [HEADER]
    for section, module_name, names, blurb in PUBLIC_API:
        module = importlib.import_module(module_name)
        lines += [f"## {section}", "", f"*Module `{module_name}` — {blurb}*", ""]
        for name in names:
            obj = getattr(module, name)
            if inspect.isclass(obj):
                lines += _document_class(module_name, obj, errors)
            else:
                lines += _document_function(module_name, obj, errors)
    if errors:
        print("public API symbols are missing docstrings:", file=sys.stderr)
        for error in errors:
            print(f"  - {error}", file=sys.stderr)
        sys.exit(1)
    return "\n".join(lines).rstrip() + "\n"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail when docs/API.md is out of date instead of rewriting it",
    )
    args = parser.parse_args()
    rendered = render()
    if args.check:
        current = OUTPUT_PATH.read_text() if OUTPUT_PATH.exists() else ""
        if current != rendered:
            print(
                "docs/API.md is out of date; run "
                "`PYTHONPATH=src python scripts/gen_api_docs.py`",
                file=sys.stderr,
            )
            sys.exit(1)
        print("docs/API.md is up to date")
        return
    OUTPUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT_PATH.write_text(rendered)
    print(f"wrote {OUTPUT_PATH.relative_to(REPO_ROOT)} ({len(rendered.splitlines())} lines)")


if __name__ == "__main__":
    main()
