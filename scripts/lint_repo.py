#!/usr/bin/env python
"""Invariant linter: statically enforce the repo's correctness contracts.

Runs the five AST checkers of :mod:`repro.analysis` over ``src/repro``:

* ``rng-discipline`` — all randomness flows through seeded Generators,
* ``clock-discipline`` — simulated-clock code never reads the wall clock,
* ``shm-lifecycle`` — shared-memory allocations have a reachable release,
* ``layering`` — the subsystem import DAG holds,
* ``iteration-order`` — no hash-order iteration feeds checksummed output.

Deliberate violations live in ``src/repro/analysis/baseline.json`` with a
reviewed reason; everything else fails the run with ``path:line: [rule]
message`` diagnostics.  Usage::

    PYTHONPATH=src python scripts/lint_repo.py              # lint src/repro
    PYTHONPATH=src python scripts/lint_repo.py --check      # CI: also fail on stale baseline
    PYTHONPATH=src python scripts/lint_repo.py --json       # machine-readable report
    PYTHONPATH=src python scripts/lint_repo.py --rules layering path/to/file.py
    PYTHONPATH=src python scripts/lint_repo.py --write-baseline  # accept current findings

(The script bootstraps ``sys.path`` itself, so plain
``python scripts/lint_repo.py`` works too.)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import (  # noqa: E402
    Baseline,
    all_rule_ids,
    default_checkers,
    run_analysis,
)

DEFAULT_TARGET = REPO_ROOT / "src" / "repro"
DEFAULT_BASELINE = REPO_ROOT / "src" / "repro" / "analysis" / "baseline.json"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="CI mode: additionally fail when the baseline has stale entries",
    )
    parser.add_argument("--json", action="store_true", help="emit the JSON report")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="baseline file of deliberate violations (default: %(default)s)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline (report every finding)",
    )
    parser.add_argument(
        "--rules",
        nargs="+",
        metavar="RULE",
        help="run only these rule ids (see --list-rules)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline to accept every current finding",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for checker in default_checkers():
            print(f"{checker.rule_id}: {checker.description}")
        return 0

    targets = args.paths or [DEFAULT_TARGET]
    baseline = Baseline() if args.no_baseline else Baseline.load(args.baseline)
    checkers = default_checkers(args.rules)

    findings = []
    suppressed = []
    stale = []
    files_scanned = 0
    for target in targets:
        if not target.exists():
            print(f"error: no such path: {target}", file=sys.stderr)
            return 2
        report = run_analysis(
            target.resolve(),
            repo_root=REPO_ROOT,
            checkers=default_checkers(args.rules) if len(targets) > 1 else checkers,
            baseline=baseline,
        )
        findings.extend(report.all_findings())
        suppressed.extend(report.suppressed)
        stale.extend(report.stale_baseline)
        files_scanned += report.files_scanned
    # Stale entries are per-run complements; with the default single target
    # they are exact.  With multiple explicit targets an entry is stale only
    # if no target matched it.
    if len(targets) > 1:
        matched = {f.fingerprint() for f in suppressed}
        stale = [e for e in baseline.entries if e.fingerprint() not in matched]

    if args.write_baseline:
        new_baseline = Baseline.from_findings(
            findings + suppressed, reason="accepted by --write-baseline; review me"
        )
        new_baseline.save(args.baseline)
        print(
            f"wrote {args.baseline.relative_to(REPO_ROOT)} "
            f"({len(new_baseline.entries)} suppression(s))"
        )
        return 0

    from repro.analysis.reporters import render_json, render_text

    if args.json:
        print(
            render_json(findings, suppressed=suppressed, stale_baseline=stale),
            end="",
        )
    else:
        print(render_text(findings, suppressed=suppressed, stale_baseline=stale))
        print(f"lint: scanned {files_scanned} file(s) across {len(args.rules or all_rule_ids())} rule(s)")
    if findings:
        return 1
    if args.check and stale:
        print(
            "error: baseline has stale entries; remove them from "
            f"{args.baseline} (the violations they suppressed are gone)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
