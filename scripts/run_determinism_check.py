#!/usr/bin/env python
"""Determinism sanitizer: tagged tests diffed across PYTHONHASHSEED values.

The static side of the determinism contract is the ``iteration-order`` lint
rule; this is the dynamic side.  It runs the ``@pytest.mark.determinism``
subset of the tier-1 suite **twice in fresh interpreters with different
``PYTHONHASHSEED`` values**.  Each run records named checksums of
deterministic artifacts (generated worlds, feature matrices, walk corpora,
model predictions) via the ``record_checksum`` fixture in
``tests/conftest.py``; the sanitizer then diffs the two checksum maps.

Any difference means some code path iterates in hash order (a set, hashed
dict keys, ...) on the way to output that is supposed to be a pure function
of the seed — the bug class that silently breaks the repo's bit-identity
guarantees.

Usage::

    python scripts/run_determinism_check.py                 # seeds 0 and 101
    python scripts/run_determinism_check.py --hash-seeds 1 4242
    python scripts/run_determinism_check.py -- -k world     # extra pytest args

Exits 0 when both runs pass and every checksum agrees; 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent

MARKER = "determinism"


def run_tagged_tests(
    hash_seed: str, checksum_file: Path, extra_args: List[str]
) -> int:
    """One fresh-interpreter pytest run of the tagged subset."""
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["REPRO_CHECKSUM_FILE"] = str(checksum_file)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    command = [
        sys.executable,
        "-m",
        "pytest",
        "-q",
        "-m",
        MARKER,
        *extra_args,
    ]
    print(f"== PYTHONHASHSEED={hash_seed}: {' '.join(command)}")
    return subprocess.call(command, cwd=REPO_ROOT, env=env)


def load_checksums(path: Path, hash_seed: str) -> Optional[Dict[str, str]]:
    """The checksum map one run recorded (``None`` when missing/empty)."""
    if not path.exists():
        print(f"error: run with PYTHONHASHSEED={hash_seed} wrote no checksum file", file=sys.stderr)
        return None
    data = json.loads(path.read_text())
    if not data:
        print(
            f"error: run with PYTHONHASHSEED={hash_seed} recorded no checksums "
            f"(no @pytest.mark.{MARKER} tests collected?)",
            file=sys.stderr,
        )
        return None
    return dict(data)


def diff_checksums(first: Dict[str, str], second: Dict[str, str]) -> List[str]:
    """Human-readable differences between two checksum maps."""
    problems: List[str] = []
    for key in sorted(set(first) | set(second)):
        if key not in first:
            problems.append(f"only second run recorded {key}")
        elif key not in second:
            problems.append(f"only first run recorded {key}")
        elif first[key] != second[key]:
            problems.append(
                f"checksum mismatch for {key}: {first[key][:16]}... != {second[key][:16]}..."
            )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--hash-seeds",
        nargs=2,
        default=["0", "101"],
        metavar=("SEED_A", "SEED_B"),
        help="the two PYTHONHASHSEED values to compare (default: 0 101)",
    )
    parser.add_argument(
        "pytest_args",
        nargs="*",
        help="extra arguments forwarded to pytest (after --)",
    )
    args = parser.parse_args(argv)
    seed_a, seed_b = args.hash_seeds
    if seed_a == seed_b:
        parser.error("the two hash seeds must differ")

    with tempfile.TemporaryDirectory(prefix="repro-determinism-") as tmp:
        tmpdir = Path(tmp)
        maps: List[Dict[str, str]] = []
        for hash_seed in (seed_a, seed_b):
            checksum_file = tmpdir / f"checksums-{hash_seed}.json"
            status = run_tagged_tests(hash_seed, checksum_file, args.pytest_args)
            if status != 0:
                print(
                    f"error: tagged tests failed under PYTHONHASHSEED={hash_seed}",
                    file=sys.stderr,
                )
                return 1
            loaded = load_checksums(checksum_file, hash_seed)
            if loaded is None:
                return 1
            maps.append(loaded)

    problems = diff_checksums(maps[0], maps[1])
    if problems:
        print(
            f"determinism check FAILED ({len(problems)} difference(s) between "
            f"PYTHONHASHSEED={seed_a} and PYTHONHASHSEED={seed_b}):",
            file=sys.stderr,
        )
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print(
        f"determinism check passed: {len(maps[0])} checksum(s) identical under "
        f"PYTHONHASHSEED={seed_a} and {seed_b}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
