#!/usr/bin/env python
"""Run mypy --strict over the typed core (see [tool.mypy] in pyproject.toml).

The typed core is ``src/repro/kunpeng`` (the process-parallel PS substrate,
where a type confusion means corrupted shared-memory blocks) plus
``serving/router.py`` and ``serving/coalescer.py``.  The static-analysis CI
job installs mypy and runs this script; in environments without mypy (the
offline reproduction container) it skips with a notice and exit code 0, so
local tier-1 runs never depend on an uninstallable tool.

Usage::

    python scripts/run_typecheck.py            # strict-check the typed core
    python scripts/run_typecheck.py --strict-required   # fail if mypy is missing (CI)
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--strict-required",
        action="store_true",
        help="fail instead of skipping when mypy is not installed",
    )
    args = parser.parse_args()
    try:
        import mypy  # noqa: F401
    except ImportError:
        message = (
            "mypy is not installed; skipping the typed-core check "
            "(the static-analysis CI job installs and enforces it)"
        )
        if args.strict_required:
            print(f"error: {message}", file=sys.stderr)
            return 1
        print(message)
        return 0
    return subprocess.call(
        [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"],
        cwd=REPO_ROOT,
    )


if __name__ == "__main__":
    sys.exit(main())
