"""Setuptools shim.

The environment used for the reproduction is offline and ships a setuptools
without the ``wheel`` package, so PEP 660 editable installs are unavailable.
This shim lets ``pip install -e . --no-build-isolation --no-use-pep517`` (and
plain ``pip install -e .`` on machines with a full toolchain) work either way.
Metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
