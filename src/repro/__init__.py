"""repro — a from-scratch reproduction of TitAnt (VLDB 2019).

TitAnt is Ant Financial's online real-time transaction fraud detection
system: offline periodical training (MaxCompute storage/ETL, KunPeng
parameter-server training of DeepWalk / Structure2Vec node embeddings and
classification models) plus online real-time prediction (Ali-HBase feature
store and a millisecond-latency Model Server).

Package map
-----------
``repro.datagen``      synthetic transaction world (profiles, fraudsters, T+1 slices)
``repro.graph``        transaction network, random walks, graph statistics
``repro.nrl``          DeepWalk, Structure2Vec, embeddings, PS-distributed DeepWalk
``repro.features``     52 basic features, discretisation, aggregation, assembly
``repro.models``       ID3, C5.0, Isolation Forest, LR, GBDT, rules, PS drivers
``repro.maxcompute``   columnar tables, SQL subset, MapReduce, Fuxi/OTS scheduling
``repro.kunpeng``      parameter-server cluster, failover, scalability cost model
``repro.hbase``        versioned column-family store, regions, WAL, client
``repro.serving``      Model Server, Alipay front end, latency tracking
``repro.core``         offline pipeline, experiment harness, metrics, registry

Quick start
-----------
>>> from repro.datagen import generate_world
>>> from repro.datagen.datasets import small_world_config
>>> from repro.core import ExperimentRunner, ExperimentConfig
>>> world = generate_world(small_world_config())
>>> runner = ExperimentRunner(world, ExperimentConfig.laptop_scale(num_datasets=1))
>>> results = runner.run_table1()
"""

__version__ = "1.0.0"

from repro import exceptions
from repro.logging_utils import configure_logging, get_logger

__all__ = ["exceptions", "configure_logging", "get_logger", "__version__"]
