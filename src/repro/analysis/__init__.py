"""Static analysis enforcing the repo's correctness contracts.

The reproduction's headline guarantees — bit-identical streaming vs.
materialized generation, simulated-vs-wall clock agreement, bit-exact
inline-vs-process PS shards, online==offline feature parity — all rest on
coding invariants (seeded RNG threading, no wall-clock reads in simulated
paths, paired shared-memory allocate/unlink, a strict import DAG,
deterministic iteration order) that break silently when violated.  This
package checks them mechanically:

* :mod:`repro.analysis.findings` — the :class:`Finding` diagnostic record
  shared by every repo tool that reports problems,
* :mod:`repro.analysis.framework` — the :class:`Checker` base class, module
  contexts and the rule registry,
* :mod:`repro.analysis.checkers` — the five repo-specific invariant rules,
* :mod:`repro.analysis.baseline` — deliberate-violation suppression,
* :mod:`repro.analysis.reporters` — text and JSON rendering,
* :mod:`repro.analysis.runner` — file discovery and orchestration.

The command-line entry point is ``scripts/lint_repo.py``; the complementary
*dynamic* check (the same invariants exercised at runtime under two
``PYTHONHASHSEED`` values) is ``scripts/run_determinism_check.py``.
"""

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.findings import Finding
from repro.analysis.framework import Checker, ModuleContext, all_rule_ids, default_checkers
from repro.analysis.reporters import render_json, render_text
from repro.analysis.runner import AnalysisReport, run_analysis

__all__ = [
    "AnalysisReport",
    "Baseline",
    "BaselineEntry",
    "Checker",
    "Finding",
    "ModuleContext",
    "all_rule_ids",
    "default_checkers",
    "render_json",
    "render_text",
    "run_analysis",
]
