"""Baseline suppression: deliberate violations, recorded and reviewed.

Some flagged sites are intentional — e.g. the TTL row cache defaults to
``time.monotonic()`` when the caller passes no clock, because it genuinely
serves wall-clock deployments.  Such findings are recorded in a committed
``baseline.json`` with a human *reason*, and the linter reports them as
suppressed instead of failing.  Baseline entries match on ``(rule, path,
message)`` — not the line number — so unrelated edits cannot un-suppress
them, and entries that no longer match anything are reported as *stale* so
the baseline can only shrink deliberately.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Set, Tuple

from repro.analysis.findings import Finding

#: Schema version written into baseline files.
BASELINE_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One suppressed finding plus the reason it is deliberate."""

    rule: str
    path: str
    message: str
    reason: str = ""

    def fingerprint(self) -> Tuple[str, str, str]:
        """Matching key, identical to ``Finding.fingerprint()``."""
        return (self.rule, self.path, self.message)

    def to_dict(self) -> Dict[str, str]:
        """JSON-serialisable form stored in ``baseline.json``."""
        return {
            "rule": self.rule,
            "path": self.path,
            "message": self.message,
            "reason": self.reason,
        }


class Baseline:
    """A set of deliberately-accepted findings loaded from ``baseline.json``."""

    def __init__(self, entries: Sequence[BaselineEntry] = ()) -> None:
        self.entries: List[BaselineEntry] = list(entries)
        self._index: Dict[Tuple[str, str, str], BaselineEntry] = {
            entry.fingerprint(): entry for entry in self.entries
        }

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls()
        data = json.loads(path.read_text())
        entries = [
            BaselineEntry(
                rule=str(item["rule"]),
                path=str(item["path"]),
                message=str(item["message"]),
                reason=str(item.get("reason", "")),
            )
            for item in data.get("suppressions", [])
        ]
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: Sequence[Finding], *, reason: str = "") -> "Baseline":
        """Baseline every given finding (the ``--write-baseline`` path)."""
        return cls(
            [
                BaselineEntry(
                    rule=finding.rule,
                    path=finding.path,
                    message=finding.message,
                    reason=reason,
                )
                for finding in sorted(set(findings))
            ]
        )

    def save(self, path: Path) -> None:
        """Write the baseline as stable, diff-friendly JSON."""
        payload = {
            "version": BASELINE_VERSION,
            "suppressions": [
                entry.to_dict() for entry in sorted(self.entries, key=lambda e: e.fingerprint())
            ],
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")

    def suppresses(self, finding: Finding) -> bool:
        """Whether ``finding`` matches a baseline entry."""
        return finding.fingerprint() in self._index

    def partition(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Split findings into ``(new, suppressed)`` in stable order."""
        new: List[Finding] = []
        suppressed: List[Finding] = []
        for finding in sorted(findings):
            (suppressed if self.suppresses(finding) else new).append(finding)
        return new, suppressed

    def stale_entries(self, findings: Sequence[Finding]) -> List[BaselineEntry]:
        """Entries that no current finding matches (candidates for removal)."""
        seen: Set[Tuple[str, str, str]] = {finding.fingerprint() for finding in findings}
        return [entry for entry in self.entries if entry.fingerprint() not in seen]
