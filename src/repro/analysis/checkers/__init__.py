"""The five repo-specific invariant rules.

Importing this package registers every bundled checker with the framework
registry (see :func:`repro.analysis.framework.register`):

* ``rng-discipline`` — all randomness flows through seeded Generators
  handed out by :mod:`repro.rng`,
* ``clock-discipline`` — simulated-clock code never reads the wall clock,
* ``shm-lifecycle`` — every shared-memory allocation has a reachable
  release,
* ``layering`` — the import DAG between subsystems holds,
* ``iteration-order`` — no hash-order-dependent iteration feeds
  deterministic output.
"""

from repro.analysis.checkers import clock  # noqa: F401
from repro.analysis.checkers import iteration  # noqa: F401
from repro.analysis.checkers import layering  # noqa: F401
from repro.analysis.checkers import rng  # noqa: F401
from repro.analysis.checkers import shm  # noqa: F401
