"""Rule ``clock-discipline``: simulated-clock code never reads the wall clock.

The serving runtime's headline property — every admission, coalescing and
latency decision is identical under the simulated replay clock and the real
event loop (``tests/test_async_serving.py``) — requires that simulated-path
modules take time as an explicit argument (``now_ms``, ``as_of``, event
time) instead of reading it.  One ``time.time()`` in the coalescer and the
two clocks silently disagree.

Every module is checked except the explicit wall-clock allowlist: the async
front end (its whole point is a real timer), the logging utilities (rate /
ETA reporting), and anything outside ``src`` (benchmarks and scripts
measure wall time by design — they are not scanned by default).  Deliberate
wall-clock *defaults* in otherwise clock-explicit modules (the TTL row
cache) are recorded in the committed baseline rather than allowlisted, so
each one carries a reviewed reason.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.analysis.findings import Finding
from repro.analysis.framework import Checker, ModuleContext, dotted_name, register

#: Modules that are genuinely wall-clock (never simulated).
ALLOWED_MODULES = {
    "repro.serving.async_server",
    "repro.logging_utils",
}

#: ``time.<fn>`` calls that read or wait on the wall clock.
TIME_FUNCTIONS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "sleep",
}

#: ``datetime``/``date`` constructors that capture "now".
DATETIME_FUNCTIONS = {"now", "utcnow", "today"}


@register
class ClockDisciplineChecker(Checker):
    """Flags wall-clock reads in modules that run under a simulated clock."""

    rule_id = "clock-discipline"
    description = (
        "simulated-clock modules must take time as an argument; no "
        "time.time()/monotonic()/sleep() or datetime.now() outside the "
        "wall-clock allowlist"
    )

    def check_module(self, ctx: ModuleContext) -> List[Finding]:
        """Flag wall-clock calls in one module (allowlisted modules skipped)."""
        if ctx.module_name in ALLOWED_MODULES:
            return []
        findings: List[Finding] = []
        datetime_names: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "datetime":
                for alias in node.names:
                    if alias.name in {"datetime", "date"}:
                        datetime_names.add(alias.asname or alias.name)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if not name:
                continue
            parts = name.split(".")
            fn = parts[-1]
            if parts[0] == "time" and len(parts) == 2 and fn in TIME_FUNCTIONS:
                findings.append(
                    ctx.finding(
                        node,
                        self.rule_id,
                        f"time.{fn}() reads the wall clock in simulated-clock "
                        "code; take `now` as an explicit argument",
                    )
                )
            elif fn in DATETIME_FUNCTIONS and (
                parts[0] in ({"datetime"} | datetime_names)
            ):
                findings.append(
                    ctx.finding(
                        node,
                        self.rule_id,
                        f"{name}() captures wall-clock time in simulated-clock "
                        "code; thread event time through instead",
                    )
                )
        return findings
