"""Rule ``iteration-order``: no hash-order iteration feeds deterministic output.

Sets (and ``os.listdir``) iterate in an order that depends on
``PYTHONHASHSEED`` and the filesystem respectively.  Any such iteration in
code that feeds checksummed or bit-identity-tested output (transaction
generation, feature assembly, walk corpora, PS shard updates) produces
results that differ between runs even at the same seed — exactly the bug
class ``scripts/run_determinism_check.py`` hunts dynamically by running the
tagged tests under two hash seeds.  This rule catches the static shape:

* ``for``-loop or comprehension iteration directly over ``set(...)``, a set
  literal, a set comprehension, or a binary set expression (``a | b``),
* ``os.listdir`` / ``os.scandir`` / ``Path.iterdir`` / ``glob.glob`` /
  ``Path.glob``/``rglob`` results used without a wrapping ``sorted(...)``.

Dict iteration is fine (insertion-ordered since Python 3.7), and iterating
a *variable* that happens to hold a set is out of static reach — the
dynamic sanitizer covers that remainder.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.findings import Finding
from repro.analysis.framework import Checker, ModuleContext, attach_parents, dotted_name, parent_of, register

#: Call names producing filesystem listings in arbitrary order.
LISTING_FUNCTIONS = {"listdir", "scandir", "iterdir", "glob", "rglob"}


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) and node.func.id == "set":
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
        return _is_set_expression(node.left) or _is_set_expression(node.right)
    return False


def _is_listing_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = dotted_name(node.func)
    if not name:
        return False
    return name.split(".")[-1] in LISTING_FUNCTIONS


def _inside_sorted(node: ast.AST) -> bool:
    current = parent_of(node)
    while current is not None:
        if isinstance(current, ast.Call):
            name = dotted_name(current.func)
            if name in {"sorted", "len", "set", "frozenset", "min", "max", "sum"} or (
                name and name.split(".")[-1] == "sort"
            ):
                return True
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return False
        current = parent_of(current)
    return False


@register
class IterationOrderChecker(Checker):
    """Flags iteration whose order depends on hashing or the filesystem."""

    rule_id = "iteration-order"
    description = (
        "no iteration over set expressions or unsorted os.listdir/glob in "
        "code feeding checksummed output; wrap in sorted(...)"
    )

    def check_module(self, ctx: ModuleContext) -> List[Finding]:
        """Flag hash-order and filesystem-order iteration in one module."""
        attach_parents(ctx.tree)
        findings: List[Finding] = []
        iter_targets: List[ast.AST] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iter_targets.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for generator in node.generators:
                    iter_targets.append(generator.iter)
        for target in iter_targets:
            if _is_set_expression(target):
                findings.append(
                    ctx.finding(
                        target,
                        self.rule_id,
                        "iteration over a set has PYTHONHASHSEED-dependent "
                        "order; wrap in sorted(...) before iterating",
                    )
                )
        for node in ast.walk(ctx.tree):
            if _is_listing_call(node) and not _inside_sorted(node):
                findings.append(
                    ctx.finding(
                        node,
                        self.rule_id,
                        f"{dotted_name(node.func)}(...) yields entries in "  # type: ignore[union-attr]
                        "filesystem order; wrap in sorted(...) for "
                        "deterministic output",
                    )
                )
        return findings
