"""Rule ``layering``: the import DAG between subsystems holds.

The repo's layer boundaries keep the offline side paper-faithful and the
online side deployable: data generation, features, models and NRL must not
know the serving runtime exists (``serving`` imports *them*); the serving
runtime must not reach back into the offline MaxCompute substrate (online
reads go through Ali-HBase); and library code never imports the benchmark
or test trees.  The checker builds the *actual* module import graph from
every ``import``/``from ... import`` statement (including relative
imports) and flags edges that violate the declared DAG.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.framework import Checker, ModuleContext, register

#: subpackage -> subpackages it must never import (directly).
FORBIDDEN_IMPORTS: Dict[str, Set[str]] = {
    "datagen": {"serving"},
    "features": {"serving"},
    "models": {"serving"},
    "nrl": {"serving"},
    "serving": {"maxcompute"},
}

#: Top-level trees nothing under ``src`` may import.
FORBIDDEN_EVERYWHERE = {"benchmarks", "tests"}


def _subpackage(module_name: str) -> str:
    """The layer a dotted ``repro.*`` module belongs to (``""`` otherwise)."""
    parts = module_name.split(".")
    if len(parts) >= 2 and parts[0] == "repro":
        return parts[1]
    return ""


@dataclass(frozen=True)
class ImportEdge:
    """One import statement: importing module, imported module, location."""

    source: str
    target: str
    path: str
    line: int


def module_imports(ctx: ModuleContext) -> List[ImportEdge]:
    """Every import edge of one module, with relative imports resolved."""
    edges: List[ImportEdge] = []
    package_parts = ctx.module_name.split(".") if ctx.module_name else []
    if ctx.path.name != "__init__.py" and package_parts:
        package_parts = package_parts[:-1]
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                edges.append(
                    ImportEdge(ctx.module_name, alias.name, ctx.relpath, node.lineno)
                )
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                anchor = package_parts[: len(package_parts) - (node.level - 1)]
                base = ".".join(anchor + ([node.module] if node.module else []))
            if base:
                edges.append(ImportEdge(ctx.module_name, base, ctx.relpath, node.lineno))
    return edges


def build_import_graph(contexts: List[ModuleContext]) -> Dict[str, Set[str]]:
    """``module -> imported modules`` over a list of parsed modules."""
    graph: Dict[str, Set[str]] = {}
    for ctx in contexts:
        edges = module_imports(ctx)
        graph.setdefault(ctx.module_name or ctx.relpath, set()).update(
            edge.target for edge in edges
        )
    return graph


@register
class LayeringChecker(Checker):
    """Flags import edges that violate the declared subsystem DAG."""

    rule_id = "layering"
    description = (
        "import DAG: datagen/features/models/nrl never import serving; "
        "serving never imports maxcompute; nothing imports benchmarks/tests"
    )

    def __init__(self) -> None:
        self.edges: List[ImportEdge] = []
        #: ``module -> imported modules`` accumulated over the run (exposed
        #: for diagnostics and the layering-graph tests).
        self.graph: Dict[str, Set[str]] = {}

    def check_module(self, ctx: ModuleContext) -> List[Finding]:
        """Collect the module's import edges (findings come from finalize)."""
        edges = module_imports(ctx)
        self.edges.extend(edges)
        self.graph.setdefault(ctx.module_name or ctx.relpath, set()).update(
            edge.target for edge in edges
        )
        return []

    def finalize(self) -> List[Finding]:
        """Check every collected edge against the declared DAG."""
        findings: List[Finding] = []
        seen: Set[Tuple[str, str, int]] = set()
        for edge in self.edges:
            key = (edge.path, edge.target, edge.line)
            if key in seen:
                continue
            seen.add(key)
            target_top = edge.target.split(".")[0]
            if target_top in FORBIDDEN_EVERYWHERE:
                findings.append(
                    Finding(
                        path=edge.path,
                        line=edge.line,
                        rule=self.rule_id,
                        message=(
                            f"library code must not import {target_top!r} "
                            "(benchmarks/tests depend on the library, never "
                            "the reverse)"
                        ),
                    )
                )
                continue
            source_layer = _subpackage(edge.source)
            target_layer = _subpackage(edge.target)
            if (
                source_layer
                and target_layer
                and target_layer in FORBIDDEN_IMPORTS.get(source_layer, set())
            ):
                findings.append(
                    Finding(
                        path=edge.path,
                        line=edge.line,
                        rule=self.rule_id,
                        message=(
                            f"layer 'repro.{source_layer}' must not import "
                            f"'repro.{target_layer}' (violates the declared "
                            "import DAG)"
                        ),
                    )
                )
        return findings
