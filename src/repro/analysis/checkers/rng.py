"""Rule ``rng-discipline``: all randomness flows through seeded Generators.

The bit-identity guarantees (streamed == materialized generation, same-seed
distributed == single-machine training) hold only when every random draw
comes from a :class:`numpy.random.Generator` threaded down from an
experiment seed via :mod:`repro.rng`.  One ``np.random.rand()`` — global
mutable RNG state — or one un-threaded ``default_rng()`` silently breaks
them.  This rule flags, anywhere outside ``repro.rng`` itself:

* calls through the legacy global-state module API (``np.random.rand``,
  ``np.random.shuffle``, ``np.random.seed``, ``np.random.RandomState``, …),
* any import of the stdlib ``random`` module (process-global state, and
  not numpy-reproducible),
* ``default_rng()`` with no seed (a fresh OS-entropy stream), and
* seeded ``default_rng(...)`` outside ``repro.rng`` — route it through
  :func:`repro.rng.ensure_rng` / :func:`repro.rng.spawn_child` so seed
  fan-out stays centralised.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.analysis.findings import Finding
from repro.analysis.framework import Checker, ModuleContext, dotted_name, register

#: The one module allowed to talk to ``numpy.random`` directly.
ALLOWED_MODULES = {"repro.rng"}

#: ``np.random.<attr>`` accesses that are types/annotations, not draws.
NON_CALL_ATTRS = {"Generator", "BitGenerator", "SeedSequence"}


@register
class RngDisciplineChecker(Checker):
    """Flags RNG use that bypasses the seeded-Generator threading."""

    rule_id = "rng-discipline"
    description = (
        "randomness must flow through seeded Generators from repro.rng; no "
        "np.random.* global-state calls, stdlib random, or stray default_rng()"
    )

    def check_module(self, ctx: ModuleContext) -> List[Finding]:
        """Flag global-state RNG calls and stray ``default_rng`` in one module."""
        if ctx.module_name in ALLOWED_MODULES:
            return []
        findings: List[Finding] = []
        numpy_aliases: Set[str] = set()
        numpy_random_aliases: Set[str] = set()
        default_rng_names: Set[str] = set()

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    if alias.name == "numpy":
                        numpy_aliases.add(local)
                    elif alias.name == "numpy.random":
                        numpy_random_aliases.add(alias.asname or "numpy")
                        if alias.asname:
                            numpy_random_aliases.add(alias.asname)
                    elif alias.name == "random" or alias.name.startswith("random."):
                        findings.append(
                            ctx.finding(
                                node,
                                self.rule_id,
                                "stdlib random imported; use seeded numpy "
                                "Generators from repro.rng instead",
                            )
                        )
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "random":
                    findings.append(
                        ctx.finding(
                            node,
                            self.rule_id,
                            "stdlib random imported; use seeded numpy "
                            "Generators from repro.rng instead",
                        )
                    )
                elif node.module == "numpy.random":
                    for alias in node.names:
                        if alias.name == "default_rng":
                            default_rng_names.add(alias.asname or alias.name)
                elif node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            numpy_random_aliases.add(alias.asname or "random")

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if not name:
                continue
            parts = name.split(".")
            is_np_random = (
                len(parts) >= 3 and parts[0] in numpy_aliases and parts[1] == "random"
            ) or (len(parts) >= 2 and parts[0] in numpy_random_aliases)
            fn = parts[-1]
            if is_np_random and fn not in NON_CALL_ATTRS:
                if fn == "default_rng":
                    findings.append(self._default_rng_finding(ctx, node))
                else:
                    findings.append(
                        ctx.finding(
                            node,
                            self.rule_id,
                            f"np.random.{fn}() uses process-global RNG state; "
                            "draw from a seeded Generator threaded via repro.rng",
                        )
                    )
            elif len(parts) == 1 and parts[0] in default_rng_names:
                findings.append(self._default_rng_finding(ctx, node))
        return findings

    def _default_rng_finding(self, ctx: ModuleContext, node: ast.Call) -> Finding:
        if not node.args and not node.keywords:
            message = (
                "unseeded default_rng() draws from OS entropy and breaks "
                "reproducibility; pass a seed via repro.rng.ensure_rng"
            )
        else:
            message = (
                "default_rng(...) outside repro.rng; route seed fan-out "
                "through repro.rng.ensure_rng/spawn_child"
            )
        return ctx.finding(node, self.rule_id, message)
