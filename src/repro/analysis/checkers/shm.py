"""Rule ``shm-lifecycle``: every shared-memory allocation has a reachable release.

The process-backed parameter server maps numpy blocks into
``multiprocessing.shared_memory`` segments.  A segment without a reachable
``close``/``unlink`` outlives the process as an orphaned ``/dev/shm`` file —
the leak class ``tests/test_parallel_ps.py`` hunts dynamically with SIGKILL
injection; this rule catches it statically at review time.

A ``SharedMemory(...)`` constructor or ``*.allocate(...)`` call site is
accepted when any of these ownership patterns applies:

* it executes inside a ``with`` block (context-managed release),
* it executes inside a ``try`` whose ``finally`` calls ``close``/``unlink``,
* the created object is returned by the enclosing function (ownership
  transfers to the caller, as in ``SharedBlockManager.attach``),
* the enclosing class defines a cleanup method (``close``/``stop``/
  ``shutdown``/``__exit__``) that calls ``close``/``unlink``/``stop``, and
  registers it with ``atexit`` or is a context manager — the
  ``SharedBlockManager`` pattern itself.

Anything else is flagged.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.analysis.findings import Finding
from repro.analysis.framework import Checker, ModuleContext, attach_parents, dotted_name, parent_of, register

#: Method names that count as a class's resource-cleanup entry point.
CLEANUP_METHOD_NAMES = {"close", "stop", "shutdown", "__exit__"}

#: Attribute calls that count as releasing a segment.
RELEASE_ATTRS = {"close", "unlink", "stop"}


def _is_allocation_call(node: ast.Call) -> bool:
    name = dotted_name(node.func)
    if not name:
        return False
    last = name.split(".")[-1]
    return last in {"SharedMemory", "allocate"}


def _calls_release(tree: ast.AST) -> bool:
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in RELEASE_ATTRS
        ):
            return True
    return False


def _registers_atexit(tree: ast.AST) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and dotted_name(node.func) == "atexit.register":
            return True
    return False


class _ClassProfile:
    """Whether a class guarantees release of resources it allocates."""

    def __init__(self, node: ast.ClassDef) -> None:
        cleanup_methods = [
            member
            for member in node.body
            if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef))
            and member.name in CLEANUP_METHOD_NAMES
        ]
        self.has_cleanup = any(_calls_release(method) for method in cleanup_methods)
        self.has_atexit = _registers_atexit(node)
        self.is_context_manager = any(
            isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef))
            and member.name in {"__exit__", "__aexit__"}
            for member in node.body
        )

    @property
    def guarantees_release(self) -> bool:
        return self.has_cleanup and (self.has_atexit or self.is_context_manager)


def _assigned_names(node: ast.AST) -> Set[str]:
    """Names bound by the assignment statement wrapping an allocation call."""
    parent = parent_of(node)
    names: Set[str] = set()
    if isinstance(parent, ast.Assign):
        for target in parent.targets:
            for sub in ast.walk(target):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
    elif isinstance(parent, (ast.AnnAssign, ast.AugAssign)) and isinstance(
        parent.target, ast.Name
    ):
        names.add(parent.target.id)
    elif isinstance(parent, ast.Tuple):
        grand = parent_of(parent)
        if isinstance(grand, ast.Assign):
            for target in grand.targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
    return names


@register
class ShmLifecycleChecker(Checker):
    """Flags shared-memory allocations with no reachable release path."""

    rule_id = "shm-lifecycle"
    description = (
        "every SharedMemory/allocate site needs a reachable close/unlink: "
        "with-block, try/finally, ownership transfer, or an atexit-registered "
        "cleanup method"
    )

    def check_module(self, ctx: ModuleContext) -> List[Finding]:
        """Flag unguarded allocation sites in one module."""
        attach_parents(ctx.tree)
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call) and _is_allocation_call(node)):
                continue
            if self._is_guarded(node):
                continue
            findings.append(
                ctx.finding(
                    node,
                    self.rule_id,
                    f"{dotted_name(node.func)}(...) allocates a shared-memory "
                    "segment with no reachable close/unlink (use a context "
                    "manager, try/finally, or an atexit-registered cleanup)",
                )
            )
        return findings

    def _is_guarded(self, node: ast.Call) -> bool:
        names = _assigned_names(node)
        enclosing_function: Optional[ast.AST] = None
        current: Optional[ast.AST] = node
        while current is not None:
            parent = parent_of(current)
            if isinstance(parent, ast.With):
                return True
            if isinstance(parent, ast.Try) and current in parent.body:
                if any(_calls_release(stmt) for stmt in parent.finalbody):
                    return True
            if (
                isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef))
                and enclosing_function is None
            ):
                enclosing_function = parent
                if self._ownership_transferred(parent, names):
                    return True
            if isinstance(parent, ast.ClassDef) and enclosing_function is not None:
                if _ClassProfile(parent).guarantees_release:
                    return True
            current = parent
        return False

    @staticmethod
    def _ownership_transferred(
        function: ast.AST, names: Set[str]
    ) -> bool:
        """Whether the allocation (or its bound name) is returned to the caller."""
        for node in ast.walk(function):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Name) and sub.id in names:
                    return True
                if isinstance(sub, ast.Call) and _is_allocation_call(sub):
                    return True
        return False
