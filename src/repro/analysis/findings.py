"""The :class:`Finding` diagnostic record shared by all repo tooling.

One finding is one concrete problem at one location: a rule id, a
repo-relative path, a 1-based line number and a human-readable message.
The invariant linter, the doc link checker and the benchmark artifact
validator all emit this type, so every tool renders and suppresses
diagnostics the same way (see :mod:`repro.analysis.reporters` and
:mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: ``path:line: [rule] message``.

    ``path`` is repo-relative with ``/`` separators so findings compare and
    baseline-match identically across platforms.  Ordering sorts by path,
    then line, then rule — the stable order every reporter emits.
    """

    path: str
    line: int
    rule: str
    message: str

    def fingerprint(self) -> Tuple[str, str, str]:
        """Identity used for baseline matching: ``(rule, path, message)``.

        The line number is deliberately excluded so a suppressed finding
        stays suppressed when unrelated edits shift it a few lines.
        """
        return (self.rule, self.path, self.message)

    def format(self) -> str:
        """Render as the canonical one-line ``path:line: [rule] message``."""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form used by the JSON reporter and baselines."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Finding":
        """Rebuild a finding from :meth:`to_dict` output."""
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            rule=str(data["rule"]),
            message=str(data["message"]),
        )
