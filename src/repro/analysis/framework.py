"""Checker base class, module contexts and the rule registry.

A checker is a small AST analysis with a stable ``rule_id``.  Per-file rules
implement :meth:`Checker.check_module`; whole-program rules (the layering
checker) additionally collect state per module and emit their findings from
:meth:`Checker.finalize` once every file has been visited.

Checkers register themselves with the :func:`register` decorator at import
time; :func:`default_checkers` instantiates one fresh checker per registered
rule (checkers are stateful across a run, so instances are never shared
between runs).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Type

from repro.analysis.findings import Finding

#: Magic comment that suppresses every finding on its source line, e.g.
#: ``time.sleep(1)  # repro-lint: ignore[clock-discipline]``.  A bare
#: ``repro-lint: ignore`` suppresses all rules on the line.
IGNORE_COMMENT = "repro-lint: ignore"


@dataclass(frozen=True)
class ModuleContext:
    """Everything a checker needs to know about one source file.

    ``relpath`` is repo-relative and ``/``-separated (it becomes the
    :class:`~repro.analysis.findings.Finding` path); ``module_name`` is the
    dotted import name (``repro.nrl.distributed``) or ``""`` for files
    outside the importable tree.
    """

    path: Path
    relpath: str
    module_name: str
    source: str
    tree: ast.Module

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        """Build a finding anchored at ``node``'s source line."""
        return Finding(
            path=self.relpath,
            line=getattr(node, "lineno", 1),
            rule=rule,
            message=message,
        )

    def line_ignored(self, line: int, rule: str) -> bool:
        """Whether ``# repro-lint: ignore[...]`` suppresses ``rule`` on ``line``."""
        lines = self.source.splitlines()
        if not 1 <= line <= len(lines):
            return False
        text = lines[line - 1]
        marker = text.find(IGNORE_COMMENT)
        if marker < 0:
            return False
        rest = text[marker + len(IGNORE_COMMENT) :]
        if not rest.lstrip().startswith("["):
            return True  # bare ignore: every rule
        listed = rest.lstrip()[1:].split("]", 1)[0]
        return rule in {item.strip() for item in listed.split(",")}


class Checker:
    """Base class of one invariant rule.

    Subclasses set ``rule_id`` (stable kebab-case id reported in findings
    and matched by baselines) and ``description`` (one line, shown by
    ``lint_repo.py --list-rules``), then override :meth:`check_module`
    and/or :meth:`finalize`.
    """

    rule_id: str = ""
    description: str = ""

    def check_module(self, ctx: ModuleContext) -> List[Finding]:
        """Analyse one parsed module; return its findings (default: none)."""
        return []

    def finalize(self) -> List[Finding]:
        """Emit whole-program findings after every module was visited."""
        return []


_REGISTRY: Dict[str, Type[Checker]] = {}


def register(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator adding a checker to the default rule set."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} must define a rule_id")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate checker rule_id {cls.rule_id!r}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rule_ids() -> List[str]:
    """Registered rule ids, sorted (importing the bundled checkers first)."""
    import repro.analysis.checkers  # noqa: F401  (registers on import)

    return sorted(_REGISTRY)


def default_checkers(rules: List[str] | None = None) -> List[Checker]:
    """Fresh instances of the registered checkers.

    ``rules`` restricts the run to a subset of rule ids; unknown ids raise
    ``ValueError`` so a typo in ``--rules`` cannot silently skip a contract.
    """
    import repro.analysis.checkers  # noqa: F401  (registers on import)

    selected = sorted(_REGISTRY) if rules is None else list(rules)
    unknown = [rule for rule in selected if rule not in _REGISTRY]
    if unknown:
        raise ValueError(f"unknown rule ids: {unknown}; known: {sorted(_REGISTRY)}")
    return [_REGISTRY[rule]() for rule in selected]


def attach_parents(tree: ast.AST) -> None:
    """Annotate every node with its parent (``node._repro_parent``).

    Several checkers need to look outward from a match — e.g. "is this
    ``os.listdir`` call already wrapped in ``sorted()``?" — which the ast
    module does not support natively.
    """
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            child._repro_parent = parent  # type: ignore[attr-defined]


def parent_of(node: ast.AST) -> ast.AST | None:
    """The parent annotated by :func:`attach_parents` (``None`` at the root)."""
    return getattr(node, "_repro_parent", None)


def dotted_name(node: ast.AST) -> str:
    """Flatten an attribute chain to ``"a.b.c"`` (``""`` when not a chain)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""
