"""Render findings for humans (text) and machines (JSON).

Every repo tool that reports diagnostics — the invariant linter, the doc
link checker, the benchmark artifact validator — goes through these two
functions, so all tooling output shares one format and one JSON schema.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.analysis.baseline import BaselineEntry
from repro.analysis.findings import Finding

#: Version of the JSON report schema (bumped on incompatible change).
REPORT_SCHEMA_VERSION = 1


def render_text(
    findings: Sequence[Finding],
    *,
    suppressed: Sequence[Finding] = (),
    stale_baseline: Sequence[BaselineEntry] = (),
    tool: str = "lint",
) -> str:
    """Human-readable report: one ``path:line: [rule] message`` per finding.

    Suppressed findings and stale baseline entries are summarised after the
    main listing so a clean run still shows what the baseline is hiding.
    """
    lines: List[str] = []
    for finding in sorted(findings):
        lines.append(finding.format())
    if findings:
        lines.append(f"{tool}: {len(findings)} finding(s)")
    else:
        lines.append(f"{tool}: clean")
    if suppressed:
        lines.append(f"{tool}: {len(suppressed)} finding(s) suppressed by baseline")
    for entry in stale_baseline:
        lines.append(
            f"{tool}: stale baseline entry [{entry.rule}] {entry.path}: {entry.message!r}"
        )
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    *,
    suppressed: Sequence[Finding] = (),
    stale_baseline: Sequence[BaselineEntry] = (),
    tool: str = "lint",
) -> str:
    """Machine-readable report with a stable schema.

    Top-level keys: ``schema_version``, ``tool``, ``counts`` (``findings`` /
    ``suppressed`` / ``stale_baseline``), ``findings`` (sorted
    ``Finding.to_dict`` records), ``suppressed`` and ``stale_baseline``.
    """
    payload: Dict[str, object] = {
        "schema_version": REPORT_SCHEMA_VERSION,
        "tool": tool,
        "counts": {
            "findings": len(findings),
            "suppressed": len(suppressed),
            "stale_baseline": len(stale_baseline),
        },
        "findings": [finding.to_dict() for finding in sorted(findings)],
        "suppressed": [finding.to_dict() for finding in sorted(suppressed)],
        "stale_baseline": [entry.to_dict() for entry in stale_baseline],
    }
    return json.dumps(payload, indent=2) + "\n"
