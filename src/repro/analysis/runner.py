"""File discovery and checker orchestration.

:func:`run_analysis` walks a source tree, parses every ``*.py`` once, feeds
each module to every checker, collects the whole-program findings, filters
``# repro-lint: ignore`` lines and partitions the result against a baseline.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.findings import Finding
from repro.analysis.framework import Checker, ModuleContext, default_checkers
from repro.analysis.reporters import render_json, render_text


@dataclass
class AnalysisReport:
    """Outcome of one analysis run.

    ``findings`` are the *actionable* diagnostics (not baseline-suppressed);
    ``suppressed`` are matched by the baseline; ``stale_baseline`` lists
    baseline entries that matched nothing and should be deleted.
    """

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    stale_baseline: List[BaselineEntry] = field(default_factory=list)
    files_scanned: int = 0
    parse_errors: List[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the tree is clean (no actionable findings, parseable)."""
        return not self.findings and not self.parse_errors

    def all_findings(self) -> List[Finding]:
        """Actionable findings plus parse errors, sorted."""
        return sorted(self.findings + self.parse_errors)

    def render_text(self, *, tool: str = "lint") -> str:
        """Human-readable report (see :func:`repro.analysis.reporters.render_text`)."""
        return render_text(
            self.all_findings(),
            suppressed=self.suppressed,
            stale_baseline=self.stale_baseline,
            tool=tool,
        )

    def render_json(self, *, tool: str = "lint") -> str:
        """JSON report (see :func:`repro.analysis.reporters.render_json`)."""
        return render_json(
            self.all_findings(),
            suppressed=self.suppressed,
            stale_baseline=self.stale_baseline,
            tool=tool,
        )


def iter_source_files(root: Path) -> List[Path]:
    """Every ``*.py`` under ``root`` in sorted order (``__pycache__`` skipped).

    A single file root yields itself, so ``lint_repo.py path/to/file.py``
    works for spot checks.
    """
    if root.is_file():
        return [root]
    return sorted(
        path
        for path in root.rglob("*.py")
        if "__pycache__" not in path.parts
    )


def module_name_for(path: Path, src_root: Optional[Path]) -> str:
    """Dotted import name of ``path`` relative to ``src_root`` (or ``""``).

    ``src/repro/nrl/distributed.py`` -> ``repro.nrl.distributed``;
    package ``__init__.py`` files map to the package name itself.
    """
    if src_root is None:
        return ""
    try:
        relative = path.resolve().relative_to(src_root.resolve())
    except ValueError:
        return ""
    parts = list(relative.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _relpath(path: Path, repo_root: Optional[Path]) -> str:
    if repo_root is not None:
        try:
            return path.resolve().relative_to(repo_root.resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def run_analysis(
    root: Path,
    *,
    repo_root: Optional[Path] = None,
    src_root: Optional[Path] = None,
    checkers: Optional[Sequence[Checker]] = None,
    baseline: Optional[Baseline] = None,
) -> AnalysisReport:
    """Run every checker over the tree rooted at ``root``.

    ``repo_root`` anchors the repo-relative finding paths (default: the
    parent of ``src_root``, else ``root``); ``src_root`` is the import root
    used to derive dotted module names (default: the nearest ancestor of
    ``root`` named ``src``, if any).  ``checkers`` defaults to the full
    registered rule set and ``baseline`` to an empty baseline.
    """
    if src_root is None:
        for candidate in (root, *root.resolve().parents):
            if candidate.name == "src":
                src_root = candidate
                break
    if repo_root is None:
        repo_root = src_root.parent if src_root is not None else root
    active = list(checkers) if checkers is not None else default_checkers()
    baseline = baseline or Baseline()

    report = AnalysisReport()
    raw: List[Finding] = []
    contexts: dict[str, ModuleContext] = {}
    for path in iter_source_files(root):
        source = path.read_text()
        relpath = _relpath(path, repo_root)
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            report.parse_errors.append(
                Finding(
                    path=relpath,
                    line=exc.lineno or 1,
                    rule="parse-error",
                    message=f"cannot parse: {exc.msg}",
                )
            )
            continue
        ctx = ModuleContext(
            path=path,
            relpath=relpath,
            module_name=module_name_for(path, src_root),
            source=source,
            tree=tree,
        )
        contexts[relpath] = ctx
        report.files_scanned += 1
        for checker in active:
            raw.extend(checker.check_module(ctx))
    for checker in active:
        raw.extend(checker.finalize())

    kept = [
        finding
        for finding in raw
        if not (
            finding.path in contexts
            and contexts[finding.path].line_ignored(finding.line, finding.rule)
        )
    ]
    report.findings, report.suppressed = baseline.partition(kept)
    report.stale_baseline = baseline.stale_entries(kept)
    return report
