"""TitAnt core: the offline-training / online-prediction pipeline.

This package ties every substrate together into the system of Figure 3:

* :mod:`repro.core.evaluation` — F1, precision/recall, rec@top-k% (Figure 9),
  threshold selection on the training window,
* :mod:`repro.core.config` — configuration objects naming the eleven Table 1
  configurations and the model hyperparameters of Section 5.1,
* :mod:`repro.core.pipeline` — the offline T+1 training pipeline
  (MaxCompute ETL → transaction network → NRL on KunPeng → classifier →
  upload to Ali-HBase / Model Server),
* :mod:`repro.core.experiment` — the rolling-evaluation harness that
  regenerates the paper's tables and figures,
* :mod:`repro.core.registry` — versioned model registry shared by the offline
  trainer and the online Model Server.
"""

from repro.core.evaluation import (
    EvaluationMetrics,
    SliceRecall,
    confusion_counts,
    f1_score,
    precision_recall,
    recall_at_top_percent,
    recall_by_slice,
    select_threshold,
    evaluate_detector,
    typology_recall_report,
)
from repro.core.config import (
    FeatureSetName,
    DetectorName,
    ExperimentConfig,
    ModelHyperparameters,
    TABLE1_CONFIGURATIONS,
    Table1Configuration,
)
from repro.core.pipeline import OfflineTrainingPipeline, TrainedModelBundle
from repro.core.experiment import ExperimentRunner, ConfigurationResult, DailyResult
from repro.core.registry import ModelRegistry, ModelVersion

__all__ = [
    "EvaluationMetrics",
    "SliceRecall",
    "confusion_counts",
    "f1_score",
    "precision_recall",
    "recall_at_top_percent",
    "recall_by_slice",
    "select_threshold",
    "evaluate_detector",
    "typology_recall_report",
    "FeatureSetName",
    "DetectorName",
    "ExperimentConfig",
    "ModelHyperparameters",
    "TABLE1_CONFIGURATIONS",
    "Table1Configuration",
    "OfflineTrainingPipeline",
    "TrainedModelBundle",
    "ExperimentRunner",
    "ConfigurationResult",
    "DailyResult",
    "ModelRegistry",
    "ModelVersion",
]
