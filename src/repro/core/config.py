"""Experiment configuration objects.

Section 5.1 of the paper fixes the hyperparameters of every component; this
module encodes them once so that the pipeline, the experiment harness and the
benchmarks all agree.  It also enumerates the eleven configurations of
Table 1 (detector × feature set) by name.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Dict, List, Optional

from repro.exceptions import ConfigurationError
from repro.features.aggregation import AggregationConfig


class FeatureSetName(str, Enum):
    """Which feature blocks are concatenated into the design matrix."""

    BASIC = "basic"
    BASIC_S2V = "basic+s2v"
    BASIC_DW = "basic+dw"
    BASIC_DW_S2V = "basic+dw+s2v"

    @property
    def uses_deepwalk(self) -> bool:
        return self in (FeatureSetName.BASIC_DW, FeatureSetName.BASIC_DW_S2V)

    @property
    def uses_structure2vec(self) -> bool:
        return self in (FeatureSetName.BASIC_S2V, FeatureSetName.BASIC_DW_S2V)


class DetectorName(str, Enum):
    """The five detection methods compared in the paper."""

    ISOLATION_FOREST = "if"
    ID3 = "id3"
    C50 = "c50"
    LOGISTIC_REGRESSION = "lr"
    GBDT = "gbdt"


@dataclass(frozen=True)
class Table1Configuration:
    """One row of Table 1: a detector applied to a feature set."""

    number: int
    detector: DetectorName
    feature_set: FeatureSetName

    @property
    def label(self) -> str:
        """Human-readable row label matching the paper's wording."""
        feature_label = {
            FeatureSetName.BASIC: "Basic Features",
            FeatureSetName.BASIC_S2V: "Basic Features+S2V",
            FeatureSetName.BASIC_DW: "Basic Features+DW",
            FeatureSetName.BASIC_DW_S2V: "Basic Features+DW+S2V",
        }[self.feature_set]
        detector_label = {
            DetectorName.ISOLATION_FOREST: "IF",
            DetectorName.ID3: "ID3",
            DetectorName.C50: "C5.0",
            DetectorName.LOGISTIC_REGRESSION: "LR",
            DetectorName.GBDT: "GBDT",
        }[self.detector]
        return f"{feature_label}+{detector_label}"


#: The eleven configurations of Table 1, in the paper's row order.
TABLE1_CONFIGURATIONS: List[Table1Configuration] = [
    Table1Configuration(1, DetectorName.ISOLATION_FOREST, FeatureSetName.BASIC),
    Table1Configuration(2, DetectorName.ID3, FeatureSetName.BASIC),
    Table1Configuration(3, DetectorName.C50, FeatureSetName.BASIC),
    Table1Configuration(4, DetectorName.LOGISTIC_REGRESSION, FeatureSetName.BASIC),
    Table1Configuration(5, DetectorName.GBDT, FeatureSetName.BASIC),
    Table1Configuration(6, DetectorName.LOGISTIC_REGRESSION, FeatureSetName.BASIC_S2V),
    Table1Configuration(7, DetectorName.GBDT, FeatureSetName.BASIC_S2V),
    Table1Configuration(8, DetectorName.LOGISTIC_REGRESSION, FeatureSetName.BASIC_DW),
    Table1Configuration(9, DetectorName.GBDT, FeatureSetName.BASIC_DW),
    Table1Configuration(10, DetectorName.LOGISTIC_REGRESSION, FeatureSetName.BASIC_DW_S2V),
    Table1Configuration(11, DetectorName.GBDT, FeatureSetName.BASIC_DW_S2V),
]


@dataclass
class ModelHyperparameters:
    """Hyperparameters of every component, defaulting to Section 5.1's values.

    ``scaled_down`` produces a configuration with the same structure but
    smaller iteration counts so that the full evaluation runs on a laptop in
    seconds; the benchmarks use it by default and the paper-scale values stay
    one call away.
    """

    # NRL
    embedding_dimension: int = 32
    deepwalk_walk_length: int = 50
    deepwalk_num_walks: int = 100
    deepwalk_window: int = 5
    deepwalk_epochs: int = 2
    s2v_epochs: int = 150
    s2v_propagation_rounds: int = 2
    # Isolation Forest
    if_num_trees: int = 100
    # Logistic Regression
    lr_l1: float = 0.1
    lr_iterations: int = 300
    lr_discretize_bins: int = 200
    # GBDT
    gbdt_num_trees: int = 400
    gbdt_max_depth: int = 3
    gbdt_subsample: float = 0.4
    # Rule-based trees
    id3_max_depth: int = 6
    id3_bins: int = 10
    c50_max_depth: int = 8
    seed: int = 17

    def validate(self) -> None:
        if self.embedding_dimension <= 0:
            raise ConfigurationError("embedding_dimension must be positive")
        if not 0.0 < self.gbdt_subsample <= 1.0:
            raise ConfigurationError("gbdt_subsample must be in (0, 1]")
        for name in (
            "deepwalk_walk_length",
            "deepwalk_num_walks",
            "deepwalk_epochs",
            "s2v_epochs",
            "if_num_trees",
            "lr_iterations",
            "gbdt_num_trees",
            "gbdt_max_depth",
            "id3_max_depth",
            "c50_max_depth",
        ):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"{name} must be at least 1")

    @classmethod
    def paper_scale(cls) -> "ModelHyperparameters":
        """The exact values reported in Section 5.1."""
        return cls()

    @classmethod
    def laptop_scale(cls, *, seed: int = 17) -> "ModelHyperparameters":
        """Reduced iteration counts for the synthetic laptop-scale worlds."""
        return cls(
            deepwalk_walk_length=30,
            deepwalk_num_walks=15,
            deepwalk_window=5,
            deepwalk_epochs=2,
            s2v_epochs=80,
            if_num_trees=60,
            lr_iterations=150,
            lr_discretize_bins=30,
            gbdt_num_trees=80,
            seed=seed,
        )

    @classmethod
    def fast_test_scale(cls, *, seed: int = 17) -> "ModelHyperparameters":
        """Minimal settings for unit tests: every component runs in well under a second."""
        return cls(
            embedding_dimension=8,
            deepwalk_walk_length=10,
            deepwalk_num_walks=3,
            deepwalk_window=3,
            deepwalk_epochs=1,
            s2v_epochs=15,
            if_num_trees=20,
            lr_iterations=40,
            lr_discretize_bins=8,
            gbdt_num_trees=15,
            seed=seed,
        )

    def with_overrides(self, **overrides: object) -> "ModelHyperparameters":
        """Copy with selected fields replaced (used by the sweep benchmarks)."""
        return replace(self, **overrides)  # type: ignore[arg-type]


@dataclass
class ExperimentConfig:
    """Configuration of a rolling T+1 experiment."""

    num_datasets: int = 7
    network_days: int = 90
    train_days: int = 14
    first_test_day: Optional[int] = None
    hyperparameters: ModelHyperparameters = field(default_factory=ModelHyperparameters)
    configurations: List[Table1Configuration] = field(
        default_factory=lambda: list(TABLE1_CONFIGURATIONS)
    )
    #: Attach embeddings of the payer, payee or both transaction endpoints.
    embedding_side: str = "both"
    #: Optional sliding-window aggregation features (window definition shared
    #: by training matrices, the exported plan, and online streaming serving).
    aggregation: Optional[AggregationConfig] = None

    def validate(self) -> None:
        if self.num_datasets < 1:
            raise ConfigurationError("num_datasets must be at least 1")
        if self.network_days < 1 or self.train_days < 1:
            raise ConfigurationError("network_days and train_days must be positive")
        if self.embedding_side not in ("payer", "payee", "both"):
            raise ConfigurationError("embedding_side must be 'payer', 'payee' or 'both'")
        if self.aggregation is not None:
            self.aggregation.validate()
        self.hyperparameters.validate()
        numbers = [c.number for c in self.configurations]
        if len(set(numbers)) != len(numbers):
            raise ConfigurationError("configuration numbers must be unique")

    @classmethod
    def laptop_scale(
        cls,
        *,
        num_datasets: int = 3,
        network_days: int = 25,
        train_days: int = 7,
        seed: int = 17,
    ) -> "ExperimentConfig":
        """A compact rolling evaluation used by tests and default benchmarks."""
        return cls(
            num_datasets=num_datasets,
            network_days=network_days,
            train_days=train_days,
            hyperparameters=ModelHyperparameters.laptop_scale(seed=seed),
        )

    def feature_sets_required(self) -> Dict[str, bool]:
        """Which embedding models the selected configurations need."""
        return {
            "deepwalk": any(c.feature_set.uses_deepwalk for c in self.configurations),
            "structure2vec": any(
                c.feature_set.uses_structure2vec for c in self.configurations
            ),
        }
