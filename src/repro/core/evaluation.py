"""Evaluation metrics.

The paper reports two metrics:

* **F1 score** (Table 1, Figures 11/12, Table 2) — harmonic mean of precision
  and recall of the fraud class,
* **rec@top k%** (Figure 9) — recall restricted to the k % most suspicious
  transactions, "the ability of the classifier to find the most suspicious
  fraud".

Labels arrive with a delay in production, so the decision threshold cannot be
tuned on the test day; :func:`select_threshold` picks it on the training
window, mirroring how the deployed system calibrates alert volume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ModelError
from repro.models.base import BaseDetector


@dataclass
class EvaluationMetrics:
    """All per-day metrics produced by the experiment harness."""

    f1: float
    precision: float
    recall: float
    recall_at_top_1pct: float
    threshold: float
    num_transactions: int
    num_frauds: int
    extras: Dict[str, float] | None = None

    def as_dict(self) -> Dict[str, float]:
        result = {
            "f1": self.f1,
            "precision": self.precision,
            "recall": self.recall,
            "recall_at_top_1pct": self.recall_at_top_1pct,
            "threshold": self.threshold,
            "num_transactions": float(self.num_transactions),
            "num_frauds": float(self.num_frauds),
        }
        if self.extras:
            result.update(self.extras)
        return result


def _validate(labels: np.ndarray, scores: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    labels = np.asarray(labels, dtype=np.float64).ravel()
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if labels.shape[0] != scores.shape[0]:
        raise ModelError(
            f"{labels.shape[0]} labels do not match {scores.shape[0]} scores"
        )
    if labels.shape[0] == 0:
        raise ModelError("cannot evaluate on an empty set")
    return labels, scores


def confusion_counts(
    labels: np.ndarray, predictions: np.ndarray
) -> Tuple[int, int, int, int]:
    """Return (true positives, false positives, false negatives, true negatives)."""
    labels, predictions = _validate(labels, predictions)
    positives = predictions >= 0.5
    actual = labels >= 0.5
    tp = int(np.sum(positives & actual))
    fp = int(np.sum(positives & ~actual))
    fn = int(np.sum(~positives & actual))
    tn = int(np.sum(~positives & ~actual))
    return tp, fp, fn, tn


def precision_recall(labels: np.ndarray, predictions: np.ndarray) -> Tuple[float, float]:
    """Precision and recall of the fraud (positive) class."""
    tp, fp, fn, _ = confusion_counts(labels, predictions)
    precision = tp / (tp + fp) if (tp + fp) > 0 else 0.0
    recall = tp / (tp + fn) if (tp + fn) > 0 else 0.0
    return precision, recall


def f1_score(labels: np.ndarray, scores: np.ndarray, *, threshold: float = 0.5) -> float:
    """F1 of the fraud class at ``threshold``."""
    labels, scores = _validate(labels, scores)
    predictions = (scores >= threshold).astype(np.float64)
    precision, recall = precision_recall(labels, predictions)
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def recall_at_top_percent(
    labels: np.ndarray, scores: np.ndarray, *, percent: float = 1.0
) -> float:
    """Recall restricted to the top ``percent`` % most suspicious transactions.

    This is the paper's rec@top 1 % (Figure 9): sort by descending score, keep
    the top percent, and compute which fraction of all frauds falls inside.
    """
    labels, scores = _validate(labels, scores)
    if not 0.0 < percent <= 100.0:
        raise ModelError("percent must be in (0, 100]")
    total_frauds = float(labels.sum())
    if total_frauds == 0.0:
        return 0.0
    count = max(1, int(round(labels.shape[0] * percent / 100.0)))
    top_indices = np.argsort(-scores, kind="stable")[:count]
    return float(labels[top_indices].sum() / total_frauds)


def select_threshold(
    labels: np.ndarray,
    scores: np.ndarray,
    *,
    grid_size: int = 99,
) -> float:
    """Pick the score threshold maximising F1 on (training) data.

    Candidate thresholds are score quantiles, so the grid adapts to however a
    model distributes its probabilities (IF scores concentrate around 0.5,
    GBDT's spread over the whole unit interval).
    """
    labels, scores = _validate(labels, scores)
    if labels.sum() == 0:
        return 0.5
    quantiles = np.linspace(0.01, 0.99, grid_size)
    candidates = np.unique(np.quantile(scores, quantiles))
    best_threshold, best_f1 = 0.5, -1.0
    for candidate in candidates:
        score = f1_score(labels, scores, threshold=float(candidate))
        if score > best_f1:
            best_f1 = score
            best_threshold = float(candidate)
    return best_threshold


def roc_auc(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve (rank statistic, ties averaged).

    Threshold-free companion to the paper's F1/rec@top-k metrics, used by the
    exact-vs-histogram GBDT A/B to assert score-quality parity without
    depending on the calibrated decision threshold.  Returns 0.5 when only
    one class is present.
    """
    labels, scores = _validate(labels, scores)
    num_rows = labels.shape[0]
    positives = labels.sum()
    negatives = num_rows - positives
    if positives == 0 or negatives == 0:
        return 0.5
    order = np.argsort(scores, kind="mergesort")
    sorted_scores = scores[order]
    boundaries = np.nonzero(np.diff(sorted_scores))[0] + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [num_rows]])
    # 1-based ranks; a tie group spanning [start, end) gets the average rank.
    average_ranks = (starts + ends + 1) / 2.0
    ranks = np.empty(num_rows)
    ranks[order] = np.repeat(average_ranks, ends - starts)
    positive_rank_sum = ranks[labels > 0.5].sum()
    return float(
        (positive_rank_sum - positives * (positives + 1) / 2.0) / (positives * negatives)
    )


def evaluate_scores(
    labels: np.ndarray,
    scores: np.ndarray,
    *,
    threshold: Optional[float] = None,
) -> EvaluationMetrics:
    """Compute the full metric bundle for pre-computed scores."""
    labels, scores = _validate(labels, scores)
    if threshold is None:
        threshold = select_threshold(labels, scores)
    predictions = (scores >= threshold).astype(np.float64)
    precision, recall = precision_recall(labels, predictions)
    return EvaluationMetrics(
        f1=f1_score(labels, scores, threshold=threshold),
        precision=precision,
        recall=recall,
        recall_at_top_1pct=recall_at_top_percent(labels, scores, percent=1.0),
        threshold=threshold,
        num_transactions=int(labels.shape[0]),
        num_frauds=int(labels.sum()),
    )


def evaluate_detector(
    detector: BaseDetector,
    train_features: np.ndarray,
    train_labels: np.ndarray,
    test_features: np.ndarray,
    test_labels: np.ndarray,
) -> EvaluationMetrics:
    """Fit-free evaluation helper: threshold from train scores, metrics on test.

    The detector must already be fitted; this mirrors the production T+1 flow
    where the day's model is calibrated on the training window and applied
    unchanged to the next day.
    """
    train_scores = detector.predict_proba(train_features)
    threshold = select_threshold(np.asarray(train_labels), train_scores)
    test_scores = detector.predict_proba(test_features)
    return evaluate_scores(np.asarray(test_labels), test_scores, threshold=threshold)


def mean_metric(values: Sequence[float]) -> float:
    """Mean of a metric over days (used for Table 1 averages)."""
    if not values:
        return 0.0
    return float(np.mean(values))


@dataclass
class SliceRecall:
    """Recall of one labelled evaluation slice at a fixed threshold.

    ``recall`` is the fraction of the slice's frauds the detector alerted on
    at the shared threshold — per-slice recall against a global operating
    point, not a per-slice re-calibration.
    """

    slice_name: str
    num_frauds: int
    num_detected: int

    @property
    def recall(self) -> float:
        """Detected fraction of this slice's frauds (0.0 for an empty slice)."""
        return self.num_detected / self.num_frauds if self.num_frauds else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Flat-dict form used by the typology benchmark artifact."""
        return {
            "num_frauds": float(self.num_frauds),
            "num_detected": float(self.num_detected),
            "recall": self.recall,
        }


def recall_by_slice(
    labels: np.ndarray,
    scores: np.ndarray,
    slices: Sequence[str],
    *,
    threshold: float,
) -> Dict[str, SliceRecall]:
    """Per-slice recall at one shared decision threshold.

    ``slices`` assigns each row a slice name (rows with an empty name are
    ignored); only fraud rows contribute.  The same threshold is applied to
    every slice — the question answered is "at the operating point we deploy,
    which fraud scenarios do we catch?", which a single pooled recall hides
    (a detector can post high overall recall while missing an entire
    low-volume typology).
    """
    labels, scores = _validate(labels, scores)
    if len(slices) != labels.shape[0]:
        raise ModelError(
            f"{len(slices)} slice names do not match {labels.shape[0]} rows"
        )
    detected = scores >= threshold
    results: Dict[str, SliceRecall] = {}
    for row, name in enumerate(slices):
        if not name or labels[row] < 0.5:
            continue
        entry = results.setdefault(name, SliceRecall(name, 0, 0))
        entry.num_frauds += 1
        if detected[row]:
            entry.num_detected += 1
    return results


def typology_recall_report(
    transactions: Sequence,
    scores: np.ndarray,
    *,
    threshold: float,
) -> Dict[str, SliceRecall]:
    """Per-fraud-typology recall for a scored transaction slice.

    Slices come from each transaction's ``fraud_typology`` tag (set by the
    labelled typology suite in :mod:`repro.datagen.fraud`); untagged rows —
    normal transfers and background fraud — are excluded.  Returns a dict
    keyed by typology name, sorted by name for stable reporting.
    """
    labels = np.array([1.0 if txn.is_fraud else 0.0 for txn in transactions])
    slices = [txn.fraud_typology for txn in transactions]
    results = recall_by_slice(labels, scores, slices, threshold=threshold)
    return {name: results[name] for name in sorted(results)}
