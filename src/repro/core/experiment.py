"""Rolling T+1 experiment harness.

Regenerates the paper's evaluation: Table 1 (eleven configurations × seven
consecutive test days), Figure 9 (rec@top 1 % per detector), Figure 11
(embedding-dimension sweep), Figure 12 (GBDT tree-count sweep) and Table 2
(DeepWalk node-sampling sweep).  Absolute numbers depend on the synthetic
world; the harness is written so the orderings and trends the paper reports
can be checked programmatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import (
    DetectorName,
    ExperimentConfig,
    FeatureSetName,
    Table1Configuration,
    TABLE1_CONFIGURATIONS,
)
from repro.core.evaluation import (
    EvaluationMetrics,
    evaluate_scores,
    recall_at_top_percent,
    select_threshold,
)
from repro.core.pipeline import OfflineTrainingPipeline, SlicePreparation, build_detector
from repro.datagen.datasets import RollingDatasets
from repro.datagen.transactions import TransactionWorld
from repro.exceptions import ConfigurationError
from repro.hbase.client import HBaseClient
from repro.logging_utils import get_logger
from repro.models.gbdt import GradientBoostingClassifier
from repro.serving.alipay import AlipayServer
from repro.serving.model_server import ModelServer, ModelServerConfig

logger = get_logger("core.experiment")


@dataclass
class DailyResult:
    """Metrics of one configuration on one test day."""

    test_day: int
    metrics: EvaluationMetrics

    @property
    def f1(self) -> float:
        return self.metrics.f1


@dataclass
class ConfigurationResult:
    """One row of Table 1: per-day metrics plus the average."""

    configuration: Table1Configuration
    daily: List[DailyResult] = field(default_factory=list)

    @property
    def label(self) -> str:
        return self.configuration.label

    @property
    def mean_f1(self) -> float:
        return float(np.mean([d.f1 for d in self.daily])) if self.daily else 0.0

    @property
    def mean_recall_at_top_1pct(self) -> float:
        if not self.daily:
            return 0.0
        return float(np.mean([d.metrics.recall_at_top_1pct for d in self.daily]))

    def f1_by_day(self) -> Dict[int, float]:
        return {d.test_day: d.f1 for d in self.daily}


class ExperimentRunner:
    """Runs the rolling evaluation on a generated transaction world.

    Accepts either a materialized
    :class:`~repro.datagen.transactions.TransactionWorld` or a
    :class:`~repro.datagen.stream.WorldStream` (positioned at its start).
    With a stream, dataset slices are assembled in a single streaming pass
    (:meth:`RollingDatasets.from_stream`) and cached, so the full
    transaction list is never materialized outside the slice windows the
    evaluation actually needs.
    """

    def __init__(self, world, config: Optional[ExperimentConfig] = None):
        from repro.datagen.stream import ScalableWorldStream, WorldStream

        if isinstance(world, ScalableWorldStream):
            raise ConfigurationError(
                "ExperimentRunner needs per-user profiles for the offline "
                "pipeline; columnar ScalableWorldStream populations are for "
                "the serving/load path — use a WorldStream (or materialized "
                "TransactionWorld) for experiments"
            )
        self._stream = world if isinstance(world, WorldStream) else None
        self.world = world
        self.config = config or ExperimentConfig.laptop_scale()
        self.config.validate()
        self.pipeline = OfflineTrainingPipeline(
            world.profiles_by_id,
            self.config.hyperparameters,
            embedding_side=self.config.embedding_side,
            aggregation=self.config.aggregation,
        )
        self._preparations: Dict[int, SlicePreparation] = {}
        self._stream_datasets: Optional[RollingDatasets] = None

    # ------------------------------------------------------------------
    def datasets(self) -> RollingDatasets:
        """The configured rolling T+1 dataset slices of the world."""
        if self._stream is not None:
            if self._stream_datasets is None:
                self._stream_datasets = RollingDatasets.from_stream(
                    self._stream,
                    num_datasets=self.config.num_datasets,
                    network_days=self.config.network_days,
                    train_days=self.config.train_days,
                    first_test_day=self.config.first_test_day,
                )
            return self._stream_datasets
        return RollingDatasets.build(
            self.world,
            num_datasets=self.config.num_datasets,
            network_days=self.config.network_days,
            train_days=self.config.train_days,
            first_test_day=self.config.first_test_day,
        )

    def preparation_for(self, dataset, **overrides) -> SlicePreparation:
        """Prepare (and cache) the network + embeddings of one dataset slice."""
        key = dataset.spec.test_day
        if overrides:
            return self._prepare(dataset, **overrides)
        if key not in self._preparations:
            needs = self.config.feature_sets_required()
            self._preparations[key] = self._prepare(
                dataset,
                need_deepwalk=needs["deepwalk"],
                need_structure2vec=needs["structure2vec"],
            )
        return self._preparations[key]

    def _prepare(self, dataset, **kwargs) -> SlicePreparation:
        return self.pipeline.prepare(dataset, **kwargs)

    # ------------------------------------------------------------------
    # Table 1
    # ------------------------------------------------------------------
    def run_table1(
        self,
        *,
        configurations: Optional[Sequence[Table1Configuration]] = None,
    ) -> List[ConfigurationResult]:
        """Run every configuration over every rolling dataset."""
        configurations = list(configurations or self.config.configurations)
        results = [ConfigurationResult(configuration=c) for c in configurations]
        for dataset in self.datasets():
            preparation = self.preparation_for(dataset)
            for result in results:
                metrics = self._run_configuration(preparation, result.configuration)
                result.daily.append(DailyResult(test_day=dataset.spec.test_day, metrics=metrics))
                logger.debug(
                    "day %d %s F1=%.4f",
                    dataset.spec.test_day,
                    result.label,
                    metrics.f1,
                )
        return results

    def _run_configuration(
        self,
        preparation: SlicePreparation,
        configuration: Table1Configuration,
    ) -> EvaluationMetrics:
        """Train one configuration and score the test day.

        The paper does not state how the F1 decision threshold is chosen, and
        several detectors produce very differently calibrated scores (IF
        anomaly scores concentrate near 0.5, boosted trees can be near-perfect
        on the training window).  To compare methods on equal footing we
        report the best attainable F1 over thresholds on the test scores —
        a threshold-free ranking-quality metric — while the production
        deployment path (ModelServer) keeps using the threshold calibrated on
        the training window (``bundle.threshold``).
        """
        bundle = self.pipeline.train(preparation, configuration)
        test_matrix = self.pipeline.evaluate(preparation, bundle)
        scores = bundle.detector.predict_proba(test_matrix.values)
        return evaluate_scores(test_matrix.labels, scores, threshold=None)

    # ------------------------------------------------------------------
    # Online serving stack (used by the latency benchmark and examples)
    # ------------------------------------------------------------------
    def build_serving_stack(
        self,
        preparation: SlicePreparation,
        configuration: Table1Configuration,
        *,
        num_servers: int = 1,
        sla_budget_ms: float = 50.0,
        row_cache_ttl_s: Optional[float] = None,
        row_cache_rows: Optional[int] = None,
        router=None,
        registry=None,
    ):
        """Train one configuration and deploy it to a fresh online stack.

        Returns ``(bundle, hbase, servers, alipay)``: the trained bundle, the
        Ali-HBase store populated with per-user features and embeddings, the
        Model Server fleet with the model + exported FeaturePlan hot-loaded,
        and an Alipay front end balancing across the fleet.  With sliding
        window aggregation configured, the front end comes wired to the
        pre-seeded streaming feature updater, so replayed transactions keep
        the served aggregates fresh.

        Each server runs on its own :meth:`HBaseClient.connection` (a private
        client-side row cache over the shared store — the real fleet shape;
        size it with ``row_cache_ttl_s``/``row_cache_rows``).  ``router``
        selects the front-end policy (e.g.
        :class:`~repro.serving.router.ServingRouter` for account sharding);
        ``registry`` routes the fleet load through the registry-driven
        :class:`~repro.serving.rotation.FleetController` path.
        """
        bundle = self.pipeline.train(preparation, configuration)
        hbase = HBaseClient()
        servers = [
            ModelServer(
                hbase.connection(
                    row_cache_ttl_s=row_cache_ttl_s, row_cache_rows=row_cache_rows
                ),
                ModelServerConfig(sla_budget_ms=sla_budget_ms),
            )
            for _ in range(num_servers)
        ]
        updater = self.pipeline.deploy_fleet(
            bundle, preparation, hbase, servers, registry=registry
        )
        return bundle, hbase, servers, AlipayServer(
            servers, feature_updater=updater, router=router
        )

    # ------------------------------------------------------------------
    # Figure 9: rec@top 1 % per detection method
    # ------------------------------------------------------------------
    def run_recall_at_top(
        self,
        *,
        percent: float = 1.0,
        detectors: Sequence[DetectorName] = (
            DetectorName.ISOLATION_FOREST,
            DetectorName.ID3,
            DetectorName.C50,
            DetectorName.LOGISTIC_REGRESSION,
            DetectorName.GBDT,
        ),
        feature_set: FeatureSetName = FeatureSetName.BASIC_DW,
    ) -> Dict[str, float]:
        """rec@top percent for each detector on Dataset 1.

        IF, ID3 and C5.0 are always evaluated on basic features only (as in
        Table 1); LR and GBDT use ``feature_set``.
        """
        dataset = self.datasets()[0]
        preparation = self.preparation_for(dataset)
        results: Dict[str, float] = {}
        for detector_name in detectors:
            if detector_name in (
                DetectorName.ISOLATION_FOREST,
                DetectorName.ID3,
                DetectorName.C50,
            ):
                configuration = Table1Configuration(0, detector_name, FeatureSetName.BASIC)
            else:
                configuration = Table1Configuration(0, detector_name, feature_set)
            bundle = self.pipeline.train(preparation, configuration)
            test_matrix = self.pipeline.evaluate(preparation, bundle)
            scores = bundle.detector.predict_proba(test_matrix.values)
            results[detector_name.value] = recall_at_top_percent(
                test_matrix.labels, scores, percent=percent
            )
        return results

    # ------------------------------------------------------------------
    # Figure 11: embedding-dimension sweep
    # ------------------------------------------------------------------
    def run_dimension_sweep(
        self,
        dimensions: Sequence[int] = (8, 16, 32, 64),
        *,
        feature_sets: Sequence[FeatureSetName] = (
            FeatureSetName.BASIC_S2V,
            FeatureSetName.BASIC_DW,
            FeatureSetName.BASIC_DW_S2V,
        ),
    ) -> Dict[str, Dict[int, float]]:
        """F1 of GBDT versus the embedding dimension, on Dataset 1."""
        dataset = self.datasets()[0]
        results: Dict[str, Dict[int, float]] = {fs.value: {} for fs in feature_sets}
        for dimension in dimensions:
            preparation = self.pipeline.prepare(
                dataset,
                need_deepwalk=any(fs.uses_deepwalk for fs in feature_sets),
                need_structure2vec=any(fs.uses_structure2vec for fs in feature_sets),
                embedding_dimension=int(dimension),
            )
            for feature_set in feature_sets:
                configuration = Table1Configuration(0, DetectorName.GBDT, feature_set)
                metrics = self._run_configuration(preparation, configuration)
                results[feature_set.value][int(dimension)] = metrics.f1
        return results

    # ------------------------------------------------------------------
    # Figure 12: GBDT tree-count sweep
    # ------------------------------------------------------------------
    def run_tree_sweep(
        self,
        tree_counts: Sequence[int] = (100, 200, 400, 800),
        *,
        feature_sets: Sequence[FeatureSetName] = (
            FeatureSetName.BASIC,
            FeatureSetName.BASIC_S2V,
            FeatureSetName.BASIC_DW,
            FeatureSetName.BASIC_DW_S2V,
        ),
    ) -> Dict[str, Dict[int, float]]:
        """F1 versus the number of GBDT trees.

        A single model with ``max(tree_counts)`` trees is fitted per feature
        set; the smaller tree counts are evaluated from its staged predictions
        (identical to fitting separately, far cheaper).
        """
        tree_counts = sorted(int(t) for t in tree_counts)
        if not tree_counts:
            raise ConfigurationError("tree_counts must not be empty")
        dataset = self.datasets()[0]
        preparation = self.preparation_for(dataset)
        hp = self.config.hyperparameters
        results: Dict[str, Dict[int, float]] = {}
        for feature_set in feature_sets:
            assembler = self.pipeline.assembler_for(preparation, feature_set)
            train_matrix = assembler.assemble(dataset.train_transactions)
            test_matrix = assembler.assemble(dataset.test_transactions)
            model = GradientBoostingClassifier(
                num_trees=tree_counts[-1],
                max_depth=hp.gbdt_max_depth,
                subsample_rows=hp.gbdt_subsample,
                subsample_features=hp.gbdt_subsample,
                seed=hp.seed,
            )
            model.fit(train_matrix.values, train_matrix.labels)
            per_count: Dict[int, float] = {}
            staged_train = {
                count: scores
                for count, scores in model.staged_predict_proba(train_matrix.values, every=1)
                if count in tree_counts
            }
            for count, scores in model.staged_predict_proba(test_matrix.values, every=1):
                if count not in tree_counts:
                    continue
                threshold = select_threshold(train_matrix.labels, staged_train[count])
                metrics = evaluate_scores(test_matrix.labels, scores, threshold=threshold)
                per_count[count] = metrics.f1
            results[feature_set.value] = per_count
        return results

    # ------------------------------------------------------------------
    # Table 2: DeepWalk node-sampling sweep
    # ------------------------------------------------------------------
    def run_node_sampling_sweep(
        self, sampling_counts: Sequence[int] = (25, 50, 100, 200)
    ) -> Dict[int, float]:
        """F1 of Basic+DW+GBDT versus the number of walks per node (Dataset 1)."""
        dataset = self.datasets()[0]
        results: Dict[int, float] = {}
        for count in sampling_counts:
            preparation = self.pipeline.prepare(
                dataset,
                need_deepwalk=True,
                need_structure2vec=False,
                deepwalk_num_walks=int(count),
            )
            configuration = Table1Configuration(0, DetectorName.GBDT, FeatureSetName.BASIC_DW)
            metrics = self._run_configuration(preparation, configuration)
            results[int(count)] = metrics.f1
        return results

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------
    @staticmethod
    def format_table1(results: Sequence[ConfigurationResult]) -> str:
        """Render Table 1 as fixed-width text (rows = configurations, columns = days)."""
        if not results:
            return "(no results)"
        days = sorted({d.test_day for r in results for d in r.daily})
        header = ["#", "Configuration"] + [f"day {d}" for d in days] + ["mean"]
        lines = ["  ".join(f"{h:>18}" if i > 1 else f"{h:<28}" for i, h in enumerate(header))]
        for result in results:
            by_day = result.f1_by_day()
            cells = [f"{result.configuration.number}", result.label]
            cells += [f"{by_day.get(d, float('nan')):.2%}" for d in days]
            cells += [f"{result.mean_f1:.2%}"]
            lines.append(
                "  ".join(f"{c:>18}" if i > 1 else f"{c:<28}" for i, c in enumerate(cells))
            )
        return "\n".join(lines)
