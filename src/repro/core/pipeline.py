"""The offline T+1 training pipeline.

For every training day the production flow of Figure 3 is:

1. transaction logs are loaded into MaxCompute; SQL / MapReduce jobs extract
   the labelled training window and aggregate the 90-day history into the
   weighted transaction-network edge list,
2. user node embeddings are learned on KunPeng (DeepWalk and/or
   Structure2Vec),
3. the detector is trained on basic features ⊕ embeddings, and the alert
   threshold is calibrated on the training window,
4. the model file goes to the model registry and the per-user features +
   embeddings are uploaded to Ali-HBase (a new version per run), ready for the
   Model Server.

:class:`OfflineTrainingPipeline` implements those steps against the simulated
substrates.  Embedding training is done once per dataset slice and shared by
every Table 1 configuration that needs it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.config import (
    DetectorName,
    FeatureSetName,
    ModelHyperparameters,
    Table1Configuration,
)
from repro.core.evaluation import select_threshold
from repro.core.registry import ModelRegistry, ModelVersion
from repro.datagen.datasets import DatasetSlice
from repro.datagen.schema import UserProfile
from repro.exceptions import ConfigurationError
from repro.features.aggregation import (
    SECONDS_PER_DAY,
    AggregationConfig,
    TransactionAggregator,
)
from repro.features.assembler import EmbeddingSide, FeatureAssembler
from repro.features.basic import BasicFeatureExtractor
from repro.features.matrix import FeatureMatrix
from repro.features.plan import FeaturePlan
from repro.features.streaming import (
    PointInTimeAggregationSource,
    SlidingWindowAggregator,
)
from repro.graph.builder import build_network
from repro.graph.network import TransactionNetwork
from repro.hbase.client import (
    AGGREGATES_FAMILY,
    BASIC_FEATURES_FAMILY,
    EMBEDDINGS_FAMILY,
    HBaseClient,
)
from repro.logging_utils import get_logger
from repro.maxcompute.client import MaxComputeClient
from repro.maxcompute.mapreduce import transaction_edge_job
from repro.models.base import BaseDetector
from repro.models.gbdt import GradientBoostingClassifier
from repro.models.isolation_forest import IsolationForest
from repro.models.logistic_regression import LogisticRegression
from repro.models.tree.c45 import C45Classifier
from repro.models.tree.id3 import ID3Classifier
from repro.nrl.deepwalk import DeepWalk, DeepWalkConfig
from repro.nrl.embeddings import EmbeddingSet
from repro.nrl.structure2vec import (
    Structure2Vec,
    Structure2VecConfig,
    node_labels_from_transactions,
)
from repro.nrl.word2vec import SkipGramConfig
from repro.graph.random_walk import RandomWalkConfig
from repro.rng import derive_seed
from repro.serving.model_server import ModelServer
from repro.serving.rotation import FleetController
from repro.serving.streaming import StreamingFeatureUpdater

logger = get_logger("core.pipeline")


def build_detector(
    name: DetectorName, hyperparameters: ModelHyperparameters, *, seed: Optional[int] = None
) -> BaseDetector:
    """Instantiate a detector with the configured hyperparameters."""
    seed = hyperparameters.seed if seed is None else seed
    if name is DetectorName.ISOLATION_FOREST:
        return IsolationForest(num_trees=hyperparameters.if_num_trees, seed=seed)
    if name is DetectorName.ID3:
        return ID3Classifier(
            max_depth=hyperparameters.id3_max_depth,
            discretize_bins=hyperparameters.id3_bins,
        )
    if name is DetectorName.C50:
        return C45Classifier(max_depth=hyperparameters.c50_max_depth)
    if name is DetectorName.LOGISTIC_REGRESSION:
        return LogisticRegression(
            l1=hyperparameters.lr_l1,
            iterations=hyperparameters.lr_iterations,
            discretize_bins=hyperparameters.lr_discretize_bins,
        )
    if name is DetectorName.GBDT:
        return GradientBoostingClassifier(
            num_trees=hyperparameters.gbdt_num_trees,
            max_depth=hyperparameters.gbdt_max_depth,
            subsample_rows=hyperparameters.gbdt_subsample,
            subsample_features=hyperparameters.gbdt_subsample,
            seed=seed,
        )
    raise ConfigurationError(f"unknown detector {name!r}")


@dataclass
class SlicePreparation:
    """Per-slice artefacts shared across Table 1 configurations."""

    dataset: DatasetSlice
    network: TransactionNetwork
    embeddings: Dict[str, EmbeddingSet] = field(default_factory=dict)
    #: Batch sliding-window aggregator fitted on the slice history (lazily
    #: built when the pipeline has an aggregation window configured).
    aggregator: Optional[TransactionAggregator] = None
    #: Point-in-time aggregation provider shared by every assembler of this
    #: slice (holds the pre-sorted history once).
    aggregation_source: Optional[PointInTimeAggregationSource] = None

    def embedding_sets_for(self, feature_set: FeatureSetName) -> Dict[str, EmbeddingSet]:
        """Ordered embedding blocks for a feature-set configuration."""
        selected: Dict[str, EmbeddingSet] = {}
        if feature_set.uses_deepwalk:
            selected["dw"] = self.embeddings["dw"]
        if feature_set.uses_structure2vec:
            selected["s2v"] = self.embeddings["s2v"]
        return selected


@dataclass
class TrainedModelBundle:
    """Everything the online side needs about one trained model.

    ``plan`` is the serialisable :class:`FeaturePlan` the trainer exports
    alongside the model file — the Model Server executes it verbatim, so the
    online feature vector cannot drift from the training one.  The
    ``embedding_specs`` / ``embedding_side`` fields are the legacy view of
    the same information, kept for audit metadata.
    """

    configuration: Table1Configuration
    detector: BaseDetector
    threshold: float
    feature_names: List[str]
    plan: FeaturePlan
    embedding_specs: List[tuple]
    embedding_side: str
    training_day: int
    train_rows: int
    train_frauds: int

    @property
    def version(self) -> str:
        """Registry version string: training day ⊕ detector ⊕ feature set."""
        return f"day{self.training_day}_{self.configuration.detector.value}_{self.configuration.feature_set.value}"


class OfflineTrainingPipeline:
    """Offline half of TitAnt, on the simulated substrates."""

    def __init__(
        self,
        profiles: Dict[str, UserProfile],
        hyperparameters: Optional[ModelHyperparameters] = None,
        *,
        embedding_side: str = "both",
        aggregation: Optional[AggregationConfig] = None,
        use_maxcompute: bool = False,
        maxcompute_client: Optional[MaxComputeClient] = None,
    ) -> None:
        self.profiles = profiles
        self.hyperparameters = hyperparameters or ModelHyperparameters.laptop_scale()
        self.hyperparameters.validate()
        self.embedding_side = embedding_side
        self.aggregation = aggregation
        if aggregation is not None:
            aggregation.validate()
        self.use_maxcompute = use_maxcompute
        self.maxcompute = maxcompute_client or (MaxComputeClient() if use_maxcompute else None)
        #: Highest version bulk-loaded per table by publish_features, so the
        #: streaming updater's write versions always supersede the snapshot.
        self._published_versions: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Step 1+2: network construction and embedding training
    # ------------------------------------------------------------------
    def prepare(
        self,
        dataset: DatasetSlice,
        *,
        need_deepwalk: bool = True,
        need_structure2vec: bool = True,
        embedding_dimension: Optional[int] = None,
        deepwalk_num_walks: Optional[int] = None,
    ) -> SlicePreparation:
        """Build the transaction network and train the requested embeddings."""
        hp = self.hyperparameters
        dimension = embedding_dimension or hp.embedding_dimension
        network = self._build_network(dataset)
        preparation = SlicePreparation(dataset=dataset, network=network)

        if need_deepwalk:
            deepwalk = DeepWalk(
                DeepWalkConfig(
                    walk=RandomWalkConfig(
                        walk_length=hp.deepwalk_walk_length,
                        num_walks_per_node=deepwalk_num_walks or hp.deepwalk_num_walks,
                    ),
                    skipgram=SkipGramConfig(
                        dimension=dimension,
                        window=hp.deepwalk_window,
                        epochs=hp.deepwalk_epochs,
                    ),
                    seed=derive_seed(hp.seed, f"deepwalk_day{dataset.spec.test_day}"),
                )
            )
            deepwalk.fit(network)
            embeddings = deepwalk.embeddings()
            embeddings.name = "dw"
            preparation.embeddings["dw"] = embeddings
        if need_structure2vec:
            labels = node_labels_from_transactions(dataset.network_transactions)
            s2v = Structure2Vec(
                Structure2VecConfig(
                    dimension=dimension,
                    epochs=hp.s2v_epochs,
                    propagation_rounds=hp.s2v_propagation_rounds,
                    seed=derive_seed(hp.seed, f"s2v_day{dataset.spec.test_day}"),
                )
            )
            s2v.fit(network, node_labels=labels)
            embeddings = s2v.embeddings()
            embeddings.name = "s2v"
            preparation.embeddings["s2v"] = embeddings
        return preparation

    def _build_network(self, dataset: DatasetSlice) -> TransactionNetwork:
        """Aggregate the 90-day history into the transaction network.

        With ``use_maxcompute`` the aggregation runs as a MapReduce job over a
        MaxCompute table (the production path); otherwise the network is built
        directly in memory (identical result, used by the fast harness).
        """
        if not self.use_maxcompute or self.maxcompute is None:
            return build_network(dataset.network_transactions)
        table_name = f"transactions_day{dataset.spec.test_day}"
        self.maxcompute.load_records(
            table_name, [txn.to_row() for txn in dataset.network_transactions]
        )
        result = self.maxcompute.submit_mapreduce(
            transaction_edge_job(), table_name, result_table=f"edges_day{dataset.spec.test_day}"
        )
        if not result.succeeded or result.result_table is None:
            raise ConfigurationError("edge aggregation job failed")
        network = TransactionNetwork()
        for row in result.result_table.rows():
            network.add_edge(str(row["payer_id"]), str(row["payee_id"]), float(row["weight"]))
        return network

    # ------------------------------------------------------------------
    # Step 3: detector training
    # ------------------------------------------------------------------
    def aggregator_for(
        self, preparation: SlicePreparation
    ) -> Optional[TransactionAggregator]:
        """The slice's batch aggregator (None when aggregation is off).

        Fitted once per slice on the full pre-test-day history with the
        configured window, as of the test day — this is what seeds the
        published HBase rows.  Feature *assembly* does not use this frozen
        state; see :meth:`aggregation_source_for`.
        """
        if self.aggregation is None:
            return None
        cached = preparation.aggregator
        if cached is None or cached.config != self.aggregation:
            # Preparations are shared across pipelines (embeddings are the
            # expensive part); rebuild when this pipeline's window differs.
            preparation.aggregator = TransactionAggregator(self.aggregation).fit(
                self._slice_history(preparation),
                as_of_day=preparation.dataset.spec.test_day,
            )
        return preparation.aggregator

    @staticmethod
    def _slice_history(preparation: SlicePreparation) -> List:
        """The slice's full pre-test-day event stream (network + train)."""
        return (
            preparation.dataset.network_transactions
            + preparation.dataset.train_transactions
        )

    def aggregation_source_for(
        self, preparation: SlicePreparation
    ) -> Optional[PointInTimeAggregationSource]:
        """Point-in-time aggregation provider for training/evaluation matrices.

        Every assembled transaction sees the aggregates *as of the instant
        before it happened* (score-then-ingest over the merged event-time
        stream) — the same contract online serving applies — so training rows
        carry no look-ahead into their own window.  Built once per slice; the
        source holds the history pre-sorted.
        """
        if self.aggregation is None:
            return None
        cached = preparation.aggregation_source
        if cached is None or cached.config != self.aggregation:
            preparation.aggregation_source = PointInTimeAggregationSource(
                self.aggregation, self._slice_history(preparation)
            )
        return preparation.aggregation_source

    def assembler_for(
        self, preparation: SlicePreparation, feature_set: FeatureSetName
    ) -> FeatureAssembler:
        """Offline feature assembler for one feature-set configuration."""
        return FeatureAssembler(
            self.profiles,
            preparation.embedding_sets_for(feature_set),
            embedding_side=EmbeddingSide(self.embedding_side),
            aggregator=self.aggregation_source_for(preparation),
        )

    def train(
        self,
        preparation: SlicePreparation,
        configuration: Table1Configuration,
        *,
        detector: Optional[BaseDetector] = None,
    ) -> TrainedModelBundle:
        """Train one Table 1 configuration on the slice's training window."""
        assembler = self.assembler_for(preparation, configuration.feature_set)
        train_matrix = assembler.assemble(preparation.dataset.train_transactions)
        detector = detector or build_detector(configuration.detector, self.hyperparameters)
        detector.fit(train_matrix.values, train_matrix.labels)
        train_scores = detector.predict_proba(train_matrix.values)
        threshold = select_threshold(train_matrix.labels, train_scores)
        plan = assembler.plan
        return TrainedModelBundle(
            configuration=configuration,
            detector=detector,
            threshold=threshold,
            feature_names=train_matrix.feature_names,
            plan=plan,
            embedding_specs=plan.embedding_specs,
            embedding_side=plan.embedding_side,
            training_day=preparation.dataset.spec.test_day,
            train_rows=train_matrix.num_rows,
            train_frauds=int(train_matrix.labels.sum()) if train_matrix.labels is not None else 0,
        )

    def evaluate(self, preparation: SlicePreparation, bundle: TrainedModelBundle) -> FeatureMatrix:
        """Assemble the test-day feature matrix for a trained bundle."""
        assembler = self.assembler_for(preparation, bundle.configuration.feature_set)
        return assembler.assemble(preparation.dataset.test_transactions)

    # ------------------------------------------------------------------
    # Step 4: publication to the online side
    # ------------------------------------------------------------------
    def register_model(
        self,
        registry: ModelRegistry,
        bundle: TrainedModelBundle,
        *,
        overwrite: bool = False,
    ) -> ModelVersion:
        """Register a trained bundle (model ⊕ threshold ⊕ plan) as a version."""
        version = ModelVersion(
            version=bundle.version,
            model=bundle.detector,
            threshold=bundle.threshold,
            feature_names=bundle.feature_names,
            plan=bundle.plan,
            embedding_specs=bundle.embedding_specs,
            embedding_side=bundle.embedding_side,
            training_day=bundle.training_day,
        )
        registry.register(version, overwrite=overwrite)
        return version

    def publish_features(
        self,
        preparation: SlicePreparation,
        hbase: HBaseClient,
        *,
        table_name: str = "titant_features",
        version: Optional[int] = None,
        include_aggregates: bool = True,
    ) -> int:
        """Upload per-user profile rows and embeddings to Ali-HBase.

        ``include_aggregates=False`` skips the aggregate-family seed when the
        caller publishes it from a seeded streaming engine instead
        (:meth:`deploy_fleet`), avoiding a second full-history aggregation.
        """
        hbase.create_feature_store(table_name)
        version = preparation.dataset.spec.test_day if version is None else version
        self._published_versions[table_name] = max(
            version, self._published_versions.get(table_name, 0)
        )
        extractor = BasicFeatureExtractor(self.profiles)

        profile_rows: Dict[str, Dict[str, object]] = {}
        for user_id, profile in self.profiles.items():
            profile_rows[user_id] = {
                "age": profile.age,
                "gender": profile.gender.value,
                "home_city": profile.home_city,
                "account_age_days": profile.account_age_days,
                "kyc_level": profile.kyc_level,
                "is_merchant": profile.is_merchant,
                "device_count": profile.device_count,
                "community": profile.community,
                **{
                    f"derived_{name}": value
                    for name, value in extractor.extract_user_features(user_id).items()
                },
            }
        written = hbase.bulk_load(table_name, BASIC_FEATURES_FAMILY, profile_rows, version=version)

        # One array-valued cell per embedding set (instead of one scalar cell
        # per dimension): a block read online is a single cell fetch.  Stored
        # as tuples so readers sharing the cell object cannot corrupt it.
        embedding_rows: Dict[str, Dict[str, object]] = {}
        for set_name, embeddings in preparation.embeddings.items():
            for node in embeddings.node_ids():
                row = embedding_rows.setdefault(node, {})
                row[set_name] = tuple(float(value) for value in embeddings[node])
        if embedding_rows:
            written += hbase.bulk_load(
                table_name, EMBEDDINGS_FAMILY, embedding_rows, version=version
            )

        # With an aggregation window configured, seed the streaming family
        # from the batch aggregator so day-one serving starts warm; the
        # online StreamingFeatureUpdater takes over from this exact state.
        if include_aggregates:
            aggregator = self.aggregator_for(preparation)
            if aggregator is not None:
                written += hbase.bulk_load(
                    table_name, AGGREGATES_FAMILY, aggregator.snapshot_rows(), version=version
                )
        logger.info("published %d HBase rows at version %s", written, version)
        return written

    def build_streaming_updater(
        self,
        preparation: SlicePreparation,
        hbase: HBaseClient,
        *,
        table_name: str = "titant_features",
        start_version: Optional[int] = None,
        refresh_interval_seconds: Optional[float] = None,
    ) -> StreamingFeatureUpdater:
        """The online half of the windowing definition exported with the plan.

        Replays the slice's pre-test-day history through a
        :class:`SlidingWindowAggregator` configured from the *same*
        :class:`AggregationConfig` the offline assembler used: querying the
        seeded engine at the batch as-of instant —
        ``test_day * SECONDS_PER_DAY - 1``, one second before test-day
        midnight (``aggregator_for(...).as_of_time``; at midnight itself the
        left-open window already drops events exactly one window old) —
        reproduces the batch aggregator's published rows, and from the first
        online ingest onwards every written row is anchored at the live
        watermark — one windowing definition for both worlds.

        ``start_version`` must be at least the version ``publish_features``
        bulk-loaded at (the default derives it from the recorded publish
        versions), so streaming write-throughs always supersede the published
        snapshot.

        ``refresh_interval_seconds`` defaults to the window length for
        sub-day windows — idle accounts' rows decay fast there, so the
        periodic re-anchoring sweep is on by default — and to off for
        day-scale windows, where decay between publishes is negligible.
        """
        if self.aggregation is None:
            raise ConfigurationError(
                "pipeline has no aggregation window configured; pass "
                "aggregation=AggregationConfig(...) to enable streaming features"
            )
        aggregator = SlidingWindowAggregator(self.aggregation)
        aggregator.replay(self._slice_history(preparation))
        hbase.create_feature_store(table_name)
        if start_version is None:
            start_version = max(
                preparation.dataset.spec.test_day,
                self._published_versions.get(table_name, 0),
            )
        window_seconds = self.aggregation.effective_window_seconds
        if refresh_interval_seconds is None and window_seconds < SECONDS_PER_DAY:
            refresh_interval_seconds = window_seconds
        return StreamingFeatureUpdater(
            aggregator,
            hbase,
            table_name,
            start_version=start_version,
            refresh_interval_seconds=refresh_interval_seconds,
        )

    def deploy(
        self,
        bundle: TrainedModelBundle,
        preparation: SlicePreparation,
        hbase: HBaseClient,
        model_server: ModelServer,
        *,
        table_name: str = "titant_features",
        streaming_updater: bool = True,
        registry: Optional[ModelRegistry] = None,
    ) -> Optional[StreamingFeatureUpdater]:
        """Publish features and hot-load the model + plan into a Model Server."""
        return self.deploy_fleet(
            bundle,
            preparation,
            hbase,
            [model_server],
            table_name=table_name,
            streaming_updater=streaming_updater,
            registry=registry,
        )

    def deploy_fleet(
        self,
        bundle: TrainedModelBundle,
        preparation: SlicePreparation,
        hbase: HBaseClient,
        model_servers: List[ModelServer],
        *,
        table_name: str = "titant_features",
        streaming_updater: bool = True,
        registry: Optional[ModelRegistry] = None,
    ) -> Optional[StreamingFeatureUpdater]:
        """Publish features once and hot-load the model into a whole MS fleet.

        When the pipeline has an aggregation window configured, also returns
        the pre-seeded :class:`StreamingFeatureUpdater` the front end should
        attach (``AlipayServer(fleet, feature_updater=...)``) so online
        ingest keeps the served aggregates fresh.  Callers that intentionally
        serve the frozen published rows can skip the (history-replay) updater
        build with ``streaming_updater=False``.

        With a ``registry``, the bundle is registered (if its version is not
        yet known) and the fleet load runs through a
        :class:`~repro.serving.rotation.FleetController` deploy — the same
        registry-driven path later hot rotations (``deploy``/``rollback``/
        canary/shadow on the live fleet) use, so day-one deployment and every
        subsequent T+1 rotation exercise one code path.
        """
        updater: Optional[StreamingFeatureUpdater] = None
        if self.aggregation is not None and streaming_updater:
            updater = self.build_streaming_updater(
                preparation, hbase, table_name=table_name
            )
        # When the updater exists, its seeded engine publishes the aggregate
        # snapshot (anchored at the batch as-of instant) — one history walk
        # instead of fitting a second, throwaway batch aggregator.
        self.publish_features(
            preparation, hbase, table_name=table_name, include_aggregates=updater is None
        )
        if updater is not None:
            test_day = preparation.dataset.spec.test_day
            updater.publish_snapshot(
                as_of=test_day * SECONDS_PER_DAY - 1, version=test_day
            )
        for model_server in model_servers:
            model_server.feature_table = table_name
        if registry is not None:
            # Re-register (superseding) when the registry holds a *different*
            # trained detector under this version string — e.g. the same
            # day/configuration retrained — so the fleet always gets the
            # bundle the caller just trained, never a stale registration.
            if (
                bundle.version not in registry
                or registry.get(bundle.version).model is not bundle.detector
            ):
                self.register_model(
                    registry, bundle, overwrite=bundle.version in registry
                )
            FleetController(model_servers, registry).deploy(bundle.version)
        else:
            for model_server in model_servers:
                model_server.load_model(
                    bundle.detector,
                    version=bundle.version,
                    threshold=bundle.threshold,
                    plan=bundle.plan,
                )
        return updater
