"""Versioned model registry.

The offline trainer produces a new model file every day ("T+1"); the Model
Server periodically picks up the latest version.  The registry stores trained
model bundles keyed by a version string (the training day), exposes the latest
version, and keeps enough metadata for rollback and audit — the minimum a
production model-management loop needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.exceptions import ModelError, ServingError
from repro.features.plan import FeaturePlan
from repro.models.base import BaseDetector


@dataclass
class ModelVersion:
    """Metadata of one registered model.

    ``plan`` is the feature spec the trainer exported with the model; loading
    a version into a Model Server means installing both together.
    """

    version: str
    model: BaseDetector
    threshold: float
    feature_names: List[str]
    plan: Optional[FeaturePlan] = None
    embedding_specs: List[tuple] = field(default_factory=list)
    embedding_side: str = "both"
    training_day: Optional[int] = None
    metrics: Dict[str, float] = field(default_factory=dict)

    def describe(self) -> str:
        """One-line human-readable summary of the version."""
        return (
            f"model {self.version} ({self.model.name}), threshold {self.threshold:.3f}, "
            f"{len(self.feature_names)} features"
        )


class ModelRegistry:
    """Registry of model versions ordered by registration *sequence*.

    Every successful :meth:`register` call — including an ``overwrite=True``
    re-registration of an existing version string — is stamped with the next
    value of a monotonic sequence counter, and :meth:`latest`,
    :meth:`versions`, :meth:`rollback` and :meth:`history` are all defined in
    terms of that counter.  Ordering therefore never depends on dict
    iteration order, and a version re-registered after a retrain *supersedes*
    everything registered before it — under the old insertion-order list, an
    overwritten version kept its original position and ``latest()`` silently
    skipped the retrained model (regression-tested in
    ``tests/test_serving_runtime.py``).
    """

    def __init__(self) -> None:
        self._versions: Dict[str, ModelVersion] = {}
        self._sequence: Dict[str, int] = {}
        self._next_sequence = 0

    # ------------------------------------------------------------------
    def register(self, version: ModelVersion, *, overwrite: bool = False) -> None:
        """Register a fitted model bundle as the newest version.

        Re-registering an existing version string requires ``overwrite=True``
        and moves that version to the head of the sequence order (the
        retrained model is now the one ``latest()`` serves).
        """
        if not version.model.is_fitted:
            raise ModelError("only fitted models can be registered")
        if version.version in self._versions and not overwrite:
            raise ServingError(f"model version {version.version!r} already registered")
        self._versions[version.version] = version
        self._sequence[version.version] = self._next_sequence
        self._next_sequence += 1

    def get(self, version: str) -> ModelVersion:
        """Look up one version by its version string."""
        try:
            return self._versions[version]
        except KeyError as exc:
            raise ServingError(f"unknown model version {version!r}") from exc

    def latest(self) -> ModelVersion:
        """The most recently registered version (by registration sequence)."""
        if not self._versions:
            raise ServingError("the registry is empty")
        return self._versions[self._ordered()[-1]]

    def versions(self) -> List[str]:
        """All version strings in registration-sequence order, oldest first."""
        return self._ordered()

    def _ordered(self) -> List[str]:
        return sorted(self._sequence, key=self._sequence.__getitem__)

    def __len__(self) -> int:
        return len(self._versions)

    def __contains__(self, version: str) -> bool:
        return version in self._versions

    # ------------------------------------------------------------------
    def rollback(self, *, steps: int = 1) -> ModelVersion:
        """Return the version ``steps`` registrations before the latest."""
        if steps < 1:
            raise ServingError("steps must be at least 1")
        order = self._ordered()
        if len(order) <= steps:
            raise ServingError(
                f"cannot roll back {steps} step(s) with only {len(order)} version(s)"
            )
        return self._versions[order[-(steps + 1)]]

    def history(self) -> List[Dict[str, object]]:
        """Chronological audit trail of the registered versions."""
        return [
            {
                "version": version,
                "sequence": self._sequence[version],
                "model": self._versions[version].model.name,
                "threshold": self._versions[version].threshold,
                "training_day": self._versions[version].training_day,
                "metrics": dict(self._versions[version].metrics),
            }
            for version in self._ordered()
        ]
