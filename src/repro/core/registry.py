"""Versioned model registry.

The offline trainer produces a new model file every day ("T+1"); the Model
Server periodically picks up the latest version.  The registry stores trained
model bundles keyed by a version string (the training day), exposes the latest
version, and keeps enough metadata for rollback and audit — the minimum a
production model-management loop needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.exceptions import ModelError, ServingError
from repro.features.plan import FeaturePlan
from repro.models.base import BaseDetector


@dataclass
class ModelVersion:
    """Metadata of one registered model.

    ``plan`` is the feature spec the trainer exported with the model; loading
    a version into a Model Server means installing both together.
    """

    version: str
    model: BaseDetector
    threshold: float
    feature_names: List[str]
    plan: Optional[FeaturePlan] = None
    embedding_specs: List[tuple] = field(default_factory=list)
    embedding_side: str = "both"
    training_day: Optional[int] = None
    metrics: Dict[str, float] = field(default_factory=dict)

    def describe(self) -> str:
        return (
            f"model {self.version} ({self.model.name}), threshold {self.threshold:.3f}, "
            f"{len(self.feature_names)} features"
        )


class ModelRegistry:
    """Append-only registry of model versions."""

    def __init__(self) -> None:
        self._versions: Dict[str, ModelVersion] = {}
        self._order: List[str] = []

    # ------------------------------------------------------------------
    def register(self, version: ModelVersion, *, overwrite: bool = False) -> None:
        if not version.model.is_fitted:
            raise ModelError("only fitted models can be registered")
        if version.version in self._versions and not overwrite:
            raise ServingError(f"model version {version.version!r} already registered")
        if version.version not in self._versions:
            self._order.append(version.version)
        self._versions[version.version] = version

    def get(self, version: str) -> ModelVersion:
        try:
            return self._versions[version]
        except KeyError as exc:
            raise ServingError(f"unknown model version {version!r}") from exc

    def latest(self) -> ModelVersion:
        if not self._order:
            raise ServingError("the registry is empty")
        return self._versions[self._order[-1]]

    def versions(self) -> List[str]:
        return list(self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, version: str) -> bool:
        return version in self._versions

    # ------------------------------------------------------------------
    def rollback(self, *, steps: int = 1) -> ModelVersion:
        """Return the version ``steps`` releases before the latest."""
        if steps < 1:
            raise ServingError("steps must be at least 1")
        if len(self._order) <= steps:
            raise ServingError(
                f"cannot roll back {steps} step(s) with only {len(self._order)} version(s)"
            )
        return self._versions[self._order[-(steps + 1)]]

    def history(self) -> List[Dict[str, object]]:
        """Chronological audit trail of the registered versions."""
        return [
            {
                "version": version,
                "model": self._versions[version].model.name,
                "threshold": self._versions[version].threshold,
                "training_day": self._versions[version].training_day,
                "metrics": dict(self._versions[version].metrics),
            }
            for version in self._order
        ]
