"""Synthetic transaction-world generator.

The paper evaluates TitAnt on Ant Financial production transaction logs, which
are proprietary.  This package builds the closest synthetic equivalent that
exercises the same code paths and preserves the statistical properties the
evaluation depends on:

* heavy class imbalance (a small fraction of transactions are fraudulent),
* repeat-offender fraudsters (about 70 % of fraudsters defraud more than once),
* a "gathering" topology where the victims of one fraudster are 2-hop
  neighbours of each other through the fraudster node,
* per-transaction context (amount, hour, channel, device, transfer city) whose
  distribution shifts for fraudulent transfers,
* delayed labels collected from user fraud reports.

The public entry points are :class:`WorldConfig` / :func:`generate_world` for a
full simulated horizon and :class:`DatasetBuilder` for the paper's T+1 rolling
slices (90 days of records for the transaction network, 14 days for training,
1 day for testing).
"""

from repro.datagen.schema import (
    Transaction,
    UserProfile,
    TransactionChannel,
    Gender,
    CITY_FRAUD_TIERS,
)
from repro.datagen.profiles import ProfileConfig, ProfileGenerator
from repro.datagen.fraud import FraudConfig, FraudsterBehaviorModel, FraudsterState
from repro.datagen.transactions import WorldConfig, TransactionWorld, generate_world
from repro.datagen.datasets import DatasetBuilder, DatasetSlice, RollingDatasets

__all__ = [
    "Transaction",
    "UserProfile",
    "TransactionChannel",
    "Gender",
    "CITY_FRAUD_TIERS",
    "ProfileConfig",
    "ProfileGenerator",
    "FraudConfig",
    "FraudsterBehaviorModel",
    "FraudsterState",
    "WorldConfig",
    "TransactionWorld",
    "generate_world",
    "DatasetBuilder",
    "DatasetSlice",
    "RollingDatasets",
]
