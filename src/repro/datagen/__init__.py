"""Synthetic transaction-world generator.

The paper evaluates TitAnt on Ant Financial production transaction logs, which
are proprietary.  This package builds the closest synthetic equivalent that
exercises the same code paths and preserves the statistical properties the
evaluation depends on:

* heavy class imbalance (a small fraction of transactions are fraudulent),
* repeat-offender fraudsters (about 70 % of fraudsters defraud more than once),
* a "gathering" topology where the victims of one fraudster are 2-hop
  neighbours of each other through the fraudster node,
* per-transaction context (amount, hour, channel, device, transfer city) whose
  distribution shifts for fraudulent transfers,
* delayed labels collected from user fraud reports.

The public entry points are :class:`WorldConfig` / :func:`generate_world` for a
materialized small-world horizon, :class:`WorldStream` /
:class:`ScalableWorldStream` for streamed (bounded-memory, resumable)
generation up to millions of accounts, and :class:`DatasetBuilder` for the
paper's T+1 rolling slices (90 days of records for the transaction network,
14 days for training, 1 day for testing).
"""

from repro.datagen.schema import (
    Transaction,
    UserProfile,
    TransactionChannel,
    Gender,
    CITY_FRAUD_TIERS,
    transaction_sort_key,
)
from repro.datagen.profiles import ColumnarAccounts, ProfileConfig, ProfileGenerator
from repro.datagen.fraud import (
    FRAUD_TYPOLOGIES,
    ColumnarFraudPlanner,
    ColumnarTypologySuite,
    FraudConfig,
    FraudsterBehaviorModel,
    FraudsterState,
    PlannedFraudBatch,
    TypologyConfig,
    TypologyFraudSuite,
)
from repro.datagen.transactions import (
    ArrivalConfig,
    BurstSpec,
    DIURNAL_HOURLY_WEIGHTS,
    TransactionWorld,
    WorldConfig,
    generate_world,
)
from repro.datagen.stream import (
    ScalableWorldStream,
    StreamCheckpoint,
    TransactionStream,
    WorldStream,
)
from repro.datagen.datasets import DatasetBuilder, DatasetSlice, RollingDatasets

__all__ = [
    "Transaction",
    "UserProfile",
    "TransactionChannel",
    "Gender",
    "CITY_FRAUD_TIERS",
    "transaction_sort_key",
    "ColumnarAccounts",
    "ProfileConfig",
    "ProfileGenerator",
    "FRAUD_TYPOLOGIES",
    "ColumnarFraudPlanner",
    "ColumnarTypologySuite",
    "FraudConfig",
    "FraudsterBehaviorModel",
    "FraudsterState",
    "PlannedFraudBatch",
    "TypologyConfig",
    "TypologyFraudSuite",
    "ArrivalConfig",
    "BurstSpec",
    "DIURNAL_HOURLY_WEIGHTS",
    "WorldConfig",
    "TransactionWorld",
    "generate_world",
    "TransactionStream",
    "WorldStream",
    "ScalableWorldStream",
    "StreamCheckpoint",
    "DatasetBuilder",
    "DatasetSlice",
    "RollingDatasets",
]
