"""T+1 dataset slicing (paper Figure 8).

The paper evaluates the system over a continuous week: for each test day, the
90 days of records before the training window build the transaction network,
the next 14 days of labelled records train the classifier, and the single test
day is scored.  Models are trained offline daily ("T+1" mode) and used for the
next day's real-time predictions.

:class:`DatasetBuilder` turns a :class:`~repro.datagen.transactions.TransactionWorld`
into :class:`DatasetSlice` objects implementing exactly that protocol, and
:class:`RollingDatasets` produces the seven consecutive slices of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence

from repro.datagen.schema import Transaction
from repro.datagen.transactions import TransactionWorld
from repro.exceptions import DataGenerationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.datagen.stream import TransactionStream


@dataclass(frozen=True)
class SliceSpec:
    """Day boundaries of one T+1 dataset slice."""

    network_start: int
    network_end: int  # exclusive; == train_start
    train_start: int
    train_end: int  # exclusive; == test_day
    test_day: int

    def validate(self) -> None:
        if not (
            self.network_start
            <= self.network_end
            == self.train_start
            <= self.train_end
            == self.test_day
        ):
            raise DataGenerationError(f"inconsistent slice boundaries: {self}")
        if self.network_start < 0:
            raise DataGenerationError("network_start must be non-negative")


@dataclass
class DatasetSlice:
    """One dataset of the paper's rolling evaluation.

    Attributes
    ----------
    network_transactions:
        Records used only to build the transaction network (no labels needed).
    train_transactions:
        Labelled records for classifier training.  Labels respect the
        reporting delay: a fraud whose report arrives after the test day's
        training cut-off is seen as non-fraud, as in production.
    test_transactions:
        The test day's records with ground-truth labels (offline evaluation).
    """

    spec: SliceSpec
    network_transactions: List[Transaction]
    train_transactions: List[Transaction]
    test_transactions: List[Transaction]

    @property
    def name(self) -> str:
        return f"dataset_test_day_{self.spec.test_day}"

    def class_balance(self) -> float:
        """Fraction of fraudulent transactions in the training window."""
        if not self.train_transactions:
            return 0.0
        return sum(t.is_fraud for t in self.train_transactions) / len(self.train_transactions)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DatasetSlice(test_day={self.spec.test_day}, "
            f"network={len(self.network_transactions)}, "
            f"train={len(self.train_transactions)}, "
            f"test={len(self.test_transactions)})"
        )


class DatasetBuilder:
    """Builds T+1 dataset slices from a generated world."""

    def __init__(
        self,
        world: TransactionWorld,
        *,
        network_days: int = 90,
        train_days: int = 14,
        respect_label_delay: bool = True,
    ) -> None:
        if network_days <= 0 or train_days <= 0:
            raise DataGenerationError("network_days and train_days must be positive")
        self.world = world
        self.network_days = network_days
        self.train_days = train_days
        self.respect_label_delay = respect_label_delay

    # ------------------------------------------------------------------
    def spec_for_test_day(self, test_day: int) -> SliceSpec:
        train_start = test_day - self.train_days
        network_start = train_start - self.network_days
        if network_start < 0:
            raise DataGenerationError(
                f"test_day {test_day} requires {self.network_days + self.train_days} prior "
                f"days of history but only {test_day} are available"
            )
        spec = SliceSpec(
            network_start=network_start,
            network_end=train_start,
            train_start=train_start,
            train_end=test_day,
            test_day=test_day,
        )
        spec.validate()
        return spec

    def build(self, test_day: int) -> DatasetSlice:
        """Build the slice whose test set is ``test_day``."""
        spec = self.spec_for_test_day(test_day)
        if test_day >= self.world.config.num_days:
            raise DataGenerationError(
                f"test_day {test_day} is outside the generated horizon "
                f"({self.world.config.num_days} days)"
            )
        network = self.world.transactions_in_days(spec.network_start, spec.network_end)
        as_of = spec.train_end - 1 if self.respect_label_delay else None
        train = self.world.labeled_transactions_in_days(
            spec.train_start, spec.train_end, as_of_day=as_of
        )
        test = self.world.transactions_in_days(spec.test_day, spec.test_day + 1)
        return DatasetSlice(
            spec=spec,
            network_transactions=network,
            train_transactions=train,
            test_transactions=test,
        )

    def earliest_test_day(self) -> int:
        """First day with enough history to form a full slice."""
        return self.network_days + self.train_days


@dataclass
class RollingDatasets:
    """The seven consecutive evaluation datasets of Table 1."""

    slices: List[DatasetSlice]

    def __iter__(self) -> Iterator[DatasetSlice]:
        return iter(self.slices)

    def __len__(self) -> int:
        return len(self.slices)

    def __getitem__(self, index: int) -> DatasetSlice:
        return self.slices[index]

    @classmethod
    def build(
        cls,
        world: TransactionWorld,
        *,
        num_datasets: int = 7,
        network_days: int = 90,
        train_days: int = 14,
        first_test_day: Optional[int] = None,
        respect_label_delay: bool = True,
    ) -> "RollingDatasets":
        """Build ``num_datasets`` consecutive T+1 slices.

        ``first_test_day`` defaults to the earliest day with a full history,
        mirroring the paper where the first test day is April 10 and each of
        the following days shifts every window forward by one day.
        """
        builder = DatasetBuilder(
            world,
            network_days=network_days,
            train_days=train_days,
            respect_label_delay=respect_label_delay,
        )
        start = builder.earliest_test_day() if first_test_day is None else first_test_day
        if start + num_datasets > world.config.num_days:
            raise DataGenerationError(
                f"world horizon of {world.config.num_days} days cannot host "
                f"{num_datasets} test days starting at day {start}"
            )
        slices = [builder.build(start + offset) for offset in range(num_datasets)]
        return cls(slices=slices)

    @classmethod
    def from_stream(
        cls,
        stream: "TransactionStream",
        *,
        num_datasets: int = 7,
        network_days: int = 90,
        train_days: int = 14,
        first_test_day: Optional[int] = None,
        respect_label_delay: bool = True,
    ) -> "RollingDatasets":
        """Assemble the rolling slices in one pass over a transaction stream.

        The streaming twin of :meth:`build`: instead of requiring a fully
        materialized :class:`TransactionWorld`, it consumes a
        :class:`~repro.datagen.stream.TransactionStream` (day-ordered by
        construction) and buckets only the day range the requested slices
        need — memory is bounded by the slice windows themselves, never by
        the stream's full horizon, and iteration stops as soon as the last
        needed day has passed.  For the same world configuration and seed the
        result is identical to ``build(generate_world(config), ...)``.
        """
        if network_days <= 0 or train_days <= 0:
            raise DataGenerationError("network_days and train_days must be positive")
        earliest = network_days + train_days
        start = earliest if first_test_day is None else first_test_day
        if start < earliest:
            raise DataGenerationError(
                f"test_day {start} requires {earliest} prior days of history "
                f"but only {start} are available"
            )
        if start + num_datasets > stream.num_days:
            raise DataGenerationError(
                f"world horizon of {stream.num_days} days cannot host "
                f"{num_datasets} test days starting at day {start}"
            )
        first_needed = start - train_days - network_days
        last_needed = start + num_datasets - 1
        by_day: Dict[int, List[Transaction]] = {}
        for txn in stream:
            if txn.day > last_needed:
                break
            if txn.day >= first_needed:
                by_day.setdefault(txn.day, []).append(txn)

        def window(start_day: int, end_day: int) -> List[Transaction]:
            return [t for day in range(start_day, end_day) for t in by_day.get(day, [])]

        slices: List[DatasetSlice] = []
        for offset in range(num_datasets):
            test_day = start + offset
            spec = SliceSpec(
                network_start=test_day - train_days - network_days,
                network_end=test_day - train_days,
                train_start=test_day - train_days,
                train_end=test_day,
                test_day=test_day,
            )
            spec.validate()
            train = window(spec.train_start, spec.train_end)
            if respect_label_delay:
                as_of = spec.train_end - 1
                train = [
                    _hide_late_label(t) if t.is_fraud and t.label_available_day > as_of else t
                    for t in train
                ]
            slices.append(
                DatasetSlice(
                    spec=spec,
                    network_transactions=window(spec.network_start, spec.network_end),
                    train_transactions=train,
                    test_transactions=list(by_day.get(test_day, [])),
                )
            )
        return cls(slices=slices)


def _hide_late_label(txn: Transaction) -> Transaction:
    """A copy of ``txn`` whose fraud label is not yet observable (delayed report)."""
    return Transaction(**{**txn.to_row(), "channel": txn.channel, "is_fraud": False})


def small_world_config(
    *,
    num_users: int = 600,
    num_days: int = 40,
    seed: int = 7,
    fraudster_fraction: float = 0.03,
) -> "WorldConfig":
    """A compact world configuration for tests and quick examples.

    Uses shorter network/train windows than the paper so that a full T+1
    evaluation fits in well under a second.  Callers pair it with
    ``DatasetBuilder(world, network_days=25, train_days=7)``.
    """
    from repro.datagen.profiles import ProfileConfig
    from repro.datagen.transactions import WorldConfig

    return WorldConfig(
        profile=ProfileConfig(
            num_users=num_users,
            num_communities=8,
            fraudster_fraction=fraudster_fraction,
            seed=seed,
        ),
        num_days=num_days,
        transactions_per_user_per_day=0.5,
        seed=seed,
    )
