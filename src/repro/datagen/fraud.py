"""Fraudster behaviour model.

The paper's key empirical observation is that roughly 70 % of fraudsters repeat
their deceitful actions once successful, producing a "gathering" topology in
the transaction network: many victims transfer to the same fraudster node, so
the victims are 2-hop neighbours of each other (Figure 2 of the paper).

This module models each fraudster as a small campaign process:

* a fraudster is either a *repeat offender* (active over many days, accumulating
  victims) or a *one-shot* offender (a single fraudulent transfer),
* each active day the fraudster lures a few victims, preferentially from
  communities it has already penetrated (which strengthens the 2-hop structure),
* fraudulent transfers have shifted context distributions (amount, hour,
  transfer city, device novelty, IP risk) — this is where the basic features
  obtain their predictive power,
* victims file fraud reports after a random delay, producing delayed labels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.datagen.schema import UserProfile
from repro.exceptions import DataGenerationError
from repro.rng import SeedLike, ensure_rng


@dataclass
class FraudConfig:
    """Parameters of the fraudster behaviour model."""

    #: Fraction of fraudsters that become repeat offenders (paper: ~70 %).
    repeat_offender_fraction: float = 0.7
    #: Mean number of fraudulent transfers a repeat offender commits per active day.
    frauds_per_active_day: float = 1.6
    #: Probability that a repeat offender is active on a given day.
    active_day_probability: float = 0.35
    #: Mean label reporting delay in days.
    mean_report_delay_days: float = 3.0
    #: Fraction of victims recruited from communities already targeted.
    community_stickiness: float = 0.75
    #: Log-normal parameters of fraudulent transfer amounts.
    fraud_amount_log_mean: float = 6.3
    fraud_amount_log_sigma: float = 0.9

    def validate(self) -> None:
        if not 0.0 <= self.repeat_offender_fraction <= 1.0:
            raise DataGenerationError("repeat_offender_fraction must be in [0, 1]")
        if self.frauds_per_active_day <= 0:
            raise DataGenerationError("frauds_per_active_day must be positive")
        if not 0.0 < self.active_day_probability <= 1.0:
            raise DataGenerationError("active_day_probability must be in (0, 1]")
        if self.mean_report_delay_days < 0:
            raise DataGenerationError("mean_report_delay_days must be non-negative")
        if not 0.0 <= self.community_stickiness <= 1.0:
            raise DataGenerationError("community_stickiness must be in [0, 1]")


@dataclass
class FraudsterState:
    """Mutable per-fraudster campaign state."""

    user_id: str
    is_repeat_offender: bool
    preferred_communities: List[int] = field(default_factory=list)
    victims: List[str] = field(default_factory=list)
    fraud_count: int = 0
    one_shot_done: bool = False

    @property
    def has_repeated(self) -> bool:
        """True once the fraudster has committed more than one fraud."""
        return self.fraud_count > 1


@dataclass
class PlannedFraud:
    """One fraudulent transfer scheduled by the behaviour model."""

    day: int
    fraudster_id: str
    victim_id: str
    amount: float
    hour: int
    report_delay_days: int


class FraudsterBehaviorModel:
    """Schedules fraudulent transfers for every fraudster in the population."""

    def __init__(
        self,
        profiles: Sequence[UserProfile],
        config: FraudConfig | None = None,
        *,
        rng: SeedLike = None,
    ):
        self.config = config or FraudConfig()
        self.config.validate()
        self._rng = ensure_rng(rng)
        self._profiles = list(profiles)
        self._profiles_by_id = {p.user_id: p for p in self._profiles}
        self._fraudsters = [p for p in self._profiles if p.is_fraudster]
        self._normal_users = [p for p in self._profiles if not p.is_fraudster]
        if not self._normal_users:
            raise DataGenerationError("population contains no normal users")
        self._states: Dict[str, FraudsterState] = {}
        for profile in self._fraudsters:
            is_repeat = self._rng.random() < self.config.repeat_offender_fraction
            self._states[profile.user_id] = FraudsterState(
                user_id=profile.user_id,
                is_repeat_offender=is_repeat,
                preferred_communities=[profile.community],
            )
        self._normal_by_community: Dict[int, List[UserProfile]] = {}
        for profile in self._normal_users:
            self._normal_by_community.setdefault(profile.community, []).append(profile)

    # ------------------------------------------------------------------
    @property
    def states(self) -> Dict[str, FraudsterState]:
        """Read-only view of all fraudster campaign states."""
        return dict(self._states)

    def repeat_fraction(self) -> float:
        """Fraction of fraudsters that committed more than one fraud so far."""
        committed = [s for s in self._states.values() if s.fraud_count > 0]
        if not committed:
            return 0.0
        return sum(1 for s in committed if s.has_repeated) / len(committed)

    # ------------------------------------------------------------------
    def plan_day(self, day: int) -> List[PlannedFraud]:
        """Return the fraudulent transfers scheduled for ``day``."""
        planned: List[PlannedFraud] = []
        for state in self._states.values():
            if state.is_repeat_offender:
                if self._rng.random() >= self.config.active_day_probability:
                    continue
                count = max(1, int(self._rng.poisson(self.config.frauds_per_active_day)))
            else:
                if state.one_shot_done:
                    continue
                # One-shot offenders strike on a random day with low probability.
                if self._rng.random() >= 0.02:
                    continue
                count = 1
                state.one_shot_done = True
            for _ in range(count):
                victim = self._pick_victim(state)
                planned.append(
                    PlannedFraud(
                        day=day,
                        fraudster_id=state.user_id,
                        victim_id=victim.user_id,
                        amount=self._sample_amount(),
                        hour=self._sample_hour(),
                        report_delay_days=self._sample_report_delay(),
                    )
                )
                state.victims.append(victim.user_id)
                state.fraud_count += 1
                if victim.community not in state.preferred_communities:
                    state.preferred_communities.append(victim.community)
        return planned

    # ------------------------------------------------------------------
    def _pick_victim(self, state: FraudsterState) -> UserProfile:
        """Pick a victim, preferring communities already penetrated."""
        if (
            state.preferred_communities
            and self._rng.random() < self.config.community_stickiness
        ):
            community = int(self._rng.choice(state.preferred_communities))
            pool = self._normal_by_community.get(community)
            if pool:
                return pool[int(self._rng.integers(0, len(pool)))]
        return self._normal_users[int(self._rng.integers(0, len(self._normal_users)))]

    def _sample_amount(self) -> float:
        cfg = self.config
        return float(
            np.clip(
                self._rng.lognormal(cfg.fraud_amount_log_mean, cfg.fraud_amount_log_sigma),
                10.0,
                200_000.0,
            )
        )

    def _sample_hour(self) -> int:
        # Fraud skews toward late-night hours.
        if self._rng.random() < 0.55:
            return int(self._rng.integers(22, 24)) if self._rng.random() < 0.5 else int(
                self._rng.integers(0, 6)
            )
        return int(self._rng.integers(0, 24))

    def _sample_report_delay(self) -> int:
        return int(np.clip(self._rng.exponential(self.config.mean_report_delay_days), 0, 30)) + 1
