"""Fraudster behaviour model.

The paper's key empirical observation is that roughly 70 % of fraudsters repeat
their deceitful actions once successful, producing a "gathering" topology in
the transaction network: many victims transfer to the same fraudster node, so
the victims are 2-hop neighbours of each other (Figure 2 of the paper).

This module models each fraudster as a small campaign process:

* a fraudster is either a *repeat offender* (active over many days, accumulating
  victims) or a *one-shot* offender (a single fraudulent transfer),
* each active day the fraudster lures a few victims, preferentially from
  communities it has already penetrated (which strengthens the 2-hop structure),
* fraudulent transfers have shifted context distributions (amount, hour,
  transfer city, device novelty, IP risk) — this is where the basic features
  obtain their predictive power,
* victims file fraud reports after a random delay, producing delayed labels.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Sequence

import numpy as np

from repro.datagen.schema import UserProfile
from repro.exceptions import DataGenerationError
from repro.rng import SeedLike, ensure_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.datagen.profiles import ColumnarAccounts


@dataclass
class FraudConfig:
    """Parameters of the fraudster behaviour model."""

    #: Fraction of fraudsters that become repeat offenders (paper: ~70 %).
    repeat_offender_fraction: float = 0.7
    #: Mean number of fraudulent transfers a repeat offender commits per active day.
    frauds_per_active_day: float = 1.6
    #: Probability that a repeat offender is active on a given day.
    active_day_probability: float = 0.35
    #: Mean label reporting delay in days.
    mean_report_delay_days: float = 3.0
    #: Fraction of victims recruited from communities already targeted.
    community_stickiness: float = 0.75
    #: Log-normal parameters of fraudulent transfer amounts.
    fraud_amount_log_mean: float = 6.3
    fraud_amount_log_sigma: float = 0.9

    def validate(self) -> None:
        if not 0.0 <= self.repeat_offender_fraction <= 1.0:
            raise DataGenerationError("repeat_offender_fraction must be in [0, 1]")
        if self.frauds_per_active_day <= 0:
            raise DataGenerationError("frauds_per_active_day must be positive")
        if not 0.0 < self.active_day_probability <= 1.0:
            raise DataGenerationError("active_day_probability must be in (0, 1]")
        if self.mean_report_delay_days < 0:
            raise DataGenerationError("mean_report_delay_days must be non-negative")
        if not 0.0 <= self.community_stickiness <= 1.0:
            raise DataGenerationError("community_stickiness must be in [0, 1]")


@dataclass
class FraudsterState:
    """Mutable per-fraudster campaign state."""

    user_id: str
    is_repeat_offender: bool
    preferred_communities: List[int] = field(default_factory=list)
    victims: List[str] = field(default_factory=list)
    fraud_count: int = 0
    one_shot_done: bool = False

    @property
    def has_repeated(self) -> bool:
        """True once the fraudster has committed more than one fraud."""
        return self.fraud_count > 1


@dataclass
class PlannedFraud:
    """One fraudulent transfer scheduled by the behaviour model."""

    day: int
    fraudster_id: str
    victim_id: str
    amount: float
    hour: int
    report_delay_days: int


class FraudsterBehaviorModel:
    """Schedules fraudulent transfers for every fraudster in the population."""

    def __init__(
        self,
        profiles: Sequence[UserProfile],
        config: FraudConfig | None = None,
        *,
        rng: SeedLike = None,
    ):
        self.config = config or FraudConfig()
        self.config.validate()
        self._rng = ensure_rng(rng)
        self._profiles = list(profiles)
        self._profiles_by_id = {p.user_id: p for p in self._profiles}
        self._fraudsters = [p for p in self._profiles if p.is_fraudster]
        self._normal_users = [p for p in self._profiles if not p.is_fraudster]
        if not self._normal_users:
            raise DataGenerationError("population contains no normal users")
        self._states: Dict[str, FraudsterState] = {}
        for profile in self._fraudsters:
            is_repeat = self._rng.random() < self.config.repeat_offender_fraction
            self._states[profile.user_id] = FraudsterState(
                user_id=profile.user_id,
                is_repeat_offender=is_repeat,
                preferred_communities=[profile.community],
            )
        self._normal_by_community: Dict[int, List[UserProfile]] = {}
        for profile in self._normal_users:
            self._normal_by_community.setdefault(profile.community, []).append(profile)

    # ------------------------------------------------------------------
    @property
    def states(self) -> Dict[str, FraudsterState]:
        """Read-only view of all fraudster campaign states."""
        return dict(self._states)

    def repeat_fraction(self) -> float:
        """Fraction of fraudsters that committed more than one fraud so far."""
        committed = [s for s in self._states.values() if s.fraud_count > 0]
        if not committed:
            return 0.0
        return sum(1 for s in committed if s.has_repeated) / len(committed)

    # ------------------------------------------------------------------
    def capture_state(self) -> Dict[str, object]:
        """Snapshot the mutable campaign state for stream checkpointing.

        The snapshot contains the per-fraudster states and the RNG position;
        static structure (population, community index) is reconstructed from
        configuration when the stream is rebuilt, keeping checkpoints
        O(fraudsters) rather than O(transactions).
        """
        return {
            "rng_state": copy.deepcopy(self._rng.bit_generator.state),
            "states": copy.deepcopy(self._states),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Restore a snapshot previously produced by :meth:`capture_state`."""
        self._rng.bit_generator.state = copy.deepcopy(state["rng_state"])
        self._states = copy.deepcopy(state["states"])  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    def plan_day(self, day: int) -> List[PlannedFraud]:
        """Return the fraudulent transfers scheduled for ``day``."""
        planned: List[PlannedFraud] = []
        for state in self._states.values():
            if state.is_repeat_offender:
                if self._rng.random() >= self.config.active_day_probability:
                    continue
                count = max(1, int(self._rng.poisson(self.config.frauds_per_active_day)))
            else:
                if state.one_shot_done:
                    continue
                # One-shot offenders strike on a random day with low probability.
                if self._rng.random() >= 0.02:
                    continue
                count = 1
                state.one_shot_done = True
            for _ in range(count):
                victim = self._pick_victim(state)
                planned.append(
                    PlannedFraud(
                        day=day,
                        fraudster_id=state.user_id,
                        victim_id=victim.user_id,
                        amount=self._sample_amount(),
                        hour=self._sample_hour(),
                        report_delay_days=self._sample_report_delay(),
                    )
                )
                state.victims.append(victim.user_id)
                state.fraud_count += 1
                if victim.community not in state.preferred_communities:
                    state.preferred_communities.append(victim.community)
        return planned

    # ------------------------------------------------------------------
    def _pick_victim(self, state: FraudsterState) -> UserProfile:
        """Pick a victim, preferring communities already penetrated."""
        if (
            state.preferred_communities
            and self._rng.random() < self.config.community_stickiness
        ):
            community = int(self._rng.choice(state.preferred_communities))
            pool = self._normal_by_community.get(community)
            if pool:
                return pool[int(self._rng.integers(0, len(pool)))]
        return self._normal_users[int(self._rng.integers(0, len(self._normal_users)))]

    def _sample_amount(self) -> float:
        cfg = self.config
        return float(
            np.clip(
                self._rng.lognormal(cfg.fraud_amount_log_mean, cfg.fraud_amount_log_sigma),
                10.0,
                200_000.0,
            )
        )

    def _sample_hour(self) -> int:
        # Fraud skews toward late-night hours.
        if self._rng.random() < 0.55:
            return int(self._rng.integers(22, 24)) if self._rng.random() < 0.5 else int(
                self._rng.integers(0, 6)
            )
        return int(self._rng.integers(0, 24))

    def _sample_report_delay(self) -> int:
        return int(np.clip(self._rng.exponential(self.config.mean_report_delay_days), 0, 30)) + 1


@dataclass
class PlannedFraudBatch:
    """One day of planned frauds in columnar form (parallel numpy arrays)."""

    #: Account index of the fraudster receiving each transfer.
    fraudster_index: np.ndarray
    #: Account index of the victim initiating each transfer.
    victim_index: np.ndarray
    amount: np.ndarray
    hour: np.ndarray
    report_delay_days: np.ndarray

    def __len__(self) -> int:
        return int(self.fraudster_index.size)


class ColumnarFraudPlanner:
    """Vectorized fraud-campaign planner over a :class:`ColumnarAccounts` population.

    Million-account streams cannot afford per-fraudster Python loops or
    per-victim ``UserProfile`` lookups, so this planner mirrors
    :class:`FraudsterBehaviorModel`'s campaign logic (repeat offenders with
    active days, one-shot strikes, community-sticky victim selection, shifted
    amount/hour/report-delay distributions) as whole-population numpy
    operations.  Community stickiness targets the fraudster's home community
    (the legacy model grows a preferred-community set per fraudster; at scale
    the home community dominates that set, so the simplification preserves the
    2-hop "gathering" topology without O(victims) per-fraudster state).
    """

    def __init__(
        self,
        accounts: "ColumnarAccounts",
        config: FraudConfig | None = None,
        *,
        rng: SeedLike = None,
    ):
        self.config = config or FraudConfig()
        self.config.validate()
        self._rng = ensure_rng(rng)
        self._accounts = accounts
        self._fraudster_index = np.flatnonzero(accounts.is_fraudster)
        self._normal_index = np.flatnonzero(~accounts.is_fraudster)
        if self._normal_index.size == 0:
            raise DataGenerationError("population contains no normal users")
        # CSR of normal users grouped by community: victim pools without dicts.
        communities = accounts.community[self._normal_index]
        order = np.argsort(communities, kind="stable")
        self._normal_by_community = self._normal_index[order]
        num_communities = int(accounts.community.max()) + 1
        counts = np.bincount(communities, minlength=num_communities)
        self._community_offsets = np.zeros(num_communities + 1, dtype=np.int64)
        np.cumsum(counts, out=self._community_offsets[1:])
        self._is_repeat = (
            self._rng.random(self._fraudster_index.size)
            < self.config.repeat_offender_fraction
        )
        self._one_shot_done = np.zeros(self._fraudster_index.size, dtype=bool)

    # ------------------------------------------------------------------
    def capture_state(self) -> Dict[str, object]:
        """Snapshot mutable planner state (RNG position + one-shot flags)."""
        return {
            "rng_state": copy.deepcopy(self._rng.bit_generator.state),
            "one_shot_done": self._one_shot_done.copy(),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Restore a snapshot previously produced by :meth:`capture_state`."""
        self._rng.bit_generator.state = copy.deepcopy(state["rng_state"])
        self._one_shot_done = np.array(state["one_shot_done"], dtype=bool, copy=True)

    # ------------------------------------------------------------------
    def plan_day(self, day: int) -> PlannedFraudBatch:
        """Plan one day of fraudulent transfers as a columnar batch."""
        cfg = self.config
        num_fraudsters = self._fraudster_index.size
        if num_fraudsters == 0:
            empty_int = np.zeros(0, dtype=np.int64)
            return PlannedFraudBatch(empty_int, empty_int, np.zeros(0), empty_int, empty_int)
        active = self._is_repeat & (
            self._rng.random(num_fraudsters) < cfg.active_day_probability
        )
        counts = np.where(
            active,
            np.maximum(1, self._rng.poisson(cfg.frauds_per_active_day, size=num_fraudsters)),
            0,
        ).astype(np.int64)
        strikes = (
            (~self._is_repeat)
            & (~self._one_shot_done)
            & (self._rng.random(num_fraudsters) < 0.02)
        )
        counts += strikes
        self._one_shot_done |= strikes
        slots = np.repeat(np.arange(num_fraudsters), counts)
        num_events = slots.size
        if num_events == 0:
            empty_int = np.zeros(0, dtype=np.int64)
            return PlannedFraudBatch(empty_int, empty_int, np.zeros(0), empty_int, empty_int)

        fraudsters = self._fraudster_index[slots]
        # Victim selection: community-sticky when the fraudster's community has
        # normal members, otherwise (or with prob 1 - stickiness) global.
        communities = self._accounts.community[fraudsters]
        pool_sizes = (
            self._community_offsets[communities + 1] - self._community_offsets[communities]
        )
        sticky = (self._rng.random(num_events) < cfg.community_stickiness) & (pool_sizes > 0)
        local = self._community_offsets[communities] + np.floor(
            self._rng.random(num_events) * np.maximum(pool_sizes, 1)
        ).astype(np.int64)
        local = np.minimum(local, self._normal_by_community.size - 1)
        global_pick = self._normal_index[
            self._rng.integers(0, self._normal_index.size, size=num_events)
        ]
        victims = np.where(sticky, self._normal_by_community[local], global_pick)

        amounts = np.clip(
            self._rng.lognormal(cfg.fraud_amount_log_mean, cfg.fraud_amount_log_sigma, num_events),
            10.0,
            200_000.0,
        )
        # Vectorized analogue of FraudsterBehaviorModel._sample_hour.
        night = self._rng.random(num_events) < 0.55
        late = self._rng.random(num_events) < 0.5
        hours = np.where(
            night,
            np.where(
                late,
                self._rng.integers(22, 24, size=num_events),
                self._rng.integers(0, 6, size=num_events),
            ),
            self._rng.integers(0, 24, size=num_events),
        ).astype(np.int64)
        delays = (
            np.clip(self._rng.exponential(cfg.mean_report_delay_days, num_events), 0, 30).astype(
                np.int64
            )
            + 1
        )
        return PlannedFraudBatch(
            fraudster_index=fraudsters,
            victim_index=victims,
            amount=amounts,
            hour=hours,
            report_delay_days=delays,
        )
