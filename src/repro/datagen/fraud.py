"""Fraudster behaviour model.

The paper's key empirical observation is that roughly 70 % of fraudsters repeat
their deceitful actions once successful, producing a "gathering" topology in
the transaction network: many victims transfer to the same fraudster node, so
the victims are 2-hop neighbours of each other (Figure 2 of the paper).

This module models each fraudster as a small campaign process:

* a fraudster is either a *repeat offender* (active over many days, accumulating
  victims) or a *one-shot* offender (a single fraudulent transfer),
* each active day the fraudster lures a few victims, preferentially from
  communities it has already penetrated (which strengthens the 2-hop structure),
* fraudulent transfers have shifted context distributions (amount, hour,
  transfer city, device novelty, IP risk) — this is where the basic features
  obtain their predictive power,
* victims file fraud reports after a random delay, producing delayed labels.

Beyond the single gathering campaign, :class:`TypologyFraudSuite` partitions
the fraudster population across five distinct, individually seeded fraud
typologies (mule/relay chains, account takeover, bust-out, merchant collusion,
smurfing).  Each typology is a :class:`FraudsterBehaviorModel` variant whose
planned transfers carry a ``typology`` tag, which the generators thread onto
:attr:`~repro.datagen.schema.Transaction.fraud_typology` — the labeled eval
slices behind the per-typology recall report.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datagen.schema import UserProfile
from repro.exceptions import DataGenerationError
from repro.rng import SeedLike, ensure_rng, spawn_child

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.datagen.profiles import ColumnarAccounts


#: The five labeled fraud typologies, in their canonical (assignment) order.
FRAUD_TYPOLOGIES: Tuple[str, ...] = (
    "mule_chain",
    "account_takeover",
    "bust_out",
    "merchant_collusion",
    "smurfing",
)


def typology_code(name: str) -> int:
    """Integer code of a typology name (0 = untagged legacy campaign fraud)."""
    if not name:
        return 0
    try:
        return FRAUD_TYPOLOGIES.index(name) + 1
    except ValueError:
        raise DataGenerationError(f"unknown fraud typology {name!r}") from None


def typology_name(code: int) -> str:
    """Typology name for an integer code produced by :func:`typology_code`."""
    if code == 0:
        return ""
    if not 1 <= code <= len(FRAUD_TYPOLOGIES):
        raise DataGenerationError(f"unknown fraud typology code {code}")
    return FRAUD_TYPOLOGIES[code - 1]


@dataclass
class FraudConfig:
    """Parameters of the fraudster behaviour model."""

    #: Fraction of fraudsters that become repeat offenders (paper: ~70 %).
    repeat_offender_fraction: float = 0.7
    #: Mean number of fraudulent transfers a repeat offender commits per active day.
    frauds_per_active_day: float = 1.6
    #: Probability that a repeat offender is active on a given day.
    active_day_probability: float = 0.35
    #: Mean label reporting delay in days.
    mean_report_delay_days: float = 3.0
    #: Fraction of victims recruited from communities already targeted.
    community_stickiness: float = 0.75
    #: Log-normal parameters of fraudulent transfer amounts.
    fraud_amount_log_mean: float = 6.3
    fraud_amount_log_sigma: float = 0.9

    def validate(self) -> None:
        if not 0.0 <= self.repeat_offender_fraction <= 1.0:
            raise DataGenerationError("repeat_offender_fraction must be in [0, 1]")
        if self.frauds_per_active_day <= 0:
            raise DataGenerationError("frauds_per_active_day must be positive")
        if not 0.0 < self.active_day_probability <= 1.0:
            raise DataGenerationError("active_day_probability must be in (0, 1]")
        if self.mean_report_delay_days < 0:
            raise DataGenerationError("mean_report_delay_days must be non-negative")
        if not 0.0 <= self.community_stickiness <= 1.0:
            raise DataGenerationError("community_stickiness must be in [0, 1]")


@dataclass
class FraudsterState:
    """Mutable per-fraudster campaign state."""

    user_id: str
    is_repeat_offender: bool
    preferred_communities: List[int] = field(default_factory=list)
    victims: List[str] = field(default_factory=list)
    fraud_count: int = 0
    one_shot_done: bool = False

    @property
    def has_repeated(self) -> bool:
        """True once the fraudster has committed more than one fraud."""
        return self.fraud_count > 1


@dataclass
class PlannedFraud:
    """One fraudulent transfer scheduled by the behaviour model.

    ``victim_id`` is always the *payer* and ``fraudster_id`` the *payee* of
    the generated transfer.  Typologies with outbound money movement (e.g.
    bust-out cash-outs from the fraudster's own account) place the fraudster
    in the payer slot and the receiving counterparty in the payee slot.
    ``typology`` tags the generating scenario (one of
    :data:`FRAUD_TYPOLOGIES`, or ``""`` for the legacy gathering campaign).
    """

    day: int
    fraudster_id: str
    victim_id: str
    amount: float
    hour: int
    report_delay_days: int
    typology: str = ""


class FraudsterBehaviorModel:
    """Schedules fraudulent transfers for every fraudster in the population."""

    def __init__(
        self,
        profiles: Sequence[UserProfile],
        config: FraudConfig | None = None,
        *,
        rng: SeedLike = None,
    ):
        self.config = config or FraudConfig()
        self.config.validate()
        self._rng = ensure_rng(rng)
        self._profiles = list(profiles)
        self._profiles_by_id = {p.user_id: p for p in self._profiles}
        self._fraudsters = [p for p in self._profiles if p.is_fraudster]
        self._normal_users = [p for p in self._profiles if not p.is_fraudster]
        if not self._normal_users:
            raise DataGenerationError("population contains no normal users")
        self._states: Dict[str, FraudsterState] = {}
        for profile in self._fraudsters:
            is_repeat = self._rng.random() < self.config.repeat_offender_fraction
            self._states[profile.user_id] = FraudsterState(
                user_id=profile.user_id,
                is_repeat_offender=is_repeat,
                preferred_communities=[profile.community],
            )
        self._normal_by_community: Dict[int, List[UserProfile]] = {}
        for profile in self._normal_users:
            self._normal_by_community.setdefault(profile.community, []).append(profile)

    # ------------------------------------------------------------------
    @property
    def states(self) -> Dict[str, FraudsterState]:
        """Read-only view of all fraudster campaign states."""
        return dict(self._states)

    def repeat_fraction(self) -> float:
        """Fraction of fraudsters that committed more than one fraud so far."""
        committed = [s for s in self._states.values() if s.fraud_count > 0]
        if not committed:
            return 0.0
        return sum(1 for s in committed if s.has_repeated) / len(committed)

    # ------------------------------------------------------------------
    def capture_state(self) -> Dict[str, object]:
        """Snapshot the mutable campaign state for stream checkpointing.

        The snapshot contains the per-fraudster states and the RNG position;
        static structure (population, community index) is reconstructed from
        configuration when the stream is rebuilt, keeping checkpoints
        O(fraudsters) rather than O(transactions).
        """
        return {
            "rng_state": copy.deepcopy(self._rng.bit_generator.state),
            "states": copy.deepcopy(self._states),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Restore a snapshot previously produced by :meth:`capture_state`."""
        self._rng.bit_generator.state = copy.deepcopy(state["rng_state"])
        self._states = copy.deepcopy(state["states"])  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    def plan_day(self, day: int) -> List[PlannedFraud]:
        """Return the fraudulent transfers scheduled for ``day``."""
        planned: List[PlannedFraud] = []
        for state in self._states.values():
            if state.is_repeat_offender:
                if self._rng.random() >= self.config.active_day_probability:
                    continue
                count = max(1, int(self._rng.poisson(self.config.frauds_per_active_day)))
            else:
                if state.one_shot_done:
                    continue
                # One-shot offenders strike on a random day with low probability.
                if self._rng.random() >= 0.02:
                    continue
                count = 1
                state.one_shot_done = True
            for _ in range(count):
                victim = self._pick_victim(state)
                planned.append(
                    PlannedFraud(
                        day=day,
                        fraudster_id=state.user_id,
                        victim_id=victim.user_id,
                        amount=self._sample_amount(),
                        hour=self._sample_hour(),
                        report_delay_days=self._sample_report_delay(),
                    )
                )
                state.victims.append(victim.user_id)
                state.fraud_count += 1
                if victim.community not in state.preferred_communities:
                    state.preferred_communities.append(victim.community)
        return planned

    # ------------------------------------------------------------------
    def _pick_victim(self, state: FraudsterState) -> UserProfile:
        """Pick a victim, preferring communities already penetrated."""
        if (
            state.preferred_communities
            and self._rng.random() < self.config.community_stickiness
        ):
            community = int(self._rng.choice(state.preferred_communities))
            pool = self._normal_by_community.get(community)
            if pool:
                return pool[int(self._rng.integers(0, len(pool)))]
        return self._normal_users[int(self._rng.integers(0, len(self._normal_users)))]

    def _sample_amount(self) -> float:
        cfg = self.config
        return float(
            np.clip(
                self._rng.lognormal(cfg.fraud_amount_log_mean, cfg.fraud_amount_log_sigma),
                10.0,
                200_000.0,
            )
        )

    def _sample_hour(self) -> int:
        # Fraud skews toward late-night hours.
        if self._rng.random() < 0.55:
            return int(self._rng.integers(22, 24)) if self._rng.random() < 0.5 else int(
                self._rng.integers(0, 6)
            )
        return int(self._rng.integers(0, 24))

    def _sample_report_delay(self) -> int:
        return int(np.clip(self._rng.exponential(self.config.mean_report_delay_days), 0, 30)) + 1


@dataclass
class TypologyConfig:
    """Structure of the five labeled fraud typologies.

    ``enabled`` selects which typologies run (canonical order is preserved for
    deterministic fraudster assignment); the remaining knobs shape each
    scenario's volume and footprint.  Expected per-day fraud volume is folded
    into :meth:`~repro.datagen.transactions.WorldConfig.validate`'s budget
    check through :meth:`expected_frauds_per_day`.
    """

    #: Typologies to run, a subset of :data:`FRAUD_TYPOLOGIES`.
    enabled: Tuple[str, ...] = FRAUD_TYPOLOGIES
    #: Probability a typology campaign fires on a given day.
    active_day_probability: float = 0.3
    #: Relay hops per mule chain (victim -> head -> mule -> ...).
    chain_length: int = 3
    #: Mean transfers per account-takeover burst (same victim, rapid drain).
    takeover_burst: int = 3
    #: Days of quiet buildup before a bust-out account can cash out.
    bust_out_buildup_days: int = 5
    #: Mean outbound cash-out transfers in one bust-out event.
    bust_out_cashouts: int = 6
    #: Colluding counterparties per fraudulent merchant.
    collusion_ring_size: int = 4
    #: Mean sub-threshold transfers per smurfing day.
    smurf_transfers: int = 8
    #: Reporting threshold smurfing stays below.
    smurf_threshold: float = 3000.0

    def validate(self) -> None:
        """Reject unknown/duplicate typologies and out-of-range knobs."""
        if not self.enabled:
            raise DataGenerationError("typologies.enabled must not be empty")
        unknown = [name for name in self.enabled if name not in FRAUD_TYPOLOGIES]
        if unknown:
            raise DataGenerationError(
                f"unknown typologies {unknown}; valid: {list(FRAUD_TYPOLOGIES)}"
            )
        if len(set(self.enabled)) != len(self.enabled):
            raise DataGenerationError("typologies.enabled contains duplicates")
        if not 0.0 < self.active_day_probability <= 1.0:
            raise DataGenerationError("active_day_probability must be in (0, 1]")
        for name in (
            "chain_length",
            "takeover_burst",
            "bust_out_cashouts",
            "collusion_ring_size",
            "smurf_transfers",
        ):
            if getattr(self, name) < 1:
                raise DataGenerationError(f"{name} must be at least 1")
        if self.bust_out_buildup_days < 0:
            raise DataGenerationError("bust_out_buildup_days must be non-negative")
        if self.smurf_threshold <= 0:
            raise DataGenerationError("smurf_threshold must be positive")

    def expected_frauds_per_fraudster_day(self, typology: str) -> float:
        """Upper-bound expected fraud transfers per assigned fraudster per day."""
        p = self.active_day_probability
        if typology == "mule_chain":
            # One active chain emits ~chain_length hops across chain_length
            # members: about one transfer per member per active day.
            return p
        if typology == "account_takeover":
            return p * max(2, self.takeover_burst)
        if typology == "bust_out":
            # At most one bust per fraudster over the horizon; bound by the
            # bust day itself.
            return p * max(2, self.bust_out_cashouts)
        if typology == "merchant_collusion":
            return p * self.collusion_ring_size
        if typology == "smurfing":
            return p * max(3, self.smurf_transfers)
        raise DataGenerationError(f"unknown fraud typology {typology!r}")

    def expected_frauds_per_day(self, num_fraudsters: int) -> float:
        """Expected daily fraud volume for a round-robin fraudster partition."""
        total = 0.0
        width = len(self.enabled)
        for index, name in enumerate(self.enabled):
            assigned = len(range(index, num_fraudsters, width))
            total += assigned * self.expected_frauds_per_fraudster_day(name)
        return total


class _TypologyFraudModel(FraudsterBehaviorModel):
    """Base class of the five typology variants.

    Inherits the campaign substrate (seeded rng, per-fraudster states,
    community-sticky victim pools, shifted amount/hour/delay samplers and the
    ``capture_state``/``restore_state`` checkpoint contract) and adds the
    typology configuration.  Subclasses override :meth:`plan_day` only.
    """

    #: Typology tag stamped on every planned transfer (set per subclass).
    typology: str = ""

    def __init__(
        self,
        profiles: Sequence[UserProfile],
        config: FraudConfig | None = None,
        typologies: TypologyConfig | None = None,
        *,
        rng: SeedLike = None,
    ):
        super().__init__(profiles, config, rng=rng)
        self.typologies = typologies or TypologyConfig()

    def _planned(
        self, day: int, payer_id: str, payee_id: str, amount: float, hour: int, delay: int
    ) -> PlannedFraud:
        return PlannedFraud(
            day=day,
            fraudster_id=payee_id,
            victim_id=payer_id,
            amount=amount,
            hour=min(23, max(0, hour)),
            report_delay_days=delay,
            typology=self.typology,
        )


class MuleChainFraudModel(_TypologyFraudModel):
    """Mule/relay chains: one stolen amount hops through consecutive mules.

    Assigned fraudsters are grouped (deterministically, in population order)
    into chains of ``chain_length``.  On an active day a chain lures one
    victim into paying its head, then relays the money mule-to-mule at
    consecutive hours with a small skim at each hop — the classic layering
    pattern, producing directed paths in the transaction network rather than
    the gathering star.
    """

    typology = "mule_chain"

    def __init__(
        self,
        profiles: Sequence[UserProfile],
        config: FraudConfig | None = None,
        typologies: TypologyConfig | None = None,
        *,
        rng: SeedLike = None,
    ):
        super().__init__(profiles, config, typologies, rng=rng)
        width = max(2, self.typologies.chain_length)
        ids = [p.user_id for p in self._fraudsters]
        self._chains = [ids[i : i + width] for i in range(0, len(ids), width)]

    def plan_day(self, day: int) -> List[PlannedFraud]:
        """Schedule one relayed theft per active chain."""
        planned: List[PlannedFraud] = []
        for chain in self._chains:
            if self._rng.random() >= self.typologies.active_day_probability:
                continue
            head_state = self._states[chain[0]]
            victim = self._pick_victim(head_state)
            amount = self._sample_amount()
            hour = self._sample_hour()
            delay = self._sample_report_delay()
            route = [victim.user_id] + chain
            for hop, (payer, payee) in enumerate(zip(route, route[1:])):
                planned.append(
                    self._planned(day, payer, payee, amount * (0.92**hop), hour + hop, delay)
                )
                self._states[payee].fraud_count += 1
            head_state.victims.append(victim.user_id)
            if victim.community not in head_state.preferred_communities:
                head_state.preferred_communities.append(victim.community)
        return planned


class AccountTakeoverFraudModel(_TypologyFraudModel):
    """Account takeover: a compromised victim is drained in a rapid burst.

    On an active day the fraudster picks one victim and fires a burst of
    same-hour small-hours transfers from that single account to itself —
    repeated payer->payee edges in a tight time window.
    """

    typology = "account_takeover"

    def plan_day(self, day: int) -> List[PlannedFraud]:
        """Schedule one same-victim drain burst per active fraudster."""
        planned: List[PlannedFraud] = []
        for state in self._states.values():
            if self._rng.random() >= self.typologies.active_day_probability:
                continue
            victim = self._pick_victim(state)
            burst = max(2, int(self._rng.poisson(self.typologies.takeover_burst)))
            base_hour = int(self._rng.integers(0, 5))
            delay = self._sample_report_delay()
            for index in range(burst):
                planned.append(
                    self._planned(
                        day,
                        victim.user_id,
                        state.user_id,
                        self._sample_amount() * 0.5,
                        base_hour + index // 2,
                        delay,
                    )
                )
                state.fraud_count += 1
            state.victims.append(victim.user_id)
            if victim.community not in state.preferred_communities:
                state.preferred_communities.append(victim.community)
        return planned


class BustOutFraudModel(_TypologyFraudModel):
    """Bust-out: quiet buildup, then one burst of outbound cash-outs.

    The account behaves normally through ``bust_out_buildup_days``, then on
    one active day moves everything *out* — the fraudster is the payer and
    the receiving counterparties the payees, the reverse direction of the
    gathering pattern.  Each account busts at most once.
    """

    typology = "bust_out"

    def plan_day(self, day: int) -> List[PlannedFraud]:
        """Schedule the (single) cash-out burst for eligible accounts."""
        planned: List[PlannedFraud] = []
        cfg = self.typologies
        for state in self._states.values():
            if state.one_shot_done or day < cfg.bust_out_buildup_days:
                continue
            if self._rng.random() >= cfg.active_day_probability:
                continue
            state.one_shot_done = True
            count = max(2, int(self._rng.poisson(cfg.bust_out_cashouts)))
            hour = self._sample_hour()
            delay = self._sample_report_delay()
            for _ in range(count):
                counterparty = self._pick_victim(state)
                planned.append(
                    self._planned(
                        day, state.user_id, counterparty.user_id, self._sample_amount(), hour, delay
                    )
                )
                state.fraud_count += 1
        return planned


class MerchantCollusionFraudModel(_TypologyFraudModel):
    """Merchant collusion: a fixed ring cycles round amounts through a merchant.

    Each fraudster owns a static ring of ``collusion_ring_size`` counterparties
    (chosen once, preferring its home community).  On an active day every ring
    member pays the merchant a suspiciously round business-hours amount —
    repeated identical edges with low amount variance.
    """

    typology = "merchant_collusion"

    def __init__(
        self,
        profiles: Sequence[UserProfile],
        config: FraudConfig | None = None,
        typologies: TypologyConfig | None = None,
        *,
        rng: SeedLike = None,
    ):
        super().__init__(profiles, config, typologies, rng=rng)
        self._rings: Dict[str, List[str]] = {}
        for profile in self._fraudsters:
            pool = self._normal_by_community.get(profile.community) or self._normal_users
            size = min(self.typologies.collusion_ring_size, len(pool))
            picks = self._rng.choice(len(pool), size=size, replace=False)
            self._rings[profile.user_id] = [pool[int(i)].user_id for i in picks]

    def plan_day(self, day: int) -> List[PlannedFraud]:
        """Schedule one full ring rotation per active merchant."""
        planned: List[PlannedFraud] = []
        for state in self._states.values():
            if self._rng.random() >= self.typologies.active_day_probability:
                continue
            delay = self._sample_report_delay()
            for member in self._rings[state.user_id]:
                amount = float(self._rng.integers(2, 20)) * 50.0
                hour = int(self._rng.integers(9, 18))
                planned.append(self._planned(day, member, state.user_id, amount, hour, delay))
                state.fraud_count += 1
        return planned


class SmurfingFraudModel(_TypologyFraudModel):
    """Smurfing: many small sub-threshold transfers from many payers.

    On an active day the fraudster collects a swarm of transfers, each kept
    below ``smurf_threshold`` (structuring), from community-sticky victims
    spread across daytime hours — high edge count, low individual amounts.
    """

    typology = "smurfing"

    def plan_day(self, day: int) -> List[PlannedFraud]:
        """Schedule one sub-threshold swarm per active fraudster."""
        planned: List[PlannedFraud] = []
        cfg = self.typologies
        for state in self._states.values():
            if self._rng.random() >= cfg.active_day_probability:
                continue
            count = max(3, int(self._rng.poisson(cfg.smurf_transfers)))
            delay = self._sample_report_delay()
            for _ in range(count):
                victim = self._pick_victim(state)
                amount = float(cfg.smurf_threshold * self._rng.uniform(0.62, 0.98))
                hour = int(self._rng.integers(8, 23))
                planned.append(self._planned(day, victim.user_id, state.user_id, amount, hour, delay))
                state.victims.append(victim.user_id)
                state.fraud_count += 1
        return planned


#: Typology name -> behaviour-model class, in canonical order.
TYPOLOGY_MODELS: Dict[str, type] = {
    "mule_chain": MuleChainFraudModel,
    "account_takeover": AccountTakeoverFraudModel,
    "bust_out": BustOutFraudModel,
    "merchant_collusion": MerchantCollusionFraudModel,
    "smurfing": SmurfingFraudModel,
}


class TypologyFraudSuite:
    """Runs the five typology models side by side over one population.

    Fraudster profiles are partitioned round-robin (in population order)
    across the enabled typologies, each sub-model gets its own spawned child
    rng (salted by typology position), and :meth:`plan_day` concatenates the
    sub-plans in canonical order — so the suite is exactly as deterministic,
    checkpointable and budget-bounded as a single
    :class:`FraudsterBehaviorModel`.  Drop-in compatible with the
    ``plan_day``/``capture_state``/``restore_state`` contract
    :class:`~repro.datagen.stream.WorldStream` expects.
    """

    def __init__(
        self,
        profiles: Sequence[UserProfile],
        config: FraudConfig | None = None,
        typologies: TypologyConfig | None = None,
        *,
        rng: SeedLike = None,
    ):
        self.config = config or FraudConfig()
        self.config.validate()
        self.typologies = typologies or TypologyConfig()
        self.typologies.validate()
        rng = ensure_rng(rng)
        normal = [p for p in profiles if not p.is_fraudster]
        fraudsters = [p for p in profiles if p.is_fraudster]
        if not normal:
            raise DataGenerationError("population contains no normal users")
        width = len(self.typologies.enabled)
        self._assignments: Dict[str, str] = {}
        self._models: List[_TypologyFraudModel] = []
        for index, name in enumerate(self.typologies.enabled):
            assigned = fraudsters[index::width]
            for profile in assigned:
                self._assignments[profile.user_id] = name
            self._models.append(
                TYPOLOGY_MODELS[name](
                    normal + assigned,
                    self.config,
                    self.typologies,
                    rng=spawn_child(rng, salt=index + 1),
                )
            )

    @property
    def assignments(self) -> Dict[str, str]:
        """Fraudster user id -> assigned typology name."""
        return dict(self._assignments)

    def plan_day(self, day: int) -> List[PlannedFraud]:
        """Concatenate every enabled typology's plan for ``day``."""
        planned: List[PlannedFraud] = []
        for model in self._models:
            planned.extend(model.plan_day(day))
        return planned

    def capture_state(self) -> Dict[str, object]:
        """Snapshot all sub-model states for stream checkpointing."""
        return {"models": [model.capture_state() for model in self._models]}

    def restore_state(self, state: Dict[str, object]) -> None:
        """Restore a snapshot previously produced by :meth:`capture_state`."""
        snapshots = state["models"]
        for model, snapshot in zip(self._models, snapshots):  # type: ignore[arg-type]
            model.restore_state(snapshot)


@dataclass
class PlannedFraudBatch:
    """One day of planned frauds in columnar form (parallel numpy arrays)."""

    #: Account index of the fraudster receiving each transfer.
    fraudster_index: np.ndarray
    #: Account index of the victim initiating each transfer.
    victim_index: np.ndarray
    amount: np.ndarray
    hour: np.ndarray
    report_delay_days: np.ndarray
    #: Per-transfer typology code (:func:`typology_code`); ``None`` marks a
    #: legacy planner batch whose transfers are all untagged.
    typology: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return int(self.fraudster_index.size)


class ColumnarFraudPlanner:
    """Vectorized fraud-campaign planner over a :class:`ColumnarAccounts` population.

    Million-account streams cannot afford per-fraudster Python loops or
    per-victim ``UserProfile`` lookups, so this planner mirrors
    :class:`FraudsterBehaviorModel`'s campaign logic (repeat offenders with
    active days, one-shot strikes, community-sticky victim selection, shifted
    amount/hour/report-delay distributions) as whole-population numpy
    operations.  Community stickiness targets the fraudster's home community
    (the legacy model grows a preferred-community set per fraudster; at scale
    the home community dominates that set, so the simplification preserves the
    2-hop "gathering" topology without O(victims) per-fraudster state).
    """

    def __init__(
        self,
        accounts: "ColumnarAccounts",
        config: FraudConfig | None = None,
        *,
        rng: SeedLike = None,
    ):
        self.config = config or FraudConfig()
        self.config.validate()
        self._rng = ensure_rng(rng)
        self._accounts = accounts
        self._fraudster_index = np.flatnonzero(accounts.is_fraudster)
        self._normal_index = np.flatnonzero(~accounts.is_fraudster)
        if self._normal_index.size == 0:
            raise DataGenerationError("population contains no normal users")
        # CSR of normal users grouped by community: victim pools without dicts.
        communities = accounts.community[self._normal_index]
        order = np.argsort(communities, kind="stable")
        self._normal_by_community = self._normal_index[order]
        num_communities = int(accounts.community.max()) + 1
        counts = np.bincount(communities, minlength=num_communities)
        self._community_offsets = np.zeros(num_communities + 1, dtype=np.int64)
        np.cumsum(counts, out=self._community_offsets[1:])
        self._is_repeat = (
            self._rng.random(self._fraudster_index.size)
            < self.config.repeat_offender_fraction
        )
        self._one_shot_done = np.zeros(self._fraudster_index.size, dtype=bool)

    # ------------------------------------------------------------------
    def capture_state(self) -> Dict[str, object]:
        """Snapshot mutable planner state (RNG position + one-shot flags)."""
        return {
            "rng_state": copy.deepcopy(self._rng.bit_generator.state),
            "one_shot_done": self._one_shot_done.copy(),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Restore a snapshot previously produced by :meth:`capture_state`."""
        self._rng.bit_generator.state = copy.deepcopy(state["rng_state"])
        self._one_shot_done = np.array(state["one_shot_done"], dtype=bool, copy=True)

    # ------------------------------------------------------------------
    def plan_day(self, day: int) -> PlannedFraudBatch:
        """Plan one day of fraudulent transfers as a columnar batch."""
        cfg = self.config
        num_fraudsters = self._fraudster_index.size
        if num_fraudsters == 0:
            empty_int = np.zeros(0, dtype=np.int64)
            return PlannedFraudBatch(empty_int, empty_int, np.zeros(0), empty_int, empty_int)
        active = self._is_repeat & (
            self._rng.random(num_fraudsters) < cfg.active_day_probability
        )
        counts = np.where(
            active,
            np.maximum(1, self._rng.poisson(cfg.frauds_per_active_day, size=num_fraudsters)),
            0,
        ).astype(np.int64)
        strikes = (
            (~self._is_repeat)
            & (~self._one_shot_done)
            & (self._rng.random(num_fraudsters) < 0.02)
        )
        counts += strikes
        self._one_shot_done |= strikes
        slots = np.repeat(np.arange(num_fraudsters), counts)
        num_events = slots.size
        if num_events == 0:
            empty_int = np.zeros(0, dtype=np.int64)
            return PlannedFraudBatch(empty_int, empty_int, np.zeros(0), empty_int, empty_int)

        fraudsters = self._fraudster_index[slots]
        # Victim selection: community-sticky when the fraudster's community has
        # normal members, otherwise (or with prob 1 - stickiness) global.
        communities = self._accounts.community[fraudsters]
        pool_sizes = (
            self._community_offsets[communities + 1] - self._community_offsets[communities]
        )
        sticky = (self._rng.random(num_events) < cfg.community_stickiness) & (pool_sizes > 0)
        local = self._community_offsets[communities] + np.floor(
            self._rng.random(num_events) * np.maximum(pool_sizes, 1)
        ).astype(np.int64)
        local = np.minimum(local, self._normal_by_community.size - 1)
        global_pick = self._normal_index[
            self._rng.integers(0, self._normal_index.size, size=num_events)
        ]
        victims = np.where(sticky, self._normal_by_community[local], global_pick)

        amounts = np.clip(
            self._rng.lognormal(cfg.fraud_amount_log_mean, cfg.fraud_amount_log_sigma, num_events),
            10.0,
            200_000.0,
        )
        # Vectorized analogue of FraudsterBehaviorModel._sample_hour.
        night = self._rng.random(num_events) < 0.55
        late = self._rng.random(num_events) < 0.5
        hours = np.where(
            night,
            np.where(
                late,
                self._rng.integers(22, 24, size=num_events),
                self._rng.integers(0, 6, size=num_events),
            ),
            self._rng.integers(0, 24, size=num_events),
        ).astype(np.int64)
        delays = (
            np.clip(self._rng.exponential(cfg.mean_report_delay_days, num_events), 0, 30).astype(
                np.int64
            )
            + 1
        )
        return PlannedFraudBatch(
            fraudster_index=fraudsters,
            victim_index=victims,
            amount=amounts,
            hour=hours,
            report_delay_days=delays,
        )


def _empty_planned_batch() -> PlannedFraudBatch:
    empty_int = np.zeros(0, dtype=np.int64)
    return PlannedFraudBatch(
        fraudster_index=empty_int,
        victim_index=empty_int.copy(),
        amount=np.zeros(0),
        hour=empty_int.copy(),
        report_delay_days=empty_int.copy(),
        typology=empty_int.copy(),
    )


class ColumnarTypologySuite:
    """Vectorized five-typology planner over a :class:`ColumnarAccounts` population.

    The million-account analogue of :class:`TypologyFraudSuite`: fraudster
    *indices* are partitioned round-robin across the enabled typologies and
    each day is planned with whole-population numpy draws in canonical
    typology order (one rng, fixed draw order, so the plan is a deterministic
    function of the rng state).  Static structure (chain grouping, collusion
    rings) is built once at construction; the only mutable state beyond the
    rng is the bust-out flags, so checkpoints stay O(fraudsters).  Emitted
    batches carry per-transfer typology codes which
    :class:`~repro.datagen.stream.ScalableWorldStream` threads onto
    ``Transaction.fraud_typology``.
    """

    def __init__(
        self,
        accounts: "ColumnarAccounts",
        config: FraudConfig | None = None,
        typologies: TypologyConfig | None = None,
        *,
        rng: SeedLike = None,
    ):
        self.config = config or FraudConfig()
        self.config.validate()
        self.typologies = typologies or TypologyConfig()
        self.typologies.validate()
        self._rng = ensure_rng(rng)
        self._accounts = accounts
        fraudsters = np.flatnonzero(accounts.is_fraudster)
        self._normal_index = np.flatnonzero(~accounts.is_fraudster)
        if self._normal_index.size == 0:
            raise DataGenerationError("population contains no normal users")
        width = len(self.typologies.enabled)
        self._assigned: Dict[str, np.ndarray] = {
            name: fraudsters[index::width]
            for index, name in enumerate(self.typologies.enabled)
        }
        empty = fraudsters[:0]
        # Static collusion rings: one row of counterparty indices per merchant.
        merchants = self._assigned.get("merchant_collusion", empty)
        ring_width = min(self.typologies.collusion_ring_size, int(self._normal_index.size))
        self._rings = self._normal_index[
            self._rng.integers(0, self._normal_index.size, size=(merchants.size, ring_width))
        ]
        self._busted = np.zeros(self._assigned.get("bust_out", empty).size, dtype=bool)

    # ------------------------------------------------------------------
    def capture_state(self) -> Dict[str, object]:
        """Snapshot mutable suite state (rng position + bust-out flags)."""
        return {
            "rng_state": copy.deepcopy(self._rng.bit_generator.state),
            "busted": self._busted.copy(),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Restore a snapshot previously produced by :meth:`capture_state`."""
        self._rng.bit_generator.state = copy.deepcopy(state["rng_state"])
        self._busted = np.array(state["busted"], dtype=bool, copy=True)

    # ------------------------------------------------------------------
    def plan_day(self, day: int) -> PlannedFraudBatch:
        """Plan one day across every enabled typology as one columnar batch."""
        payees: List[np.ndarray] = []
        payers: List[np.ndarray] = []
        amounts: List[np.ndarray] = []
        hours: List[np.ndarray] = []
        delays: List[np.ndarray] = []
        codes: List[np.ndarray] = []
        for name in self.typologies.enabled:
            part = getattr(self, "_plan_" + name)(day)
            if part is None:
                continue
            payee, payer, amount, hour, delay = part
            if payee.size == 0:
                continue
            payees.append(payee.astype(np.int64))
            payers.append(payer.astype(np.int64))
            amounts.append(amount.astype(np.float64))
            hours.append(hour.astype(np.int64))
            delays.append(delay.astype(np.int64))
            codes.append(np.full(payee.size, typology_code(name), dtype=np.int64))
        if not payees:
            return _empty_planned_batch()
        return PlannedFraudBatch(
            fraudster_index=np.concatenate(payees),
            victim_index=np.concatenate(payers),
            amount=np.concatenate(amounts),
            hour=np.concatenate(hours),
            report_delay_days=np.concatenate(delays),
            typology=np.concatenate(codes),
        )

    # ------------------------------------------------------------------
    def _victims(self, size: int) -> np.ndarray:
        return self._normal_index[self._rng.integers(0, self._normal_index.size, size=size)]

    def _amounts(self, size: int, scale: float = 1.0) -> np.ndarray:
        cfg = self.config
        draw = self._rng.lognormal(cfg.fraud_amount_log_mean, cfg.fraud_amount_log_sigma, size)
        return np.clip(draw * scale, 10.0, 200_000.0)

    def _delays(self, size: int) -> np.ndarray:
        return (
            np.clip(
                self._rng.exponential(self.config.mean_report_delay_days, size), 0, 30
            ).astype(np.int64)
            + 1
        )

    # ------------------------------------------------------------------
    def _plan_mule_chain(self, day: int):
        assigned = self._assigned["mule_chain"]
        if assigned.size == 0:
            return None
        cfg = self.typologies
        width = max(2, cfg.chain_length)
        num_chains = -(-int(assigned.size) // width)
        active = self._rng.random(num_chains) < cfg.active_day_probability
        victims = self._victims(num_chains)
        amounts = self._amounts(num_chains)
        hours = self._rng.integers(0, 6, size=num_chains)
        delays = self._delays(num_chains)
        member = np.arange(assigned.size)
        chain_of = member // width
        pos = member % width
        payer = np.where(pos == 0, victims[chain_of], assigned[np.maximum(member - 1, 0)])
        mask = active[chain_of]
        return (
            assigned[mask],
            payer[mask],
            (amounts[chain_of] * 0.92**pos)[mask],
            np.minimum(23, hours[chain_of] + pos)[mask],
            delays[chain_of][mask],
        )

    def _plan_account_takeover(self, day: int):
        assigned = self._assigned["account_takeover"]
        if assigned.size == 0:
            return None
        cfg = self.typologies
        m = int(assigned.size)
        active = self._rng.random(m) < cfg.active_day_probability
        burst = np.maximum(2, self._rng.poisson(cfg.takeover_burst, m))
        victims = self._victims(m)
        hours = self._rng.integers(0, 5, size=m)
        delays = self._delays(m)
        counts = np.where(active, burst, 0)
        slots = np.repeat(np.arange(m), counts)
        if slots.size == 0:
            return None
        within = np.arange(slots.size) - np.repeat(np.cumsum(counts) - counts, counts)
        return (
            assigned[slots],
            victims[slots],
            self._amounts(int(slots.size), scale=0.5),
            np.minimum(23, hours[slots] + within // 2),
            delays[slots],
        )

    def _plan_bust_out(self, day: int):
        assigned = self._assigned["bust_out"]
        if assigned.size == 0:
            return None
        cfg = self.typologies
        m = int(assigned.size)
        draw = self._rng.random(m)
        active = (~self._busted) & (day >= cfg.bust_out_buildup_days) & (
            draw < cfg.active_day_probability
        )
        self._busted = self._busted | active
        counts = np.where(active, np.maximum(2, self._rng.poisson(cfg.bust_out_cashouts, m)), 0)
        hours = self._rng.integers(0, 24, size=m)
        delays = self._delays(m)
        slots = np.repeat(np.arange(m), counts)
        if slots.size == 0:
            return None
        counterparties = self._victims(int(slots.size))
        # Outbound direction: the busting account is the payer (victim slot).
        return (
            counterparties,
            assigned[slots],
            self._amounts(int(slots.size)),
            hours[slots],
            delays[slots],
        )

    def _plan_merchant_collusion(self, day: int):
        assigned = self._assigned["merchant_collusion"]
        if assigned.size == 0 or self._rings.shape[1] == 0:
            return None
        cfg = self.typologies
        m = int(assigned.size)
        active = self._rng.random(m) < cfg.active_day_probability
        delays = self._delays(m)
        ring_width = self._rings.shape[1]
        slots = np.repeat(np.arange(m), np.where(active, ring_width, 0))
        if slots.size == 0:
            return None
        members = self._rings[active].reshape(-1)
        amounts = self._rng.integers(2, 20, size=slots.size).astype(np.float64) * 50.0
        hours = self._rng.integers(9, 18, size=slots.size)
        return (assigned[slots], members, amounts, hours, delays[slots])

    def _plan_smurfing(self, day: int):
        assigned = self._assigned["smurfing"]
        if assigned.size == 0:
            return None
        cfg = self.typologies
        m = int(assigned.size)
        active = self._rng.random(m) < cfg.active_day_probability
        counts = np.where(active, np.maximum(3, self._rng.poisson(cfg.smurf_transfers, m)), 0)
        delays = self._delays(m)
        slots = np.repeat(np.arange(m), counts)
        if slots.size == 0:
            return None
        victims = self._victims(int(slots.size))
        amounts = cfg.smurf_threshold * self._rng.uniform(0.62, 0.98, size=slots.size)
        hours = self._rng.integers(8, 23, size=slots.size)
        return (assigned[slots], victims, amounts, hours, delays[slots])
