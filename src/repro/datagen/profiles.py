"""User-profile generation.

Profiles provide the "user profile" half of the paper's basic features (age,
gender, home city, account age, KYC level, ...).  Users are grouped into
communities: normal transfers mostly stay inside a community, which gives the
transaction network the modular structure that DeepWalk exploits.  A small
fraction of users are fraudsters; their identity is a hidden generative
attribute, never a feature — detection models must recover it from behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List

import numpy as np

from repro.datagen.schema import Gender, UserProfile, NUM_CITIES, city_name
from repro.exceptions import DataGenerationError
from repro.rng import SeedLike, ensure_rng

#: Gender codes used by the columnar population (index into this tuple).
_GENDER_CODES = (Gender.FEMALE, Gender.MALE, Gender.UNKNOWN)


@dataclass
class ProfileConfig:
    """Configuration of the user population.

    Parameters
    ----------
    num_users:
        Size of the population (payer and payee accounts combined).
    num_communities:
        Number of latent communities used to shape the transfer topology.
    fraudster_fraction:
        Fraction of users marked as fraudsters (hidden attribute).
    merchant_fraction:
        Fraction of users that are merchant accounts (many inbound transfers).
    """

    num_users: int = 2000
    num_communities: int = 12
    fraudster_fraction: float = 0.02
    merchant_fraction: float = 0.05
    min_age: int = 18
    max_age: int = 75
    seed: int | None = None

    def validate(self) -> None:
        if self.num_users <= 0:
            raise DataGenerationError("num_users must be positive")
        if self.num_communities <= 0:
            raise DataGenerationError("num_communities must be positive")
        if not 0.0 <= self.fraudster_fraction < 1.0:
            raise DataGenerationError("fraudster_fraction must be in [0, 1)")
        if not 0.0 <= self.merchant_fraction < 1.0:
            raise DataGenerationError("merchant_fraction must be in [0, 1)")
        if self.min_age >= self.max_age:
            raise DataGenerationError("min_age must be below max_age")


class ProfileGenerator:
    """Generate a reproducible population of :class:`UserProfile` objects."""

    def __init__(self, config: ProfileConfig | None = None, *, rng: SeedLike = None):
        self.config = config or ProfileConfig()
        self.config.validate()
        self._rng = ensure_rng(self.config.seed if rng is None else rng)

    # ------------------------------------------------------------------
    def generate(self) -> List[UserProfile]:
        """Generate the full population.

        Fraudsters are biased toward young accounts, low KYC levels and many
        devices — matching the qualitative intuition behind the paper's basic
        features — but with heavy overlap with the normal population so that
        profile features alone cannot separate them.

        Fraudsters also concentrate in a minority of "high-risk" communities
        (fraud rings operate in clusters), which is what makes the transaction
        network's topology informative beyond individual transactions: node
        embeddings encode community membership, and community membership
        carries fraud risk that no basic feature exposes.
        """
        cfg = self.config
        rng = self._rng
        profiles: List[UserProfile] = []

        # Pre-assign communities, then draw fraudsters with probability
        # proportional to the community's risk weight.
        communities = rng.integers(0, cfg.num_communities, size=cfg.num_users)
        risk_weights = np.array(
            [self.community_risk_weight(int(c)) for c in communities], dtype=np.float64
        )
        num_fraudsters = int(round(cfg.num_users * cfg.fraudster_fraction))
        num_fraudsters = min(num_fraudsters, cfg.num_users)
        fraud_ids: set[int] = set()
        if num_fraudsters > 0:
            probabilities = risk_weights / risk_weights.sum()
            fraud_ids = set(
                rng.choice(
                    cfg.num_users, size=num_fraudsters, replace=False, p=probabilities
                ).tolist()
            )

        for index in range(cfg.num_users):
            is_fraudster = index in fraud_ids
            community = int(communities[index])
            age = self._sample_age(is_fraudster)
            gender = self._sample_gender()
            home_city = city_name(int(rng.integers(0, NUM_CITIES)))
            account_age = self._sample_account_age(is_fraudster)
            kyc_level = self._sample_kyc(is_fraudster)
            is_merchant = (not is_fraudster) and rng.random() < cfg.merchant_fraction
            device_count = self._sample_device_count(is_fraudster)
            risk_propensity = float(np.clip(rng.normal(0.65 if is_fraudster else 0.25, 0.15), 0, 1))
            activity_level = float(rng.gamma(2.0, 1.2 if is_merchant else 0.6) + 0.2)

            profiles.append(
                UserProfile(
                    user_id=f"u{index:07d}",
                    age=age,
                    gender=gender,
                    home_city=home_city,
                    account_age_days=account_age,
                    kyc_level=kyc_level,
                    is_merchant=is_merchant,
                    device_count=device_count,
                    community=community,
                    is_fraudster=is_fraudster,
                    risk_propensity=risk_propensity,
                    activity_level=activity_level,
                )
            )
        return profiles

    # ------------------------------------------------------------------
    @staticmethod
    def community_risk_weight(community: int) -> float:
        """Relative fraudster density of a community.

        Every fourth community is a high-risk "ring" community (8x weight);
        the rest share a low baseline.  The weights only shape *where*
        fraudsters sit in the graph — the overall fraudster fraction is still
        ``ProfileConfig.fraudster_fraction``.
        """
        return 8.0 if community % 4 == 0 else 0.5

    def _sample_age(self, is_fraudster: bool) -> int:
        cfg = self.config
        mean = 29.0 if is_fraudster else 36.0
        age = int(round(self._rng.normal(mean, 11.0)))
        return int(np.clip(age, cfg.min_age, cfg.max_age))

    def _sample_gender(self) -> Gender:
        roll = self._rng.random()
        if roll < 0.49:
            return Gender.FEMALE
        if roll < 0.97:
            return Gender.MALE
        return Gender.UNKNOWN

    def _sample_account_age(self, is_fraudster: bool) -> int:
        # Fraudsters skew toward newly created accounts.
        scale = 140.0 if is_fraudster else 700.0
        return int(np.clip(self._rng.exponential(scale), 1, 4000))

    def _sample_kyc(self, is_fraudster: bool) -> int:
        probs = [0.35, 0.40, 0.25] if is_fraudster else [0.10, 0.35, 0.55]
        return int(self._rng.choice([1, 2, 3], p=probs))

    def _sample_device_count(self, is_fraudster: bool) -> int:
        lam = 3.2 if is_fraudster else 1.4
        return int(np.clip(self._rng.poisson(lam) + 1, 1, 12))


class ColumnarAccounts:
    """Columnar account population for million-account streams.

    Stores the whole population as parallel numpy arrays — a 1M-account world
    costs tens of megabytes instead of the ~gigabyte that a list of
    :class:`UserProfile` dataclasses would need — and materializes individual
    profiles only on demand.  Sampling follows the same qualitative shape as
    :class:`ProfileGenerator` (fraudsters skew young / low-KYC / many-device
    and concentrate in every fourth community) but is drawn with vectorized
    equivalents, so a columnar population is *not* bit-identical to the list
    population at the same seed; it is deterministic in its own right.
    """

    def __init__(self, config: ProfileConfig | None = None, *, rng: SeedLike = None):
        self.config = config or ProfileConfig()
        self.config.validate()
        rng = ensure_rng(self.config.seed if rng is None else rng)
        cfg = self.config
        n = cfg.num_users

        self.community = rng.integers(0, cfg.num_communities, size=n).astype(np.int32)
        risk_weights = np.where(
            self.community % 4 == 0,
            ProfileGenerator.community_risk_weight(0),
            ProfileGenerator.community_risk_weight(1),
        )
        num_fraudsters = min(int(round(n * cfg.fraudster_fraction)), n)
        self.is_fraudster = np.zeros(n, dtype=bool)
        if num_fraudsters > 0:
            # Gumbel top-k == weighted sampling without replacement, vectorized.
            keys = np.log(risk_weights) + rng.gumbel(size=n)
            winners = np.argpartition(-keys, num_fraudsters - 1)[:num_fraudsters]
            self.is_fraudster[winners] = True

        fraud = self.is_fraudster
        self.age = np.clip(
            np.round(rng.normal(np.where(fraud, 29.0, 36.0), 11.0)),
            cfg.min_age,
            cfg.max_age,
        ).astype(np.int16)
        roll = rng.random(n)
        self.gender_code = np.where(roll < 0.49, 0, np.where(roll < 0.97, 1, 2)).astype(np.int8)
        self.home_city = rng.integers(0, NUM_CITIES, size=n).astype(np.int16)
        self.account_age_days = np.clip(
            rng.exponential(1.0, size=n) * np.where(fraud, 140.0, 700.0), 1, 4000
        ).astype(np.int32)
        kyc_roll = rng.random(n)
        low = np.where(fraud, 0.35, 0.10)
        mid = np.where(fraud, 0.75, 0.45)
        self.kyc_level = np.where(kyc_roll < low, 1, np.where(kyc_roll < mid, 2, 3)).astype(
            np.int8
        )
        self.is_merchant = (~fraud) & (rng.random(n) < cfg.merchant_fraction)
        self.device_count = np.clip(
            rng.poisson(np.where(fraud, 3.2, 1.4)) + 1, 1, 12
        ).astype(np.int8)
        self.risk_propensity = np.clip(
            rng.normal(np.where(fraud, 0.65, 0.25), 0.15), 0, 1
        ).astype(np.float32)
        self.activity_level = (
            rng.gamma(2.0, 1.0, size=n) * np.where(self.is_merchant, 1.2, 0.6) + 0.2
        ).astype(np.float64)
        self.merchant_index = np.flatnonzero(self.is_merchant)

        # CSR of accounts grouped by community, for O(1) intra-community picks.
        order = np.argsort(self.community, kind="stable")
        self.community_members = order.astype(np.int64)
        counts = np.bincount(self.community, minlength=cfg.num_communities)
        self.community_offsets = np.zeros(cfg.num_communities + 1, dtype=np.int64)
        np.cumsum(counts, out=self.community_offsets[1:])

    # ------------------------------------------------------------------
    @property
    def num_accounts(self) -> int:
        """Population size."""
        return int(self.community.size)

    @staticmethod
    def user_id(index: int) -> str:
        """Canonical account id for array position ``index``."""
        return f"u{index:07d}"

    def profile(self, index: int) -> UserProfile:
        """Materialize one :class:`UserProfile` from the columnar store."""
        return UserProfile(
            user_id=self.user_id(index),
            age=int(self.age[index]),
            gender=_GENDER_CODES[int(self.gender_code[index])],
            home_city=city_name(int(self.home_city[index])),
            account_age_days=int(self.account_age_days[index]),
            kyc_level=int(self.kyc_level[index]),
            is_merchant=bool(self.is_merchant[index]),
            device_count=int(self.device_count[index]),
            community=int(self.community[index]),
            is_fraudster=bool(self.is_fraudster[index]),
            risk_propensity=float(self.risk_propensity[index]),
            activity_level=float(self.activity_level[index]),
        )

    def iter_profiles(self, indices: "np.ndarray | None" = None) -> Iterator[UserProfile]:
        """Yield materialized profiles for ``indices`` (default: everyone)."""
        if indices is None:
            indices = range(self.num_accounts)  # type: ignore[assignment]
        for index in indices:
            yield self.profile(int(index))

    def nbytes(self) -> int:
        """Total bytes held by the columnar arrays (honest memory accounting)."""
        arrays = (
            self.community,
            self.is_fraudster,
            self.age,
            self.gender_code,
            self.home_city,
            self.account_age_days,
            self.kyc_level,
            self.is_merchant,
            self.device_count,
            self.risk_propensity,
            self.activity_level,
            self.merchant_index,
            self.community_members,
            self.community_offsets,
        )
        return int(sum(a.nbytes for a in arrays))


def profiles_by_id(profiles: List[UserProfile]) -> Dict[str, UserProfile]:
    """Index profiles by ``user_id``; raises on duplicates."""
    index: Dict[str, UserProfile] = {}
    for profile in profiles:
        if profile.user_id in index:
            raise DataGenerationError(f"duplicate user_id {profile.user_id}")
        index[profile.user_id] = profile
    return index
