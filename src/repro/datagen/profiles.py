"""User-profile generation.

Profiles provide the "user profile" half of the paper's basic features (age,
gender, home city, account age, KYC level, ...).  Users are grouped into
communities: normal transfers mostly stay inside a community, which gives the
transaction network the modular structure that DeepWalk exploits.  A small
fraction of users are fraudsters; their identity is a hidden generative
attribute, never a feature — detection models must recover it from behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.datagen.schema import Gender, UserProfile, NUM_CITIES, city_name
from repro.exceptions import DataGenerationError
from repro.rng import SeedLike, ensure_rng


@dataclass
class ProfileConfig:
    """Configuration of the user population.

    Parameters
    ----------
    num_users:
        Size of the population (payer and payee accounts combined).
    num_communities:
        Number of latent communities used to shape the transfer topology.
    fraudster_fraction:
        Fraction of users marked as fraudsters (hidden attribute).
    merchant_fraction:
        Fraction of users that are merchant accounts (many inbound transfers).
    """

    num_users: int = 2000
    num_communities: int = 12
    fraudster_fraction: float = 0.02
    merchant_fraction: float = 0.05
    min_age: int = 18
    max_age: int = 75
    seed: int | None = None

    def validate(self) -> None:
        if self.num_users <= 0:
            raise DataGenerationError("num_users must be positive")
        if self.num_communities <= 0:
            raise DataGenerationError("num_communities must be positive")
        if not 0.0 <= self.fraudster_fraction < 1.0:
            raise DataGenerationError("fraudster_fraction must be in [0, 1)")
        if not 0.0 <= self.merchant_fraction < 1.0:
            raise DataGenerationError("merchant_fraction must be in [0, 1)")
        if self.min_age >= self.max_age:
            raise DataGenerationError("min_age must be below max_age")


class ProfileGenerator:
    """Generate a reproducible population of :class:`UserProfile` objects."""

    def __init__(self, config: ProfileConfig | None = None, *, rng: SeedLike = None):
        self.config = config or ProfileConfig()
        self.config.validate()
        self._rng = ensure_rng(self.config.seed if rng is None else rng)

    # ------------------------------------------------------------------
    def generate(self) -> List[UserProfile]:
        """Generate the full population.

        Fraudsters are biased toward young accounts, low KYC levels and many
        devices — matching the qualitative intuition behind the paper's basic
        features — but with heavy overlap with the normal population so that
        profile features alone cannot separate them.

        Fraudsters also concentrate in a minority of "high-risk" communities
        (fraud rings operate in clusters), which is what makes the transaction
        network's topology informative beyond individual transactions: node
        embeddings encode community membership, and community membership
        carries fraud risk that no basic feature exposes.
        """
        cfg = self.config
        rng = self._rng
        profiles: List[UserProfile] = []

        # Pre-assign communities, then draw fraudsters with probability
        # proportional to the community's risk weight.
        communities = rng.integers(0, cfg.num_communities, size=cfg.num_users)
        risk_weights = np.array(
            [self.community_risk_weight(int(c)) for c in communities], dtype=np.float64
        )
        num_fraudsters = int(round(cfg.num_users * cfg.fraudster_fraction))
        num_fraudsters = min(num_fraudsters, cfg.num_users)
        fraud_ids: set[int] = set()
        if num_fraudsters > 0:
            probabilities = risk_weights / risk_weights.sum()
            fraud_ids = set(
                rng.choice(
                    cfg.num_users, size=num_fraudsters, replace=False, p=probabilities
                ).tolist()
            )

        for index in range(cfg.num_users):
            is_fraudster = index in fraud_ids
            community = int(communities[index])
            age = self._sample_age(is_fraudster)
            gender = self._sample_gender()
            home_city = city_name(int(rng.integers(0, NUM_CITIES)))
            account_age = self._sample_account_age(is_fraudster)
            kyc_level = self._sample_kyc(is_fraudster)
            is_merchant = (not is_fraudster) and rng.random() < cfg.merchant_fraction
            device_count = self._sample_device_count(is_fraudster)
            risk_propensity = float(np.clip(rng.normal(0.65 if is_fraudster else 0.25, 0.15), 0, 1))
            activity_level = float(rng.gamma(2.0, 1.2 if is_merchant else 0.6) + 0.2)

            profiles.append(
                UserProfile(
                    user_id=f"u{index:07d}",
                    age=age,
                    gender=gender,
                    home_city=home_city,
                    account_age_days=account_age,
                    kyc_level=kyc_level,
                    is_merchant=is_merchant,
                    device_count=device_count,
                    community=community,
                    is_fraudster=is_fraudster,
                    risk_propensity=risk_propensity,
                    activity_level=activity_level,
                )
            )
        return profiles

    # ------------------------------------------------------------------
    @staticmethod
    def community_risk_weight(community: int) -> float:
        """Relative fraudster density of a community.

        Every fourth community is a high-risk "ring" community (8x weight);
        the rest share a low baseline.  The weights only shape *where*
        fraudsters sit in the graph — the overall fraudster fraction is still
        ``ProfileConfig.fraudster_fraction``.
        """
        return 8.0 if community % 4 == 0 else 0.5

    def _sample_age(self, is_fraudster: bool) -> int:
        cfg = self.config
        mean = 29.0 if is_fraudster else 36.0
        age = int(round(self._rng.normal(mean, 11.0)))
        return int(np.clip(age, cfg.min_age, cfg.max_age))

    def _sample_gender(self) -> Gender:
        roll = self._rng.random()
        if roll < 0.49:
            return Gender.FEMALE
        if roll < 0.97:
            return Gender.MALE
        return Gender.UNKNOWN

    def _sample_account_age(self, is_fraudster: bool) -> int:
        # Fraudsters skew toward newly created accounts.
        scale = 140.0 if is_fraudster else 700.0
        return int(np.clip(self._rng.exponential(scale), 1, 4000))

    def _sample_kyc(self, is_fraudster: bool) -> int:
        probs = [0.35, 0.40, 0.25] if is_fraudster else [0.10, 0.35, 0.55]
        return int(self._rng.choice([1, 2, 3], p=probs))

    def _sample_device_count(self, is_fraudster: bool) -> int:
        lam = 3.2 if is_fraudster else 1.4
        return int(np.clip(self._rng.poisson(lam) + 1, 1, 12))


def profiles_by_id(profiles: List[UserProfile]) -> Dict[str, UserProfile]:
    """Index profiles by ``user_id``; raises on duplicates."""
    index: Dict[str, UserProfile] = {}
    for profile in profiles:
        if profile.user_id in index:
            raise DataGenerationError(f"duplicate user_id {profile.user_id}")
        index[profile.user_id] = profile
    return index
