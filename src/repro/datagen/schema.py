"""Data schema of the synthetic transaction world.

Two record types flow through the whole reproduction:

* :class:`UserProfile` — static per-user attributes (the paper's "user
  profile" source of basic features: age, gender, home city, account age ...).
* :class:`Transaction` — one transfer event (the paper's "transfer
  environment" source: amount, hour, channel, device, transfer city ...).

Both are plain dataclasses convertible to dictionaries so that they can be
loaded into the MaxCompute table substrate and processed by the SQL /
MapReduce layers exactly like the production logs in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict
from enum import Enum
from typing import Dict, List, Optional


class Gender(str, Enum):
    """User gender as recorded in the profile store."""

    FEMALE = "F"
    MALE = "M"
    UNKNOWN = "U"


class TransactionChannel(str, Enum):
    """Channel through which a transfer was initiated."""

    APP = "app"
    WEB = "web"
    QR_CODE = "qr"
    BANK_CARD = "bank_card"


#: Relative fraud intensity per (synthetic) city tier.  The paper observes that
#: "the fraudulent rates in some specific locations are always higher than
#: other areas"; we encode that as three location tiers.
CITY_FRAUD_TIERS: Dict[str, float] = {
    "tier_low": 0.6,
    "tier_mid": 1.0,
    "tier_high": 2.4,
}

#: Number of distinct synthetic cities.  City ids are ``city_<k>``; the tier of
#: a city is a deterministic function of ``k`` (see :func:`city_tier`).
NUM_CITIES = 40


def city_name(index: int) -> str:
    """Return the canonical name of city ``index``."""
    return f"city_{index:03d}"


def city_tier(city: str) -> str:
    """Map a city name to its fraud-intensity tier.

    Cities are assigned tiers deterministically: one in five cities is
    "high-risk", two in five are "mid", the rest are "low".
    """
    try:
        index = int(city.rsplit("_", 1)[1])
    except (IndexError, ValueError):
        return "tier_mid"
    bucket = index % 5
    if bucket == 0:
        return "tier_high"
    if bucket in (1, 2):
        return "tier_mid"
    return "tier_low"


@dataclass
class UserProfile:
    """Static profile of one account (a node in the transaction network)."""

    user_id: str
    age: int
    gender: Gender
    home_city: str
    account_age_days: int
    kyc_level: int
    is_merchant: bool
    device_count: int
    community: int
    #: Hidden generative attributes (never exposed as features).
    is_fraudster: bool = False
    risk_propensity: float = 0.0
    activity_level: float = 1.0

    def to_row(self) -> Dict[str, object]:
        """Serialise the profile for the MaxCompute table substrate."""
        row = asdict(self)
        row["gender"] = self.gender.value
        return row

    @classmethod
    def from_row(cls, row: Dict[str, object]) -> "UserProfile":
        data = dict(row)
        data["gender"] = Gender(data["gender"])
        return cls(**data)  # type: ignore[arg-type]


@dataclass
class Transaction:
    """One transfer from ``payer_id`` to ``payee_id``.

    ``is_fraud`` is the ground-truth label; ``label_available_day`` models the
    reporting delay of user fraud reports (labels are not observable in real
    time, which is why the paper trains offline and predicts online).

    ``fraud_typology`` tags campaign frauds with the generating typology
    (``"mule_chain"``, ``"smurfing"``, ...) so evaluation can report recall
    per fraud scenario; it is ``""`` for normal transfers, background fraud
    and worlds generated without a typology suite.  Ground truth only — the
    tag is never exposed as a feature.
    """

    transaction_id: str
    day: int
    hour: int
    payer_id: str
    payee_id: str
    amount: float
    channel: TransactionChannel
    trans_city: str
    device_id: str
    is_new_device: bool
    ip_risk_score: float
    payer_recent_txn_count: int
    payer_recent_amount: float
    payee_recent_inbound_count: int
    is_fraud: bool
    label_available_day: int
    fraud_typology: str = ""

    def to_row(self) -> Dict[str, object]:
        """Serialise the transaction for the MaxCompute table substrate."""
        row = asdict(self)
        row["channel"] = self.channel.value
        return row

    @classmethod
    def from_row(cls, row: Dict[str, object]) -> "Transaction":
        data = dict(row)
        data["channel"] = TransactionChannel(data["channel"])
        return cls(**data)  # type: ignore[arg-type]


#: Column order used when materialising transactions as MaxCompute tables.
TRANSACTION_COLUMNS: List[str] = [
    "transaction_id",
    "day",
    "hour",
    "payer_id",
    "payee_id",
    "amount",
    "channel",
    "trans_city",
    "device_id",
    "is_new_device",
    "ip_risk_score",
    "payer_recent_txn_count",
    "payer_recent_amount",
    "payee_recent_inbound_count",
    "is_fraud",
    "label_available_day",
]

#: Column order for the user-profile table.
PROFILE_COLUMNS: List[str] = [
    "user_id",
    "age",
    "gender",
    "home_city",
    "account_age_days",
    "kyc_level",
    "is_merchant",
    "device_count",
    "community",
    "is_fraudster",
    "risk_propensity",
    "activity_level",
]


@dataclass
class LabelRecord:
    """A fraud report as collected from user feedback (delayed labels)."""

    transaction_id: str
    reported_day: int
    is_fraud: bool

    def to_row(self) -> Dict[str, object]:
        return asdict(self)


@dataclass
class WorldSummary:
    """Aggregate statistics of a generated world, used by tests and examples."""

    num_users: int
    num_fraudsters: int
    num_transactions: int
    num_fraud_transactions: int
    days: int
    fraud_rate: float
    repeat_fraudster_fraction: float
    extras: Dict[str, float] = field(default_factory=dict)

    def describe(self) -> str:
        """Human-readable one-paragraph description."""
        return (
            f"{self.num_transactions} transactions over {self.days} days, "
            f"{self.num_users} users ({self.num_fraudsters} fraudsters), "
            f"fraud rate {self.fraud_rate:.3%}, "
            f"{self.repeat_fraudster_fraction:.0%} of fraudsters repeat"
        )


#: Seconds per simulated hour/day — the schema is hour-granular, so these are
#: the only time constants the data layer needs.
SECONDS_PER_HOUR = 3600
SECONDS_PER_DAY = 24 * SECONDS_PER_HOUR


def transaction_sort_key(txn: Transaction) -> tuple:
    """Canonical event-time total order for the data layer.

    Mirrors ``repro.features.streaming.event_order`` — (event-time seconds,
    transaction id) — but lives in ``datagen`` so stream generators can order
    their output without importing the feature layer.
    """
    return (txn.day * SECONDS_PER_DAY + txn.hour * SECONDS_PER_HOUR, txn.transaction_id)


def validate_transaction(txn: Transaction) -> Optional[str]:
    """Return an error string if ``txn`` violates schema invariants, else None."""
    if txn.amount <= 0:
        return f"amount must be positive, got {txn.amount}"
    if not 0 <= txn.hour <= 23:
        return f"hour must be in [0, 23], got {txn.hour}"
    if txn.payer_id == txn.payee_id:
        return "self transfers are not allowed"
    if txn.day < 0:
        return f"day must be non-negative, got {txn.day}"
    if txn.label_available_day < txn.day:
        return "labels cannot become available before the transaction day"
    if not 0.0 <= txn.ip_risk_score <= 1.0:
        return f"ip_risk_score must be in [0, 1], got {txn.ip_risk_score}"
    return None
