"""Streaming transaction generation: bounded memory at million-account scale.

This module turns the data layer from "materialize, then iterate" into
"stream, bounded memory":

* :class:`TransactionStream` — the protocol: a seeded, resumable,
  batched iterator of :class:`~repro.datagen.schema.Transaction` events.
  Checkpoints are O(active accounts): a day index, an intra-day offset and a
  pickled day-start generator state — never the transactions themselves.
* :class:`WorldStream` — the legacy world as a stream.  Bit-identical to the
  historical ``generate_world`` output at the same seed (``generate_world``
  is now a thin materializing wrapper around it).
* :class:`ScalableWorldStream` — the million-account path: a columnar
  population (:class:`~repro.datagen.profiles.ColumnarAccounts`), vectorized
  per-hour generation under a non-homogeneous arrival process (diurnal curve
  + bursts, :class:`~repro.datagen.transactions.ArrivalConfig`), and
  O(active-accounts) state.  Event-time ordered by construction, so the
  serving replay path can consume it without a global sort.
"""

from __future__ import annotations

import pickle
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.datagen.fraud import (
    ColumnarFraudPlanner,
    ColumnarTypologySuite,
    FraudsterBehaviorModel,
    PlannedFraudBatch,
    TypologyFraudSuite,
    typology_name,
)
from repro.datagen.profiles import ColumnarAccounts, ProfileGenerator, profiles_by_id
from repro.datagen.schema import (
    CITY_FRAUD_TIERS,
    NUM_CITIES,
    Transaction,
    TransactionChannel,
    UserProfile,
    city_name,
    city_tier,
    transaction_sort_key,
)
from repro.datagen.transactions import (
    ArrivalConfig,
    TransactionWorld,
    WorldConfig,
    _DailyStreamGenerator,
)
from repro.exceptions import DataGenerationError
from repro.rng import SeedLike, ensure_rng, spawn_child

#: Background-fraud multiplier per city index (vectorized ``city_tier``).
_CITY_TIER_MULTIPLIERS = np.array(
    [CITY_FRAUD_TIERS[city_tier(city_name(i))] for i in range(NUM_CITIES)], dtype=np.float64
)

#: City indices in the high-risk tier (fraud skews toward these).
_HIGH_RISK_CITIES = np.array(
    [i for i in range(NUM_CITIES) if city_tier(city_name(i)) == "tier_high"], dtype=np.int64
)

#: Channel values in sampling order (matches the legacy generator's order).
_CHANNEL_VALUES = tuple(TransactionChannel)


@dataclass(frozen=True)
class StreamCheckpoint:
    """A resumable position in a :class:`TransactionStream`.

    ``state`` is the pickled generator state captured at the *start* of
    ``day``; resuming restores that state, regenerates the day and skips the
    first ``offset`` events.  Size is O(active accounts), independent of how
    many transactions were already emitted.
    """

    day: int
    offset: int
    events_emitted: int
    state: bytes


class TransactionStream(ABC):
    """A seeded, resumable, batched iterator of transactions.

    Subclasses implement day-chunked generation (:meth:`_generate_day`) plus
    state capture/restore; the base class owns iteration order, batching and
    the checkpoint/seek machinery.  Batching is a pure re-grouping of the
    deterministic event sequence, so output is batch-size invariant by
    construction.  Streams are single-consumer: ``events()``/``batches()``
    advance one shared position.
    """

    def __init__(self, num_days: int) -> None:
        self._num_days = num_days
        self._day = 0
        self._offset = 0
        self._events_emitted = 0
        self._day_start_state: Optional[bytes] = None

    # ------------------------------------------------------------------
    @property
    def num_days(self) -> int:
        """Number of simulated days in the stream's horizon."""
        return self._num_days

    @property
    def events_emitted(self) -> int:
        """Total events yielded so far (across resumes)."""
        return self._events_emitted

    @property
    @abstractmethod
    def num_accounts(self) -> int:
        """Size of the account population behind the stream."""

    @property
    @abstractmethod
    def event_time_ordered(self) -> bool:
        """True if events are totally ordered by (event time, transaction id)."""

    @abstractmethod
    def _capture_state(self) -> Dict[str, object]:
        """Snapshot all mutable generation state (picklable, O(accounts))."""

    @abstractmethod
    def _restore_state(self, state: Dict[str, object]) -> None:
        """Restore a snapshot produced by :meth:`_capture_state`."""

    @abstractmethod
    def _generate_day(self, day: int) -> Iterator[List[Transaction]]:
        """Yield one day of transactions as one or more ordered chunks."""

    # ------------------------------------------------------------------
    def events(self) -> Iterator[Transaction]:
        """Lazily yield every remaining transaction in stream order."""
        while self._day < self._num_days:
            if self._day_start_state is None:
                self._day_start_state = pickle.dumps(
                    self._capture_state(), protocol=pickle.HIGHEST_PROTOCOL
                )
            day = self._day
            skip = self._offset
            emitted = 0
            for chunk in self._generate_day(day):
                for txn in chunk:
                    emitted += 1
                    if emitted <= skip:
                        continue
                    self._offset = emitted
                    self._events_emitted += 1
                    yield txn
            self._day += 1
            self._offset = 0
            self._day_start_state = None

    def __iter__(self) -> Iterator[Transaction]:
        return self.events()

    def batches(self, batch_size: int) -> Iterator[List[Transaction]]:
        """Yield the remaining events re-grouped into ``batch_size`` lists."""
        if batch_size < 1:
            raise DataGenerationError("batch_size must be >= 1")
        batch: List[Transaction] = []
        for txn in self.events():
            batch.append(txn)
            if len(batch) >= batch_size:
                yield batch
                batch = []
        if batch:
            yield batch

    # ------------------------------------------------------------------
    def checkpoint(self) -> StreamCheckpoint:
        """Capture the current position as a resumable checkpoint."""
        if self._day_start_state is None:
            self._day_start_state = pickle.dumps(
                self._capture_state(), protocol=pickle.HIGHEST_PROTOCOL
            )
        return StreamCheckpoint(
            day=self._day,
            offset=self._offset,
            events_emitted=self._events_emitted,
            state=self._day_start_state,
        )

    def seek(self, checkpoint: StreamCheckpoint) -> None:
        """Position this stream at ``checkpoint``.

        The stream must have been constructed from the same configuration and
        seed that produced the checkpoint; generation then continues exactly
        where the checkpointed stream left off (the current day is silently
        regenerated and its first ``offset`` events skipped).
        """
        self._restore_state(pickle.loads(checkpoint.state))
        self._day = checkpoint.day
        self._offset = checkpoint.offset
        self._events_emitted = checkpoint.events_emitted
        self._day_start_state = checkpoint.state


class WorldStream(TransactionStream):
    """The legacy synthetic world as a stream (bit-identical at equal seed).

    Construction performs exactly the RNG fan-out the historical
    ``generate_world`` performed (profile / fraud / stream children of the
    master seed, in that order), and each day is generated by the same
    :class:`~repro.datagen.transactions._DailyStreamGenerator`, so draining
    this stream reproduces the old materialized output bit for bit.

    ``order="legacy"`` keeps the historical within-day shuffle; the stream is
    then day-ordered but not event-time ordered.  ``order="event"`` sorts each
    day by the canonical (event time, transaction id) key, making the whole
    stream event-time ordered for direct serving replay.
    """

    def __init__(
        self,
        config: WorldConfig | None = None,
        *,
        rng: SeedLike = None,
        order: str = "legacy",
    ) -> None:
        if order not in ("legacy", "event"):
            raise DataGenerationError(f"order must be 'legacy' or 'event', got {order!r}")
        self._config = config or WorldConfig()
        self._config.validate()
        master_rng = ensure_rng(self._config.seed if rng is None else rng)
        profile_rng = spawn_child(master_rng, salt=1)
        fraud_rng = spawn_child(master_rng, salt=2)
        stream_rng = spawn_child(master_rng, salt=3)
        self._profiles = ProfileGenerator(self._config.profile, rng=profile_rng).generate()
        self._fraud_model: FraudsterBehaviorModel | TypologyFraudSuite
        if self._config.typologies is not None:
            self._fraud_model = TypologyFraudSuite(
                self._profiles,
                self._config.fraud,
                self._config.typologies,
                rng=fraud_rng,
            )
        else:
            self._fraud_model = FraudsterBehaviorModel(
                self._profiles, self._config.fraud, rng=fraud_rng
            )
        self._generator = _DailyStreamGenerator(self._config, self._profiles, stream_rng)
        self._order = order
        super().__init__(self._config.num_days)

    # ------------------------------------------------------------------
    @property
    def config(self) -> WorldConfig:
        """The world configuration this stream was built from."""
        return self._config

    @property
    def profiles(self) -> List[UserProfile]:
        """The full account population (small worlds only)."""
        return self._profiles

    @property
    def profiles_by_id(self) -> Dict[str, UserProfile]:
        """Profiles indexed by ``user_id``."""
        return profiles_by_id(self._profiles)

    @property
    def num_accounts(self) -> int:
        """Size of the generated user population."""
        return len(self._profiles)

    @property
    def event_time_ordered(self) -> bool:
        """True in ``order="event"`` mode (days re-sorted by event time)."""
        return self._order == "event"

    def expected_events_per_day(self) -> float:
        """Expected normal-transaction volume per day (activity-weighted)."""
        total_activity = sum(p.activity_level for p in self._profiles)
        return self._config.transactions_per_user_per_day * total_activity

    def materialize(self) -> TransactionWorld:
        """Drain the stream into a :class:`TransactionWorld` (small worlds)."""
        return TransactionWorld(
            config=self._config,
            profiles=self._profiles,
            transactions=list(self.events()),
        )

    # ------------------------------------------------------------------
    def _capture_state(self) -> Dict[str, object]:
        return {
            "fraud": self._fraud_model.capture_state(),
            "generator": self._generator.capture_state(),
        }

    def _restore_state(self, state: Dict[str, object]) -> None:
        self._fraud_model.restore_state(state["fraud"])  # type: ignore[arg-type]
        self._generator.restore_state(state["generator"])  # type: ignore[arg-type]

    def _generate_day(self, day: int) -> Iterator[List[Transaction]]:
        planned = self._fraud_model.plan_day(day)
        records = self._generator.generate_day(day, planned)
        if self._order == "event":
            records = sorted(records, key=transaction_sort_key)
        yield records


class ScalableWorldStream(TransactionStream):
    """Million-account transaction stream with O(active-accounts) state.

    The population lives in a :class:`~repro.datagen.profiles.ColumnarAccounts`
    store, fraud campaigns are planned by
    :class:`~repro.datagen.fraud.ColumnarFraudPlanner`, and each day is
    generated hour by hour with vectorized numpy draws under the configured
    arrival process (``config.arrival`` or the default diurnal curve).  Memory
    never grows with the number of transactions: the largest live object is
    one hour-chunk of events.

    Events are emitted hour by hour with monotonically increasing transaction
    ids, so the stream is event-time ordered by construction.

    Intra-hour approximations versus the legacy per-event generator (all
    deterministic, all documented): recent-activity counters and device slots
    advance per hour-chunk rather than per event, and self-transfers resolve
    to the next account index instead of re-drawing.
    """

    def __init__(self, config: WorldConfig | None = None, *, rng: SeedLike = None) -> None:
        self._config = config or WorldConfig()
        self._config.validate()
        master_rng = ensure_rng(self._config.seed if rng is None else rng)
        self._accounts = ColumnarAccounts(self._config.profile, rng=spawn_child(master_rng, salt=1))
        self._planner: ColumnarFraudPlanner | ColumnarTypologySuite
        if self._config.typologies is not None:
            self._planner = ColumnarTypologySuite(
                self._accounts,
                self._config.fraud,
                self._config.typologies,
                rng=spawn_child(master_rng, salt=2),
            )
        else:
            self._planner = ColumnarFraudPlanner(
                self._accounts, self._config.fraud, rng=spawn_child(master_rng, salt=2)
            )
        self._rng = spawn_child(master_rng, salt=3)
        self._arrival = self._config.arrival or ArrivalConfig()
        n = self._accounts.num_accounts
        self._payer_count = np.zeros(n, dtype=np.float64)
        self._payer_amount = np.zeros(n, dtype=np.float64)
        self._payee_inbound = np.zeros(n, dtype=np.float64)
        self._device_slots = np.zeros(n, dtype=np.int32)
        self._txn_counter = 0
        super().__init__(self._config.num_days)

    # ------------------------------------------------------------------
    @property
    def config(self) -> WorldConfig:
        """The world configuration this stream was built from."""
        return self._config

    @property
    def accounts(self) -> ColumnarAccounts:
        """The columnar account population behind the stream."""
        return self._accounts

    @property
    def num_accounts(self) -> int:
        """Size of the columnar account population."""
        return self._accounts.num_accounts

    @property
    def event_time_ordered(self) -> bool:
        """Always True: hour-by-hour emission with monotone transaction ids."""
        return True

    def expected_events_per_day(self) -> float:
        """Expected normal-transaction volume per day (activity-weighted)."""
        return float(
            self._config.transactions_per_user_per_day * self._accounts.activity_level.sum()
        )

    # ------------------------------------------------------------------
    def _capture_state(self) -> Dict[str, object]:
        return {
            "rng_state": self._rng.bit_generator.state,
            "planner": self._planner.capture_state(),
            "payer_count": self._payer_count.copy(),
            "payer_amount": self._payer_amount.copy(),
            "payee_inbound": self._payee_inbound.copy(),
            "device_slots": self._device_slots.copy(),
            "txn_counter": self._txn_counter,
        }

    def _restore_state(self, state: Dict[str, object]) -> None:
        self._rng.bit_generator.state = state["rng_state"]
        self._planner.restore_state(state["planner"])  # type: ignore[arg-type]
        self._payer_count = np.array(state["payer_count"], dtype=np.float64, copy=True)
        self._payer_amount = np.array(state["payer_amount"], dtype=np.float64, copy=True)
        self._payee_inbound = np.array(state["payee_inbound"], dtype=np.float64, copy=True)
        self._device_slots = np.array(state["device_slots"], dtype=np.int32, copy=True)
        self._txn_counter = int(state["txn_counter"])  # type: ignore[arg-type]

    def _generate_day(self, day: int) -> Iterator[List[Transaction]]:
        planned = self._planner.plan_day(day)
        fraud_order = np.argsort(planned.hour, kind="stable")
        fraud_hours = planned.hour[fraud_order]
        multipliers = self._arrival.hour_multipliers(day)
        hourly_rate = self._config.transactions_per_user_per_day / 24.0
        for hour in range(24):
            lam = hourly_rate * multipliers[hour] * self._accounts.activity_level
            counts = self._rng.poisson(lam)
            payers = np.repeat(np.arange(self._accounts.num_accounts), counts)
            chunk = self._emit_normal(day, hour, payers)
            lo, hi = np.searchsorted(fraud_hours, [hour, hour + 1])
            if hi > lo:
                chunk.extend(self._emit_fraud(day, hour, planned, fraud_order[lo:hi]))
            if chunk:
                yield chunk
        self._decay()

    # ------------------------------------------------------------------
    def _next_ids(self, count: int) -> List[str]:
        start = self._txn_counter
        self._txn_counter += count
        return [f"t{start + i + 1:010d}" for i in range(count)]

    def _pick_payees(self, payers: np.ndarray) -> np.ndarray:
        acc = self._accounts
        cfg = self._config
        m = payers.size
        n = acc.num_accounts
        global_pick = self._rng.integers(0, n, size=m)
        communities = acc.community[payers]
        sizes = acc.community_offsets[communities + 1] - acc.community_offsets[communities]
        local = acc.community_offsets[communities] + np.floor(
            self._rng.random(m) * np.maximum(sizes, 1)
        ).astype(np.int64)
        intra_pick = acc.community_members[np.minimum(local, n - 1)]
        use_intra = (self._rng.random(m) < cfg.intra_community_probability) & (sizes > 0)
        payees = np.where(use_intra, intra_pick, global_pick)
        if acc.merchant_index.size:
            merchant_pick = acc.merchant_index[
                self._rng.integers(0, acc.merchant_index.size, size=m)
            ]
            use_merchant = self._rng.random(m) < cfg.merchant_transfer_probability
            payees = np.where(use_merchant, merchant_pick, payees)
        # Deterministic self-transfer resolution (no re-draw loop at scale).
        self_mask = payees == payers
        if np.any(self_mask):
            payees = payees.copy()
            payees[self_mask] = (payees[self_mask] + 1) % n
        return payees

    def _device_draw(self, payers: np.ndarray, force_new: np.ndarray) -> tuple:
        """Vectorized analogue of the legacy per-payer device model."""
        acc = self._accounts
        m = payers.size
        known = self._device_slots[payers]
        new_device = force_new | (known == 0) | (self._rng.random(m) < 0.04)
        cap = np.maximum(np.minimum(known, acc.device_count[payers]), 1)
        existing_slot = 1 + np.floor(self._rng.random(m) * cap).astype(np.int64)
        slot = np.where(new_device, known + 1, existing_slot)
        is_new = new_device & ((known > 0) | force_new)
        # Chunk-level update: duplicate payers in one chunk share the slot.
        self._device_slots[payers[new_device]] = (known[new_device] + 1).astype(np.int32)
        return slot, is_new

    def _emit_normal(self, day: int, hour: int, payers: np.ndarray) -> List[Transaction]:
        m = payers.size
        if m == 0:
            return []
        acc = self._accounts
        cfg = self._config
        payees = self._pick_payees(payers)
        amounts = np.round(np.clip(self._rng.lognormal(4.4, 1.1, size=m), 0.5, 100_000.0), 2)
        channel_codes = self._rng.choice(4, size=m, p=[0.6, 0.15, 0.2, 0.05])
        use_home = self._rng.random(m) < 0.85
        cities = np.where(
            use_home, acc.home_city[payers], self._rng.integers(0, NUM_CITIES, size=m)
        )
        slot, is_new = self._device_draw(payers, np.zeros(m, dtype=bool))
        ip_risk = np.round(np.clip(self._rng.beta(1.2, 12.0, size=m), 0, 1), 4)
        bg_prob = cfg.background_fraud_rate * _CITY_TIER_MULTIPLIERS[cities]
        is_fraud = self._rng.random(m) < bg_prob
        delays = np.where(is_fraud, self._rng.integers(1, 8, size=m), 0)
        return self._build_transactions(
            day, hour, payers, payees, amounts, channel_codes, cities, slot, is_new,
            ip_risk, is_fraud, delays,
        )

    def _emit_fraud(
        self, day: int, hour: int, planned: PlannedFraudBatch, events: np.ndarray
    ) -> List[Transaction]:
        m = events.size
        acc = self._accounts
        victims = planned.victim_index[events]
        fraudsters = planned.fraudster_index[events]
        amounts = np.round(planned.amount[events], 2)
        channel_codes = self._rng.choice(4, size=m, p=[0.5, 0.3, 0.1, 0.1])
        high_risk = self._rng.random(m) < 0.6
        cities = np.where(
            high_risk,
            _HIGH_RISK_CITIES[self._rng.integers(0, _HIGH_RISK_CITIES.size, size=m)],
            acc.home_city[victims],
        )
        slot, is_new = self._device_draw(victims, self._rng.random(m) < 0.5)
        ip_risk = np.round(np.clip(self._rng.beta(4.0, 4.0, size=m), 0, 1), 4)
        typologies = None
        if planned.typology is not None:
            typologies = [typology_name(int(code)) for code in planned.typology[events]]
        return self._build_transactions(
            day, hour, victims, fraudsters, amounts, channel_codes, cities, slot, is_new,
            ip_risk, np.ones(m, dtype=bool), planned.report_delay_days[events],
            typologies=typologies,
        )

    def _build_transactions(
        self,
        day: int,
        hour: int,
        payers: np.ndarray,
        payees: np.ndarray,
        amounts: np.ndarray,
        channel_codes: np.ndarray,
        cities: np.ndarray,
        device_slots: np.ndarray,
        is_new_device: np.ndarray,
        ip_risk: np.ndarray,
        is_fraud: np.ndarray,
        report_delays: np.ndarray,
        typologies: Optional[List[str]] = None,
    ) -> List[Transaction]:
        # Recent-activity features use the chunk-start counter snapshot.
        recent_count = self._payer_count[payers].astype(np.int64)
        recent_amount = np.round(self._payer_amount[payers], 2)
        inbound = self._payee_inbound[payees].astype(np.int64)
        np.add.at(self._payer_count, payers, 1.0)
        np.add.at(self._payer_amount, payers, amounts)
        np.add.at(self._payee_inbound, payees, 1.0)
        ids = self._next_ids(payers.size)
        uid = self._accounts.user_id
        return [
            Transaction(
                transaction_id=ids[i],
                day=day,
                hour=hour,
                payer_id=uid(int(payers[i])),
                payee_id=uid(int(payees[i])),
                amount=float(amounts[i]),
                channel=_CHANNEL_VALUES[int(channel_codes[i])],
                trans_city=city_name(int(cities[i])),
                device_id=f"d_{uid(int(payers[i]))}_{int(device_slots[i])}",
                is_new_device=bool(is_new_device[i]),
                ip_risk_score=float(ip_risk[i]),
                payer_recent_txn_count=int(recent_count[i]),
                payer_recent_amount=float(recent_amount[i]),
                payee_recent_inbound_count=int(inbound[i]),
                is_fraud=bool(is_fraud[i]),
                label_available_day=day + (int(report_delays[i]) if is_fraud[i] else 0),
                fraud_typology=typologies[i] if typologies is not None else "",
            )
            for i in range(payers.size)
        ]

    def _decay(self, factor: float = 0.85) -> None:
        """End-of-day exponential decay, mirroring the legacy tracker."""
        self._payer_count = np.floor(self._payer_count * factor)
        self._payer_count[self._payer_count < 1] = 0.0
        self._payer_amount *= factor
        self._payer_amount[self._payer_amount < 1] = 0.0
        self._payee_inbound = np.floor(self._payee_inbound * factor)
        self._payee_inbound[self._payee_inbound < 1] = 0.0
