"""Daily transaction-stream generation.

:func:`generate_world` simulates a full horizon of days.  Each day contains

* normal transfers: payers choose payees mostly inside their own community
  (friends/family) or merchants (purchases), with day-time hours and modest
  amounts,
* fraudulent transfers scheduled by :class:`~repro.datagen.fraud.FraudsterBehaviorModel`:
  victims transferring to fraudster accounts with shifted amount/hour/context
  distributions and delayed labels.

The resulting :class:`TransactionWorld` is the single source of truth consumed
by the MaxCompute loading step, the transaction-network builder, the feature
layer and the T+1 dataset slicer.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datagen.fraud import FraudConfig, PlannedFraud, TypologyConfig
from repro.datagen.profiles import ProfileConfig, profiles_by_id
from repro.datagen.schema import (
    NUM_CITIES,
    Transaction,
    TransactionChannel,
    UserProfile,
    WorldSummary,
    city_name,
    city_tier,
    CITY_FRAUD_TIERS,
)
from repro.exceptions import DataGenerationError
from repro.rng import SeedLike, ensure_rng, spawn_child


#: Default diurnal intensity by hour of day (relative weights, later
#: normalized to mean 1).  Shape: a deep overnight trough, a morning ramp, a
#: lunchtime plateau and an evening peak — the canonical consumer-payments
#: load curve the sustained-load harness replays.
DIURNAL_HOURLY_WEIGHTS: Tuple[float, ...] = (
    0.20, 0.14, 0.10, 0.08, 0.10, 0.22,
    0.55, 0.95, 1.25, 1.40, 1.50, 1.65,
    1.75, 1.55, 1.40, 1.35, 1.40, 1.55,
    1.85, 2.05, 1.95, 1.55, 0.95, 0.50,
)


@dataclass
class BurstSpec:
    """A transient load burst: extra arrival intensity over a few hours.

    The burst multiplies the diurnal intensity by ``amplitude`` for
    ``duration_hours`` hours starting at ``start_hour`` on ``day`` — modelling
    promotions / flash sales whose traffic spikes the paper's serving fleet
    must absorb or shed.
    """

    day: int
    start_hour: int
    duration_hours: int = 2
    amplitude: float = 3.0

    def validate(self, *, num_days: int) -> None:
        """Validate structural bounds against a ``num_days`` horizon."""
        if not 0 <= self.day < num_days:
            raise DataGenerationError(
                f"burst day {self.day} outside the simulated horizon [0, {num_days})"
            )
        if not 0 <= self.start_hour < 24:
            raise DataGenerationError(f"burst start_hour must be in [0, 24), got {self.start_hour}")
        if self.duration_hours <= 0:
            raise DataGenerationError("burst duration_hours must be positive")
        if self.start_hour + self.duration_hours > 24:
            raise DataGenerationError("burst must end within its day (start_hour + duration <= 24)")
        if self.amplitude < 1.0:
            raise DataGenerationError("burst amplitude must be >= 1 (bursts add load)")


@dataclass
class ArrivalConfig:
    """Non-homogeneous arrival process: diurnal load curve + bursts.

    ``hourly_weights`` are 24 relative intensities normalized to mean 1, so
    the configured ``transactions_per_user_per_day`` stays the daily budget
    regardless of curve shape; bursts multiply specific hours on specific
    days.
    """

    hourly_weights: Sequence[float] = DIURNAL_HOURLY_WEIGHTS
    bursts: List[BurstSpec] = field(default_factory=list)

    def validate(self, *, num_days: int) -> None:
        """Validate the curve and every burst against the day's budget.

        A burst's *surplus* — the extra expected events it injects, as a
        fraction of the day's total budget — is ``(amplitude - 1) x (share of
        the diurnal curve inside the burst window)``.  Summed per day it must
        stay <= 1.0 (a day may at most double); anything larger would blow the
        transaction budget the rest of the pipeline (admission control, label
        delays) is calibrated against.
        """
        weights = np.asarray(self.hourly_weights, dtype=np.float64)
        if weights.shape != (24,):
            raise DataGenerationError("hourly_weights must contain exactly 24 values")
        if np.any(weights < 0) or not np.all(np.isfinite(weights)):
            raise DataGenerationError("hourly_weights must be finite and non-negative")
        if weights.sum() <= 0:
            raise DataGenerationError("hourly_weights must not be all zero")
        normalized = weights / weights.mean()
        surplus_by_day: Dict[int, float] = {}
        for burst in self.bursts:
            burst.validate(num_days=num_days)
            window = normalized[burst.start_hour : burst.start_hour + burst.duration_hours]
            share = float(window.sum()) / 24.0
            surplus_by_day[burst.day] = surplus_by_day.get(burst.day, 0.0) + (
                burst.amplitude - 1.0
            ) * share
        for day, surplus in surplus_by_day.items():
            if surplus > 1.0:
                raise DataGenerationError(
                    f"burst parameters on day {day} exceed the day's transaction "
                    f"budget: surplus load {surplus:.2f}x > 1.0x of the daily budget"
                )

    def hour_multipliers(self, day: int) -> np.ndarray:
        """Intensity multiplier for each hour of ``day`` (diurnal x bursts)."""
        weights = np.asarray(self.hourly_weights, dtype=np.float64)
        multipliers = weights / weights.mean()
        for burst in self.bursts:
            if burst.day == day:
                multipliers = multipliers.copy()
                multipliers[burst.start_hour : burst.start_hour + burst.duration_hours] *= (
                    burst.amplitude
                )
        return multipliers


@dataclass
class WorldConfig:
    """Configuration of a full synthetic transaction world.

    The defaults generate a laptop-scale world (a few hundred thousand
    transactions) whose statistical shape follows the paper's production data:
    the evaluation horizon is 90 days of network-building records, 14 days of
    training records and 7 consecutive test days (Figure 8).
    """

    profile: ProfileConfig = field(default_factory=ProfileConfig)
    fraud: FraudConfig = field(default_factory=FraudConfig)
    #: Total number of simulated days.  The paper's rolling evaluation needs
    #: 90 (network) + 14 (train) + 7 (test days) = 111.
    num_days: int = 111
    #: Mean number of normal transfers initiated per user per day.
    transactions_per_user_per_day: float = 0.35
    #: Probability that a normal transfer goes to a merchant account.
    merchant_transfer_probability: float = 0.45
    #: Probability that a normal transfer stays inside the payer's community.
    intra_community_probability: float = 0.8
    #: Additional background fraud rate applied to normal-looking transfers
    #: (mislabelled / noisy fraud not driven by campaign fraudsters).
    background_fraud_rate: float = 0.0005
    #: Optional non-homogeneous arrival process (diurnal curve + bursts) used
    #: by the scalable stream; ``None`` keeps the legacy uniform-day model.
    arrival: Optional[ArrivalConfig] = None
    #: Optional labeled fraud-typology suite; ``None`` keeps the legacy single
    #: gathering-campaign fraud model.  When set, fraudsters are partitioned
    #: across the enabled typologies and every campaign fraud carries its
    #: generating typology on ``Transaction.fraud_typology``.
    typologies: Optional[TypologyConfig] = None
    seed: Optional[int] = 7

    def validate(self) -> None:
        self.profile.validate()
        self.fraud.validate()
        if self.num_days <= 0:
            raise DataGenerationError("num_days must be positive")
        if self.transactions_per_user_per_day <= 0:
            raise DataGenerationError("transactions_per_user_per_day must be positive")
        for name in (
            "merchant_transfer_probability",
            "intra_community_probability",
            "background_fraud_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise DataGenerationError(f"{name} must be in [0, 1]")
        # Population structure: catch configurations that would previously
        # fail deep inside generation with an opaque error.
        num_users = self.profile.num_users
        if num_users < 2:
            raise DataGenerationError(
                "population must contain at least two users (num_users >= 2)"
            )
        num_fraudsters = min(int(round(num_users * self.profile.fraudster_fraction)), num_users)
        if num_fraudsters >= num_users:
            raise DataGenerationError(
                f"fraudster_fraction {self.profile.fraudster_fraction} leaves no "
                f"normal users in a population of {num_users}"
            )
        # Fraud budget: the campaign model must not schedule more frauds than
        # the day's expected normal transaction budget can plausibly carry.
        fraud = self.fraud
        if self.typologies is not None:
            self.typologies.validate()
            expected_frauds_per_day = self.typologies.expected_frauds_per_day(num_fraudsters)
        else:
            expected_frauds_per_day = num_fraudsters * (
                fraud.repeat_offender_fraction
                * fraud.active_day_probability
                * max(1.0, fraud.frauds_per_active_day)
                + (1.0 - fraud.repeat_offender_fraction) * 0.02
            )
        expected_normal_per_day = num_users * self.transactions_per_user_per_day
        if expected_frauds_per_day > expected_normal_per_day:
            raise DataGenerationError(
                f"fraud parameters exceed the day's transaction budget: "
                f"~{expected_frauds_per_day:.1f} planned frauds/day vs "
                f"~{expected_normal_per_day:.1f} expected normal transactions/day; "
                f"lower frauds_per_active_day/active_day_probability or raise "
                f"transactions_per_user_per_day"
            )
        if self.arrival is not None:
            self.arrival.validate(num_days=self.num_days)


@dataclass
class TransactionWorld:
    """A fully generated synthetic world."""

    config: WorldConfig
    profiles: List[UserProfile]
    transactions: List[Transaction]

    def __post_init__(self) -> None:
        self._profiles_by_id = profiles_by_id(self.profiles)

    # ------------------------------------------------------------------
    @property
    def profiles_by_id(self) -> Dict[str, UserProfile]:
        return self._profiles_by_id

    def transactions_in_days(self, start_day: int, end_day: int) -> List[Transaction]:
        """Transactions with ``start_day <= day < end_day``."""
        if start_day > end_day:
            raise DataGenerationError("start_day must not exceed end_day")
        return [t for t in self.transactions if start_day <= t.day < end_day]

    def labeled_transactions_in_days(
        self, start_day: int, end_day: int, *, as_of_day: Optional[int] = None
    ) -> List[Transaction]:
        """Transactions in the window whose labels are observable.

        ``as_of_day`` models the paper's delayed label collection: a fraud
        report filed after ``as_of_day`` has not yet reached the training
        pipeline, so its transaction is treated as (still) non-fraud.  When
        ``as_of_day`` is None, the ground-truth labels are returned.
        """
        window = self.transactions_in_days(start_day, end_day)
        if as_of_day is None:
            return window
        visible: List[Transaction] = []
        for txn in window:
            if txn.is_fraud and txn.label_available_day > as_of_day:
                adjusted = Transaction(**{**txn.to_row(), "channel": txn.channel, "is_fraud": False})
                visible.append(adjusted)
            else:
                visible.append(txn)
        return visible

    def summary(self) -> WorldSummary:
        """Aggregate statistics of the world."""
        fraudsters = [p for p in self.profiles if p.is_fraudster]
        fraud_txns = [t for t in self.transactions if t.is_fraud]
        frauds_by_fraudster: Dict[str, int] = {}
        for txn in fraud_txns:
            frauds_by_fraudster[txn.payee_id] = frauds_by_fraudster.get(txn.payee_id, 0) + 1
        active = [c for c in frauds_by_fraudster.values() if c > 0]
        repeat_fraction = (
            sum(1 for c in active if c > 1) / len(active) if active else 0.0
        )
        return WorldSummary(
            num_users=len(self.profiles),
            num_fraudsters=len(fraudsters),
            num_transactions=len(self.transactions),
            num_fraud_transactions=len(fraud_txns),
            days=self.config.num_days,
            fraud_rate=(len(fraud_txns) / len(self.transactions)) if self.transactions else 0.0,
            repeat_fraudster_fraction=repeat_fraction,
        )


class _ActivityTracker:
    """Rolling per-user activity counters feeding the recent-behaviour features."""

    def __init__(self) -> None:
        self.payer_counts: Dict[str, int] = {}
        self.payer_amounts: Dict[str, float] = {}
        self.payee_inbound: Dict[str, int] = {}

    def observe(self, payer: str, payee: str, amount: float) -> None:
        self.payer_counts[payer] = self.payer_counts.get(payer, 0) + 1
        self.payer_amounts[payer] = self.payer_amounts.get(payer, 0.0) + amount
        self.payee_inbound[payee] = self.payee_inbound.get(payee, 0) + 1

    def decay(self, factor: float = 0.85) -> None:
        """Apply exponential decay at the end of each day."""
        self.payer_counts = {k: int(v * factor) for k, v in self.payer_counts.items() if v * factor >= 1}
        self.payer_amounts = {k: v * factor for k, v in self.payer_amounts.items() if v * factor >= 1}
        self.payee_inbound = {k: int(v * factor) for k, v in self.payee_inbound.items() if v * factor >= 1}


def generate_world(config: WorldConfig | None = None, *, rng: SeedLike = None) -> TransactionWorld:
    """Generate a complete :class:`TransactionWorld`.

    Since the streaming refactor this is a thin materialized view: it drains a
    :class:`~repro.datagen.stream.WorldStream` (the same seeded generator the
    lazy path iterates) into memory, so the output is bit-identical to the
    pre-stream implementation at the same seed.  Large worlds should consume
    the stream directly instead of materializing.
    """
    from repro.datagen.stream import WorldStream  # local import: stream builds on us

    config = config or WorldConfig()
    return WorldStream(config, rng=rng).materialize()


class _DailyStreamGenerator:
    """Generates the transaction stream for one world (internal helper)."""

    def __init__(
        self,
        config: WorldConfig,
        profiles: Sequence[UserProfile],
        rng: np.random.Generator,
    ) -> None:
        self._config = config
        self._rng = rng
        self._profiles = list(profiles)
        self._profiles_by_id = profiles_by_id(self._profiles)
        self._merchants = [p for p in self._profiles if p.is_merchant]
        self._by_community: Dict[int, List[UserProfile]] = {}
        for profile in self._profiles:
            self._by_community.setdefault(profile.community, []).append(profile)
        self._activity = _ActivityTracker()
        self._txn_counter = 0
        self._device_counter: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def generate_day(self, day: int, planned_frauds: List[PlannedFraud]) -> List[Transaction]:
        """Generate all transactions of one day (normal + fraudulent)."""
        records: List[Transaction] = []
        activities = self._rng.poisson(
            self._config.transactions_per_user_per_day
            * np.array([p.activity_level for p in self._profiles])
        )
        for profile, count in zip(self._profiles, activities):
            for _ in range(int(count)):
                records.append(self._normal_transaction(day, profile))
        for fraud in planned_frauds:
            records.append(self._fraud_transaction(fraud))
        self._rng.shuffle(records)  # interleave within the day
        self._activity.decay()
        return records

    # ------------------------------------------------------------------
    def capture_state(self) -> Dict[str, object]:
        """Snapshot mutable generator state for stream checkpointing.

        O(active accounts): the activity tracker only retains accounts whose
        decayed counters are still >= 1, and the device counter only accounts
        that have transacted.
        """
        return {
            "rng_state": copy.deepcopy(self._rng.bit_generator.state),
            "payer_counts": dict(self._activity.payer_counts),
            "payer_amounts": dict(self._activity.payer_amounts),
            "payee_inbound": dict(self._activity.payee_inbound),
            "txn_counter": self._txn_counter,
            "device_counter": dict(self._device_counter),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Restore a snapshot previously produced by :meth:`capture_state`."""
        self._rng.bit_generator.state = copy.deepcopy(state["rng_state"])
        self._activity.payer_counts = dict(state["payer_counts"])  # type: ignore[arg-type]
        self._activity.payer_amounts = dict(state["payer_amounts"])  # type: ignore[arg-type]
        self._activity.payee_inbound = dict(state["payee_inbound"])  # type: ignore[arg-type]
        self._txn_counter = int(state["txn_counter"])  # type: ignore[arg-type]
        self._device_counter = dict(state["device_counter"])  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    def _next_id(self) -> str:
        self._txn_counter += 1
        return f"t{self._txn_counter:010d}"

    def _device_for(self, user_id: str, *, force_new: bool = False) -> tuple[str, bool]:
        """Return (device id, is_new_device) for a payer."""
        profile = self._profiles_by_id[user_id]
        known = self._device_counter.get(user_id, 0)
        new_device = force_new or known == 0 or self._rng.random() < 0.04
        if new_device:
            self._device_counter[user_id] = known + 1
            return f"d_{user_id}_{known + 1}", known > 0 or force_new
        slot = int(self._rng.integers(1, min(known, profile.device_count) + 1))
        return f"d_{user_id}_{slot}", False

    def _normal_transaction(self, day: int, payer: UserProfile) -> Transaction:
        payee = self._pick_normal_payee(payer)
        amount = float(np.clip(self._rng.lognormal(4.4, 1.1), 0.5, 100_000.0))
        hour = int(np.clip(self._rng.normal(14.0, 4.5), 0, 23))
        channel = TransactionChannel(
            self._rng.choice(
                [c.value for c in TransactionChannel], p=[0.6, 0.15, 0.2, 0.05]
            )
        )
        trans_city = payer.home_city if self._rng.random() < 0.85 else city_name(
            int(self._rng.integers(0, NUM_CITIES))
        )
        device_id, is_new_device = self._device_for(payer.user_id)
        ip_risk = float(np.clip(self._rng.beta(1.2, 12.0), 0, 1))
        is_fraud = self._rng.random() < self._background_fraud_probability(trans_city)
        return self._emit(
            day=day,
            hour=hour,
            payer=payer.user_id,
            payee=payee.user_id,
            amount=amount,
            channel=channel,
            trans_city=trans_city,
            device_id=device_id,
            is_new_device=is_new_device,
            ip_risk=ip_risk,
            is_fraud=is_fraud,
            report_delay=int(self._rng.integers(1, 8)) if is_fraud else 0,
        )

    def _fraud_transaction(self, fraud: PlannedFraud) -> Transaction:
        victim = self._profiles_by_id[fraud.victim_id]
        channel = TransactionChannel(
            self._rng.choice([c.value for c in TransactionChannel], p=[0.5, 0.3, 0.1, 0.1])
        )
        # Fraud skews toward high-risk transfer cities and fresh devices.
        if self._rng.random() < 0.6:
            high_risk = [c for c in range(NUM_CITIES) if city_tier(city_name(c)) == "tier_high"]
            trans_city = city_name(int(self._rng.choice(high_risk)))
        else:
            trans_city = victim.home_city
        device_id, is_new_device = self._device_for(
            victim.user_id, force_new=self._rng.random() < 0.5
        )
        ip_risk = float(np.clip(self._rng.beta(4.0, 4.0), 0, 1))
        return self._emit(
            day=fraud.day,
            hour=fraud.hour,
            payer=victim.user_id,
            payee=fraud.fraudster_id,
            amount=fraud.amount,
            channel=channel,
            trans_city=trans_city,
            device_id=device_id,
            is_new_device=is_new_device,
            ip_risk=ip_risk,
            is_fraud=True,
            report_delay=fraud.report_delay_days,
            typology=fraud.typology,
        )

    def _emit(
        self,
        *,
        day: int,
        hour: int,
        payer: str,
        payee: str,
        amount: float,
        channel: TransactionChannel,
        trans_city: str,
        device_id: str,
        is_new_device: bool,
        ip_risk: float,
        is_fraud: bool,
        report_delay: int,
        typology: str = "",
    ) -> Transaction:
        txn = Transaction(
            transaction_id=self._next_id(),
            day=day,
            hour=hour,
            payer_id=payer,
            payee_id=payee,
            amount=round(amount, 2),
            channel=channel,
            trans_city=trans_city,
            device_id=device_id,
            is_new_device=is_new_device,
            ip_risk_score=round(ip_risk, 4),
            payer_recent_txn_count=self._activity.payer_counts.get(payer, 0),
            payer_recent_amount=round(self._activity.payer_amounts.get(payer, 0.0), 2),
            payee_recent_inbound_count=self._activity.payee_inbound.get(payee, 0),
            is_fraud=is_fraud,
            label_available_day=day + (report_delay if is_fraud else 0),
            fraud_typology=typology,
        )
        self._activity.observe(payer, payee, amount)
        return txn

    def _pick_normal_payee(self, payer: UserProfile) -> UserProfile:
        cfg = self._config
        if self._merchants and self._rng.random() < cfg.merchant_transfer_probability:
            candidates = self._merchants
        elif self._rng.random() < cfg.intra_community_probability:
            candidates = self._by_community.get(payer.community, self._profiles)
        else:
            candidates = self._profiles
        payee = candidates[int(self._rng.integers(0, len(candidates)))]
        attempts = 0
        while payee.user_id == payer.user_id and attempts < 10:
            payee = self._profiles[int(self._rng.integers(0, len(self._profiles)))]
            attempts += 1
        if payee.user_id == payer.user_id:
            # Extremely small populations may need a deterministic fallback.
            for candidate in self._profiles:
                if candidate.user_id != payer.user_id:
                    return candidate
            raise DataGenerationError("population must contain at least two users")
        return payee

    def _background_fraud_probability(self, trans_city: str) -> float:
        tier = city_tier(trans_city)
        return self._config.background_fraud_rate * CITY_FRAUD_TIERS[tier]
