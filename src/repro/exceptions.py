"""Exception hierarchy for the repro (TitAnt reproduction) package.

Every subsystem raises exceptions rooted at :class:`ReproError` so that callers
can catch the whole family with one handler while still distinguishing the
failing layer (storage, compute, modelling, serving, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """Raised when a configuration object is internally inconsistent."""


class DataGenerationError(ReproError):
    """Raised when the synthetic transaction-world generator is misused."""


class FeatureError(ReproError):
    """Raised by the feature extraction layer."""


class NotFittedError(ReproError):
    """Raised when ``predict``/``transform`` is called before ``fit``."""


class ModelError(ReproError):
    """Raised by detection models for invalid inputs or states."""


class GraphError(ReproError):
    """Raised by the transaction-network layer."""


class EmbeddingError(ReproError):
    """Raised by the network representation learning layer."""


# ---------------------------------------------------------------------------
# Substrate errors
# ---------------------------------------------------------------------------


class StorageError(ReproError):
    """Base class for storage-substrate errors (MaxCompute tables, HBase)."""


class TableNotFoundError(StorageError):
    """Raised when a MaxCompute table or HBase table does not exist."""


class TableAlreadyExistsError(StorageError):
    """Raised when creating a table whose name is already taken."""


class SchemaError(StorageError):
    """Raised when rows do not match a table schema."""


class RowNotFoundError(StorageError):
    """Raised by point lookups that find no row."""


class SQLError(ReproError):
    """Base class for the mini SQL engine errors."""


class SQLParseError(SQLError):
    """Raised when a SQL statement cannot be parsed."""


class SQLPlanError(SQLError):
    """Raised when a parsed statement cannot be planned or executed."""


class JobError(ReproError):
    """Raised by the MaxCompute job scheduler (Fuxi/OTS simulation)."""


class JobNotFoundError(JobError):
    """Raised when an instance id is unknown to OTS."""


class ResourceExhaustedError(JobError):
    """Raised when the scheduler cannot satisfy a resource request."""


class ParameterServerError(ReproError):
    """Raised by the KunPeng parameter-server simulation."""


class WorkerFailureError(ParameterServerError):
    """Raised (or injected) to simulate a worker-node crash."""


class ServingError(ReproError):
    """Raised by the online Model Server / Alipay-server simulation."""


class ModelNotLoadedError(ServingError):
    """Raised when the Model Server is asked to score before a model exists."""


class LatencyBudgetExceededError(ServingError):
    """Raised when a prediction breaches the configured latency SLA."""
