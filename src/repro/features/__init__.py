"""Feature extraction layer.

The paper distinguishes two feature families:

* **basic features** — about fifty carefully engineered attributes from the
  user profile and the transfer environment (age, gender, transfer city,
  amount, hour, device, recent activity, ...), also usable as rules/attributes
  by the rule-based and anomaly-detection baselines,
* **aggregated features** — the user node embeddings learned from the
  transaction network, concatenated with the basic features.

This package implements the 52 basic features used throughout the
reproduction, discretisation utilities (LR and the rule-based trees work on
binned values), windowed transaction-aggregation features, and the
:class:`FeatureAssembler` that concatenates basic features with any number of
embedding sets to build the final design matrix.
"""

from repro.features.matrix import FeatureMatrix
from repro.features.basic import BasicFeatureExtractor, BASIC_FEATURE_NAMES
from repro.features.discretization import (
    EqualWidthBinner,
    QuantileBinner,
    Discretizer,
)
from repro.features.aggregation import (
    AGGREGATION_FEATURE_NAMES,
    AggregationConfig,
    AggregationWindowSpec,
    TransactionAggregator,
    aggregation_vector,
    transaction_event_time,
)
from repro.features.streaming import (
    STANDARD_WINDOWS,
    PointInTimeAggregationSource,
    SlidingWindowAggregator,
    WindowSpec,
)
from repro.features.plan import (
    EmbeddingBlockSpec,
    FeaturePlan,
    FeaturePlanExecutor,
    FeatureSource,
    InMemoryFeatureSource,
)
from repro.features.assembler import FeatureAssembler, EmbeddingSide

__all__ = [
    "EmbeddingBlockSpec",
    "FeaturePlan",
    "FeaturePlanExecutor",
    "FeatureSource",
    "InMemoryFeatureSource",
    "FeatureMatrix",
    "BasicFeatureExtractor",
    "BASIC_FEATURE_NAMES",
    "EqualWidthBinner",
    "QuantileBinner",
    "Discretizer",
    "TransactionAggregator",
    "AggregationConfig",
    "AggregationWindowSpec",
    "AGGREGATION_FEATURE_NAMES",
    "aggregation_vector",
    "transaction_event_time",
    "SlidingWindowAggregator",
    "PointInTimeAggregationSource",
    "WindowSpec",
    "STANDARD_WINDOWS",
    "FeatureAssembler",
    "EmbeddingSide",
]
