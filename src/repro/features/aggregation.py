"""Windowed transaction-aggregation features.

Transaction aggregation is one of the classical strategies the related-work
section discusses (Whitrow et al., Jha et al.): summarise each account's
recent history into per-user aggregates and attach them to every new
transaction.  TitAnt supersedes this with node embeddings, but we keep the
aggregation features as (a) an ablation baseline and (b) the source of the
HBase per-user rows the Model Server reads online.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.datagen.schema import Transaction
from repro.exceptions import FeatureError
from repro.features.matrix import FeatureMatrix

AGGREGATION_FEATURE_NAMES: List[str] = [
    "agg_payer_out_count",
    "agg_payer_out_amount_sum",
    "agg_payer_out_amount_mean",
    "agg_payer_out_amount_max",
    "agg_payer_distinct_payees",
    "agg_payer_night_fraction",
    "agg_payee_in_count",
    "agg_payee_in_amount_sum",
    "agg_payee_in_amount_mean",
    "agg_payee_in_amount_max",
    "agg_payee_distinct_payers",
    "agg_payee_new_payer_fraction",
]


@dataclass
class AggregationConfig:
    """Configuration of the aggregation window."""

    #: Length of the look-back window, in days, relative to the scoring day.
    window_days: int = 14

    def validate(self) -> None:
        if self.window_days <= 0:
            raise FeatureError("window_days must be positive")


@dataclass
class _UserAggregate:
    out_count: int = 0
    out_amount_sum: float = 0.0
    out_amount_max: float = 0.0
    out_night_count: int = 0
    in_count: int = 0
    in_amount_sum: float = 0.0
    in_amount_max: float = 0.0

    def __post_init__(self) -> None:
        self.payees: set[str] = set()
        self.payers: set[str] = set()


class TransactionAggregator:
    """Computes per-user aggregates from a history window and applies them."""

    def __init__(self, config: AggregationConfig | None = None):
        self.config = config or AggregationConfig()
        self.config.validate()
        self._aggregates: Dict[str, _UserAggregate] = {}
        self._fitted = False

    # ------------------------------------------------------------------
    @property
    def feature_names(self) -> List[str]:
        return list(AGGREGATION_FEATURE_NAMES)

    def fit(self, history: Sequence[Transaction], *, as_of_day: int | None = None) -> "TransactionAggregator":
        """Aggregate the history window ending at ``as_of_day`` (exclusive)."""
        if as_of_day is None:
            as_of_day = max((t.day for t in history), default=0) + 1
        start_day = as_of_day - self.config.window_days
        self._aggregates = {}
        for txn in history:
            if not start_day <= txn.day < as_of_day:
                continue
            payer = self._aggregates.setdefault(txn.payer_id, _UserAggregate())
            payee = self._aggregates.setdefault(txn.payee_id, _UserAggregate())
            payer.out_count += 1
            payer.out_amount_sum += txn.amount
            payer.out_amount_max = max(payer.out_amount_max, txn.amount)
            payer.payees.add(txn.payee_id)
            if txn.hour >= 22 or txn.hour < 6:
                payer.out_night_count += 1
            payee.in_count += 1
            payee.in_amount_sum += txn.amount
            payee.in_amount_max = max(payee.in_amount_max, txn.amount)
            payee.payers.add(txn.payer_id)
        self._fitted = True
        return self

    def user_row(self, user_id: str) -> Dict[str, float]:
        """Per-user aggregate row (what the pipeline uploads to Ali-HBase)."""
        aggregate = self._aggregates.get(user_id, _UserAggregate())
        out_mean = aggregate.out_amount_sum / aggregate.out_count if aggregate.out_count else 0.0
        in_mean = aggregate.in_amount_sum / aggregate.in_count if aggregate.in_count else 0.0
        night_fraction = (
            aggregate.out_night_count / aggregate.out_count if aggregate.out_count else 0.0
        )
        return {
            "out_count": float(aggregate.out_count),
            "out_amount_sum": aggregate.out_amount_sum,
            "out_amount_mean": out_mean,
            "out_amount_max": aggregate.out_amount_max,
            "distinct_payees": float(len(aggregate.payees)),
            "night_fraction": night_fraction,
            "in_count": float(aggregate.in_count),
            "in_amount_sum": aggregate.in_amount_sum,
            "in_amount_mean": in_mean,
            "in_amount_max": aggregate.in_amount_max,
            "distinct_payers": float(len(aggregate.payers)),
        }

    def transform(self, transactions: Sequence[Transaction]) -> FeatureMatrix:
        """Aggregation feature matrix for a batch of transactions."""
        if not self._fitted:
            raise FeatureError("TransactionAggregator must be fitted before transform")
        rows = np.zeros((len(transactions), len(AGGREGATION_FEATURE_NAMES)))
        for index, txn in enumerate(transactions):
            payer = self._aggregates.get(txn.payer_id, _UserAggregate())
            payee = self._aggregates.get(txn.payee_id, _UserAggregate())
            payer_mean = payer.out_amount_sum / payer.out_count if payer.out_count else 0.0
            payee_mean = payee.in_amount_sum / payee.in_count if payee.in_count else 0.0
            night_fraction = (
                payer.out_night_count / payer.out_count if payer.out_count else 0.0
            )
            new_payer_fraction = (
                1.0 if txn.payer_id not in payee.payers else 0.0
            )
            rows[index] = [
                payer.out_count,
                payer.out_amount_sum,
                payer_mean,
                payer.out_amount_max,
                len(payer.payees),
                night_fraction,
                payee.in_count,
                payee.in_amount_sum,
                payee_mean,
                payee.in_amount_max,
                len(payee.payers),
                new_payer_fraction,
            ]
        return FeatureMatrix(
            feature_names=self.feature_names,
            values=rows,
            row_ids=[t.transaction_id for t in transactions],
            labels=np.array([float(t.is_fraud) for t in transactions]),
        )
