"""Windowed transaction-aggregation features.

Transaction aggregation is one of the classical strategies the related-work
section discusses (Whitrow et al., Jha et al.): summarise each account's
recent history into per-user aggregates and attach them to every new
transaction.  TitAnt supersedes this with node embeddings, but we keep the
aggregation features as (a) an ablation baseline and (b) the source of the
per-user rows in the ``transaction_aggregates`` Ali-HBase column family that
the Model Server reads online.

This module holds the *batch* path (fit a look-back window once, apply it to
a scoring batch) plus the pieces shared with the *streaming* path in
:mod:`repro.features.streaming`:

* :func:`transaction_event_time` — the canonical event-time mapping,
* :class:`AggregationWindowSpec` — the serialisable window definition a
  :class:`~repro.features.plan.FeaturePlan` exports alongside a model,
* :func:`aggregation_vector` — the one place that turns a payer row and a
  payee row into the :data:`AGGREGATION_FEATURE_NAMES` vector.

Window semantics are event-time and left-open/right-closed: an event at time
``t`` is inside the window ending at ``as_of`` iff ``as_of - W < t <= as_of``.
The legacy day-based API (``fit(..., as_of_day=d)``) maps onto the same rule
with ``as_of = d * SECONDS_PER_DAY - 1`` and is bit-compatible with the
historical ``start_day <= txn.day < as_of_day`` filter.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.datagen.schema import Transaction
from repro.exceptions import FeatureError
from repro.features.matrix import FeatureMatrix

SECONDS_PER_DAY = 86_400
SECONDS_PER_HOUR = 3_600

AGGREGATION_FEATURE_NAMES: List[str] = [
    "agg_payer_out_count",
    "agg_payer_out_amount_sum",
    "agg_payer_out_amount_mean",
    "agg_payer_out_amount_max",
    "agg_payer_distinct_payees",
    "agg_payer_night_fraction",
    "agg_payee_in_count",
    "agg_payee_in_amount_sum",
    "agg_payee_in_amount_mean",
    "agg_payee_in_amount_max",
    "agg_payee_distinct_payers",
    "agg_payee_new_payer_fraction",
]

#: Scalar qualifiers of a per-user aggregate row (HBase ``transaction_aggregates``
#: family).  The row additionally carries a ``payers`` set cell (the in-window
#: payer ids of the account) so the serving path can compute
#: ``agg_payee_new_payer_fraction`` without a second lookup.
AGGREGATE_ROW_FIELDS: List[str] = [
    "out_count",
    "out_amount_sum",
    "out_amount_mean",
    "out_amount_max",
    "distinct_payees",
    "night_fraction",
    "in_count",
    "in_amount_sum",
    "in_amount_mean",
    "in_amount_max",
    "distinct_payers",
]


def transaction_event_time(txn: Transaction) -> int:
    """Event time of a transaction in seconds (the schema is hour-granular)."""
    return txn.day * SECONDS_PER_DAY + txn.hour * SECONDS_PER_HOUR


def is_night_hour(hour: int) -> bool:
    """The night-activity definition shared by batch and streaming paths."""
    return hour >= 22 or hour < 6


def _require_positive_finite(name: str, value: float) -> float:
    value = float(value)
    if math.isnan(value) or math.isinf(value) or value <= 0.0:
        raise FeatureError(f"{name} must be a positive finite number, got {value!r}")
    return value


def _require_bucket_divides_event_granularity(bucket_seconds: float) -> float:
    """Buckets must divide the schema's hour-granular event times so every
    bucket holds a single timestamp and window membership stays exact."""
    bucket_seconds = _require_positive_finite("bucket_seconds", bucket_seconds)
    if math.fmod(SECONDS_PER_HOUR, bucket_seconds) != 0.0:
        raise FeatureError(
            f"bucket_seconds must divide {SECONDS_PER_HOUR} (the schema's "
            f"event-time granularity) so streaming buckets hold a single "
            f"timestamp and windows stay exact; got {bucket_seconds!r}"
        )
    return bucket_seconds


def build_aggregate_row(
    *,
    out_count: int,
    out_amount_sum: float,
    out_amount_max: float,
    out_night_count: int,
    num_payees: int,
    in_count: int,
    in_amount_sum: float,
    in_amount_max: float,
    num_payers: int,
) -> Dict[str, float]:
    """The canonical per-user aggregate row (:data:`AGGREGATE_ROW_FIELDS`).

    Both the batch and the streaming engines build their rows through this
    one function, so the derived-field conventions (zero-count means and
    night fractions are 0.0) cannot drift between the two paths.
    """
    return {
        "out_count": float(out_count),
        "out_amount_sum": out_amount_sum,
        "out_amount_mean": out_amount_sum / out_count if out_count else 0.0,
        "out_amount_max": out_amount_max,
        "distinct_payees": float(num_payees),
        "night_fraction": out_night_count / out_count if out_count else 0.0,
        "in_count": float(in_count),
        "in_amount_sum": in_amount_sum,
        "in_amount_mean": in_amount_sum / in_count if in_count else 0.0,
        "in_amount_max": in_amount_max,
        "distinct_payers": float(num_payers),
    }


def aggregation_vector(
    payer_row: Mapping[str, object],
    payee_row: Mapping[str, object],
    payer_id: str,
) -> List[float]:
    """The 12-column :data:`AGGREGATION_FEATURE_NAMES` vector for one transaction.

    ``payer_row`` supplies the out-going side, ``payee_row`` the in-coming side;
    missing fields degrade to the cold-account zeros, and an unseen payee makes
    the payer a "new payer" (fraction 1.0) exactly as the batch path does.
    Every producer of aggregation features (batch transform, streaming engine,
    plan executor over HBase rows) goes through this one function so the three
    paths cannot drift.
    """
    known_payers = payee_row.get("payers", ())
    return [
        float(payer_row.get("out_count", 0.0)),
        float(payer_row.get("out_amount_sum", 0.0)),
        float(payer_row.get("out_amount_mean", 0.0)),
        float(payer_row.get("out_amount_max", 0.0)),
        float(payer_row.get("distinct_payees", 0.0)),
        float(payer_row.get("night_fraction", 0.0)),
        float(payee_row.get("in_count", 0.0)),
        float(payee_row.get("in_amount_sum", 0.0)),
        float(payee_row.get("in_amount_mean", 0.0)),
        float(payee_row.get("in_amount_max", 0.0)),
        float(payee_row.get("distinct_payers", 0.0)),
        0.0 if payer_id in known_payers else 1.0,
    ]


@dataclass
class AggregationConfig:
    """Configuration of the aggregation look-back window.

    Exactly one of ``window_days`` / ``window_seconds`` may be set; with
    neither set the window defaults to 14 days.  ``window_seconds`` admits
    sub-day windows (e.g. ``3600`` for one hour), which the day-granular
    legacy field cannot express.
    """

    #: Length of the look-back window in days (legacy granularity).
    window_days: Optional[float] = None
    #: Length of the look-back window in seconds (takes any positive value).
    window_seconds: Optional[float] = None

    DEFAULT_WINDOW_DAYS = 14

    def validate(self) -> None:
        if self.window_days is not None and self.window_seconds is not None:
            raise FeatureError("set window_days or window_seconds, not both")
        if self.window_days is not None:
            _require_positive_finite("window_days", self.window_days)
        if self.window_seconds is not None:
            _require_positive_finite("window_seconds", self.window_seconds)

    @property
    def effective_window_seconds(self) -> float:
        """The configured window length, resolved to seconds."""
        if self.window_seconds is not None:
            return float(self.window_seconds)
        days = self.DEFAULT_WINDOW_DAYS if self.window_days is None else self.window_days
        return float(days) * SECONDS_PER_DAY


@dataclass(frozen=True)
class AggregationWindowSpec:
    """Serialisable window definition shared by offline and online worlds.

    The trainer exports this spec inside the :class:`FeaturePlan`; the online
    side configures its :class:`~repro.features.streaming.SlidingWindowAggregator`
    from the very same object, so there is exactly one windowing definition.
    """

    window_seconds: float = float(14 * SECONDS_PER_DAY)
    bucket_seconds: float = float(SECONDS_PER_HOUR)

    def __post_init__(self) -> None:
        _require_positive_finite("window_seconds", self.window_seconds)
        _require_bucket_divides_event_granularity(self.bucket_seconds)

    @classmethod
    def from_config(
        cls, config: AggregationConfig, *, bucket_seconds: float = float(SECONDS_PER_HOUR)
    ) -> "AggregationWindowSpec":
        config.validate()
        return cls(
            window_seconds=config.effective_window_seconds, bucket_seconds=bucket_seconds
        )

    def to_config(self) -> AggregationConfig:
        return AggregationConfig(window_seconds=self.window_seconds)

    def to_dict(self) -> Dict[str, float]:
        return {
            "window_seconds": float(self.window_seconds),
            "bucket_seconds": float(self.bucket_seconds),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "AggregationWindowSpec":
        return cls(
            window_seconds=float(data["window_seconds"]),
            bucket_seconds=float(data.get("bucket_seconds", SECONDS_PER_HOUR)),
        )


class PointInTimeAggregateProvider(abc.ABC):
    """Explicit capability marker: providers that compute *per-transaction*
    point-in-time aggregation blocks (each row as of the instant before its
    transaction) instead of serving per-user rows.  The plan executor
    dispatches on this base class, so a provider opts into block semantics
    deliberately — a coincidental ``aggregation_block`` attribute on a
    row-serving provider cannot silently change feature values.
    """

    @abc.abstractmethod
    def aggregation_block(self, transactions: Sequence[Transaction]) -> np.ndarray:
        """(len(transactions), 12) point-in-time aggregation feature block."""


@dataclass
class _UserAggregate:
    out_count: int = 0
    out_amount_sum: float = 0.0
    out_amount_max: float = 0.0
    out_night_count: int = 0
    in_count: int = 0
    in_amount_sum: float = 0.0
    in_amount_max: float = 0.0

    def __post_init__(self) -> None:
        self.payees: set[str] = set()
        self.payers: set[str] = set()


class TransactionAggregator:
    """Computes per-user aggregates from a history window and applies them."""

    def __init__(self, config: AggregationConfig | None = None):
        self.config = config or AggregationConfig()
        self.config.validate()
        self._aggregates: Dict[str, _UserAggregate] = {}
        self._fitted = False
        self._as_of_time: Optional[float] = None
        #: Scan accounting of the last ``fit(engine="sql")`` (None for the loop).
        self.last_backfill_stats = None

    # ------------------------------------------------------------------
    @property
    def feature_names(self) -> List[str]:
        return list(AGGREGATION_FEATURE_NAMES)

    @property
    def window_spec(self) -> AggregationWindowSpec:
        return AggregationWindowSpec.from_config(self.config)

    @property
    def as_of_time(self) -> Optional[float]:
        """The right edge (inclusive, seconds) of the last fitted window."""
        return self._as_of_time

    def fit(
        self,
        history: Sequence[Transaction],
        *,
        as_of_day: Optional[int] = None,
        as_of_time: Optional[float] = None,
        engine: str = "loop",
    ) -> "TransactionAggregator":
        """Aggregate the window ending at ``as_of_day`` (exclusive) or
        ``as_of_time`` (inclusive, seconds).

        The window is event-time and left-open/right-closed: a transaction at
        time ``t`` counts iff ``as_of_time - W < t <= as_of_time``.  The
        day-based form ``as_of_day=d`` is shorthand for
        ``as_of_time = d * SECONDS_PER_DAY - 1`` and reproduces the historical
        ``start_day <= txn.day < as_of_day`` behaviour exactly.

        ``engine="loop"`` is the in-process per-transaction fold;
        ``engine="sql"`` pushes the same computation through the MaxCompute
        substrate as windowed SQL over a day-partitioned staging table
        (:class:`~repro.features.sql_backfill.SQLBackfillEngine`), leaving
        its scan accounting in :attr:`last_backfill_stats`.  Both engines
        produce the same aggregate state.
        """
        if as_of_day is not None and as_of_time is not None:
            raise FeatureError("pass as_of_day or as_of_time, not both")
        if as_of_time is None:
            if as_of_day is None:
                as_of_day = max((t.day for t in history), default=0) + 1
            as_of_time = as_of_day * SECONDS_PER_DAY - 1
        if engine == "sql":
            # Imported here: the SQL engine lives on the MaxCompute side and
            # itself imports this module's aggregate state.
            from repro.features.sql_backfill import SQLBackfillEngine

            sql_engine = SQLBackfillEngine(self.config)
            self._aggregates = sql_engine.backfill(history, as_of_time=as_of_time)
            self.last_backfill_stats = sql_engine.last_stats
            self._fitted = True
            self._as_of_time = float(as_of_time)
            return self
        if engine != "loop":
            raise FeatureError(f"unknown backfill engine {engine!r}")
        window_start = as_of_time - self.config.effective_window_seconds
        self._aggregates = {}
        self.last_backfill_stats = None
        for txn in history:
            event_time = transaction_event_time(txn)
            if not window_start < event_time <= as_of_time:
                continue
            payer = self._aggregates.setdefault(txn.payer_id, _UserAggregate())
            payee = self._aggregates.setdefault(txn.payee_id, _UserAggregate())
            payer.out_count += 1
            payer.out_amount_sum += txn.amount
            payer.out_amount_max = max(payer.out_amount_max, txn.amount)
            payer.payees.add(txn.payee_id)
            if is_night_hour(txn.hour):
                payer.out_night_count += 1
            payee.in_count += 1
            payee.in_amount_sum += txn.amount
            payee.in_amount_max = max(payee.in_amount_max, txn.amount)
            payee.payers.add(txn.payer_id)
        self._fitted = True
        self._as_of_time = float(as_of_time)
        return self

    def account_ids(self) -> List[str]:
        """Accounts with at least one in-window transaction (sorted)."""
        return sorted(self._aggregates)

    def user_row(self, user_id: str) -> Dict[str, float]:
        """Per-user aggregate row (what the pipeline uploads to Ali-HBase)."""
        if not self._fitted:
            # Serving all-zero rows for an unfitted window would silently
            # train models on cold aggregates — the exact train/serve skew
            # this layer exists to prevent.
            raise FeatureError("TransactionAggregator must be fitted before user_row")
        aggregate = self._aggregates.get(user_id, _UserAggregate())
        return build_aggregate_row(
            out_count=aggregate.out_count,
            out_amount_sum=aggregate.out_amount_sum,
            out_amount_max=aggregate.out_amount_max,
            out_night_count=aggregate.out_night_count,
            num_payees=len(aggregate.payees),
            in_count=aggregate.in_count,
            in_amount_sum=aggregate.in_amount_sum,
            in_amount_max=aggregate.in_amount_max,
            num_payers=len(aggregate.payers),
        )

    def hbase_row(self, user_id: str) -> Dict[str, object]:
        """The serialised aggregate row: scalar fields plus the ``payers`` cell
        (a frozenset — order-free equality and O(1) membership for the
        new-payer check, even for hot merchants with huge payer sets)."""
        row: Dict[str, object] = dict(self.user_row(user_id))
        aggregate = self._aggregates.get(user_id, _UserAggregate())
        row["payers"] = frozenset(aggregate.payers)
        return row

    def snapshot_rows(self) -> Dict[str, Dict[str, object]]:
        """``user_id -> hbase_row`` for every account with in-window activity."""
        return {user_id: self.hbase_row(user_id) for user_id in self.account_ids()}

    def transform(self, transactions: Sequence[Transaction]) -> FeatureMatrix:
        """Aggregation feature matrix for a batch of transactions."""
        if not self._fitted:
            raise FeatureError("TransactionAggregator must be fitted before transform")
        rows = np.zeros((len(transactions), len(AGGREGATION_FEATURE_NAMES)))
        # Rows are memoized per unique user, and the payee row carries the raw
        # payer *set* (aggregation_vector only needs membership) — a hot
        # merchant payee costs O(1) per transaction, not O(payers log payers).
        empty: Dict[str, object] = {}
        row_cache: Dict[str, Dict[str, object]] = {}

        def row_for(user_id: str) -> Dict[str, object]:
            row = row_cache.get(user_id)
            if row is None:
                aggregate = self._aggregates.get(user_id)
                if aggregate is None:
                    row = empty
                else:
                    row = dict(self.user_row(user_id))
                    row["payers"] = aggregate.payers
                row_cache[user_id] = row
            return row

        for index, txn in enumerate(transactions):
            rows[index] = aggregation_vector(
                row_for(txn.payer_id), row_for(txn.payee_id), txn.payer_id
            )
        return FeatureMatrix(
            feature_names=self.feature_names,
            values=rows,
            row_ids=[t.transaction_id for t in transactions],
            labels=np.array([float(t.is_fraud) for t in transactions]),
        )
