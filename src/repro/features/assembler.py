"""Feature assembly: basic features + user node embeddings.

Section 3.3 of the paper: "Basic features and aggregated features are then
concatenated together."  The aggregated features are the user node embeddings
learned from the transaction network.  For a transaction the embeddings of
both endpoints matter — the payer (potential victim) and the payee (potential
fraudster, the node the "gathering" structure concentrates on) — so the
assembler supports attaching either side or both.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.datagen.schema import Transaction, UserProfile
from repro.exceptions import FeatureError
from repro.features.basic import BasicFeatureExtractor
from repro.features.matrix import FeatureMatrix
from repro.nrl.embeddings import EmbeddingSet


class EmbeddingSide(str, Enum):
    """Which transaction endpoint's embedding to attach."""

    PAYER = "payer"
    PAYEE = "payee"
    BOTH = "both"


class FeatureAssembler:
    """Builds the final design matrix for the detection models.

    Parameters
    ----------
    profiles:
        ``user_id -> UserProfile`` used by the basic-feature extractor.
    embedding_sets:
        Ordered mapping of name → :class:`EmbeddingSet` to concatenate after
        the basic features (e.g. ``{"dw": deepwalk_embeddings}`` or
        ``{"dw": ..., "s2v": ...}`` for the paper's combined configuration).
        An empty mapping reproduces the "Basic Features" rows of Table 1.
    embedding_side:
        Which endpoint's embedding to use; ``BOTH`` concatenates payer then
        payee vectors for every embedding set.
    """

    def __init__(
        self,
        profiles: Dict[str, UserProfile],
        embedding_sets: Optional[Dict[str, EmbeddingSet]] = None,
        *,
        embedding_side: EmbeddingSide = EmbeddingSide.BOTH,
    ) -> None:
        self._extractor = BasicFeatureExtractor(profiles)
        self._embedding_sets = dict(embedding_sets or {})
        self._side = EmbeddingSide(embedding_side)

    # ------------------------------------------------------------------
    @property
    def feature_names(self) -> List[str]:
        names = list(self._extractor.feature_names)
        for set_name, embeddings in self._embedding_sets.items():
            names.extend(self._embedding_feature_names(set_name, embeddings))
        return names

    def _embedding_feature_names(self, set_name: str, embeddings: EmbeddingSet) -> List[str]:
        sides: List[str]
        if self._side is EmbeddingSide.BOTH:
            sides = ["payer", "payee"]
        else:
            sides = [self._side.value]
        return [
            f"{set_name}_{side}_{dim}"
            for side in sides
            for dim in range(embeddings.dimension)
        ]

    # ------------------------------------------------------------------
    def assemble(
        self,
        transactions: Sequence[Transaction],
        *,
        with_labels: bool = True,
    ) -> FeatureMatrix:
        """Basic features concatenated with the configured embeddings."""
        matrix = self._extractor.extract(transactions, with_labels=with_labels)
        for set_name, embeddings in self._embedding_sets.items():
            block = self._embedding_block(set_name, embeddings, transactions)
            matrix = matrix.hstack(block)
        return matrix

    def assemble_single(self, transaction: Transaction) -> np.ndarray:
        """Feature vector for one transaction (the online scoring path)."""
        matrix = self.assemble([transaction], with_labels=False)
        return matrix.values[0]

    # ------------------------------------------------------------------
    def _embedding_block(
        self,
        set_name: str,
        embeddings: EmbeddingSet,
        transactions: Sequence[Transaction],
    ) -> FeatureMatrix:
        payers = [t.payer_id for t in transactions]
        payees = [t.payee_id for t in transactions]
        if self._side is EmbeddingSide.PAYER:
            values = embeddings.lookup(payers)
        elif self._side is EmbeddingSide.PAYEE:
            values = embeddings.lookup(payees)
        elif self._side is EmbeddingSide.BOTH:
            values = np.hstack([embeddings.lookup(payers), embeddings.lookup(payees)])
        else:  # pragma: no cover - defensive
            raise FeatureError(f"unknown embedding side {self._side}")
        return FeatureMatrix(
            feature_names=self._embedding_feature_names(set_name, embeddings),
            values=values,
        )
