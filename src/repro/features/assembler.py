"""Feature assembly: basic features + user node embeddings.

Section 3.3 of the paper: "Basic features and aggregated features are then
concatenated together."  The aggregated features are the user node embeddings
learned from the transaction network.  For a transaction the embeddings of
both endpoints matter — the payer (potential victim) and the payee (potential
fraudster, the node the "gathering" structure concentrates on) — so the
assembler supports attaching either side or both.

The assembler is a thin offline-facing wrapper around the shared
:class:`~repro.features.plan.FeaturePlanExecutor`: it derives the
:class:`~repro.features.plan.FeaturePlan` from the trained embedding sets and
executes it against an in-memory source.  The online Model Server executes
the *same* plan against Ali-HBase, so the two paths cannot drift.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.datagen.schema import Transaction, UserProfile
from repro.features.matrix import FeatureMatrix
from repro.features.plan import (
    FeaturePlan,
    FeaturePlanExecutor,
    InMemoryFeatureSource,
)
from repro.nrl.embeddings import EmbeddingSet


class EmbeddingSide(str, Enum):
    """Which transaction endpoint's embedding to attach."""

    PAYER = "payer"
    PAYEE = "payee"
    BOTH = "both"


class FeatureAssembler:
    """Builds the final design matrix for the detection models.

    Parameters
    ----------
    profiles:
        ``user_id -> UserProfile`` used by the basic-feature extractor.
    embedding_sets:
        Ordered mapping of name → :class:`EmbeddingSet` to concatenate after
        the basic features (e.g. ``{"dw": deepwalk_embeddings}`` or
        ``{"dw": ..., "s2v": ...}`` for the paper's combined configuration).
        An empty mapping reproduces the "Basic Features" rows of Table 1.
    embedding_side:
        Which endpoint's embedding to use; ``BOTH`` concatenates payer then
        payee vectors for every embedding set.
    aggregator:
        Optional sliding-window aggregate provider — a fitted
        :class:`~repro.features.aggregation.TransactionAggregator` or a
        :class:`~repro.features.streaming.SlidingWindowAggregator`.  When
        given, the plan carries the provider's
        :class:`~repro.features.aggregation.AggregationWindowSpec` and the
        design matrix gains the 12 aggregation features between the basic
        block and the embeddings, exactly as the online path assembles them.
    """

    def __init__(
        self,
        profiles: Dict[str, UserProfile],
        embedding_sets: Optional[Dict[str, EmbeddingSet]] = None,
        *,
        embedding_side: EmbeddingSide = EmbeddingSide.BOTH,
        aggregator: Optional[object] = None,
    ) -> None:
        self._side = EmbeddingSide(embedding_side)
        self._plan = FeaturePlan.from_embedding_sets(
            embedding_sets or {},
            embedding_side=self._side.value,
            aggregation=aggregator.window_spec if aggregator is not None else None,
        )
        self._executor = FeaturePlanExecutor(
            self._plan,
            InMemoryFeatureSource(profiles, embedding_sets, aggregates=aggregator),
        )

    # ------------------------------------------------------------------
    @property
    def plan(self) -> FeaturePlan:
        """The serialisable feature spec exported alongside trained models."""
        return self._plan

    @property
    def feature_names(self) -> List[str]:
        return self._plan.feature_names

    # ------------------------------------------------------------------
    def assemble(
        self,
        transactions: Sequence[Transaction],
        *,
        with_labels: bool = True,
    ) -> FeatureMatrix:
        """Basic features concatenated with the configured embeddings."""
        return self._executor.assemble(transactions, with_labels=with_labels)

    def assemble_single(self, transaction: Transaction) -> np.ndarray:
        """Feature vector for one transaction (the online scoring path)."""
        return self._executor.assemble_single(transaction)
