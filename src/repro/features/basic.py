"""The 52 basic features.

The paper reports "a total of 52 basic features carefully extracted" from the
user profile and the transfer environment (Figure 1a names age, gender and
trans_city explicitly).  We reproduce a 52-column feature vector per
transaction drawn from the same sources:

* payer profile (age, gender one-hot, account age, KYC level, merchant flag,
  device count, home-city risk tier, home-city bucket),
* payee profile (the same ten attributes),
* transfer environment (amount, hour, channel one-hot, transfer-city risk,
  device novelty, IP risk, recent-activity counters),
* simple cross features (age gap, same-city flag, KYC gap, amount ratios).

Everything is observable at prediction time — the hidden generative attributes
(``is_fraudster``, ``risk_propensity``) are deliberately excluded.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.datagen.schema import (
    CITY_FRAUD_TIERS,
    Gender,
    Transaction,
    TransactionChannel,
    UserProfile,
    city_tier,
)
from repro.exceptions import FeatureError
from repro.features.matrix import FeatureMatrix

#: Names of the 52 basic features, in column order.
BASIC_FEATURE_NAMES: List[str] = [
    # --- payer profile (10) ---
    "payer_age",
    "payer_gender_f",
    "payer_gender_m",
    "payer_gender_u",
    "payer_account_age_days",
    "payer_kyc_level",
    "payer_is_merchant",
    "payer_device_count",
    "payer_home_city_risk",
    "payer_home_city_bucket",
    # --- payee profile (10) ---
    "payee_age",
    "payee_gender_f",
    "payee_gender_m",
    "payee_gender_u",
    "payee_account_age_days",
    "payee_kyc_level",
    "payee_is_merchant",
    "payee_device_count",
    "payee_home_city_risk",
    "payee_home_city_bucket",
    # --- transfer environment (22) ---
    "amount",
    "log_amount",
    "hour",
    "hour_sin",
    "hour_cos",
    "is_night",
    "is_business_hours",
    "channel_app",
    "channel_web",
    "channel_qr",
    "channel_bank_card",
    "trans_city_risk",
    "trans_city_bucket",
    "trans_city_is_payer_home",
    "is_new_device",
    "ip_risk_score",
    "payer_recent_txn_count",
    "payer_recent_amount",
    "log_payer_recent_amount",
    "payee_recent_inbound_count",
    "log_payee_recent_inbound",
    "amount_over_recent_amount",
    # --- cross features (10) ---
    "age_gap",
    "same_home_city",
    "kyc_gap",
    "both_low_kyc",
    "log_payer_account_age",
    "log_payee_account_age",
    "amount_per_payer_device",
    "is_round_amount",
    "is_high_amount",
    "day_of_week",
]

#: Basic features that are inherently categorical / already discrete; the
#: rule-based methods (ID3, C5.0) only discretise the remaining continuous ones.
CATEGORICAL_BASIC_FEATURES: List[str] = [
    "payer_gender_f",
    "payer_gender_m",
    "payer_gender_u",
    "payer_is_merchant",
    "payee_gender_f",
    "payee_gender_m",
    "payee_gender_u",
    "payee_is_merchant",
    "is_night",
    "is_business_hours",
    "channel_app",
    "channel_web",
    "channel_qr",
    "channel_bank_card",
    "trans_city_is_payer_home",
    "is_new_device",
    "same_home_city",
    "both_low_kyc",
    "is_round_amount",
    "is_high_amount",
]

_NUM_CITY_BUCKETS = 10
_HIGH_AMOUNT_THRESHOLD = 5000.0


@lru_cache(maxsize=4096)
def _city_bucket(city: str) -> int:
    try:
        return int(city.rsplit("_", 1)[1]) % _NUM_CITY_BUCKETS
    except (IndexError, ValueError):
        return 0


@lru_cache(maxsize=4096)
def _city_risk(city: str) -> float:
    return CITY_FRAUD_TIERS[city_tier(city)]


class BasicFeatureExtractor:
    """Extracts the 52 basic features for transactions.

    Parameters
    ----------
    profiles:
        Mapping ``user_id -> UserProfile``.  Missing profiles fall back to a
        neutral default (the production system would equally serve a default
        row from HBase for a brand-new account).
    """

    def __init__(self, profiles: Dict[str, UserProfile]):
        self._profiles = profiles
        self._default_profile = UserProfile(
            user_id="__default__",
            age=35,
            gender=Gender.UNKNOWN,
            home_city="city_000",
            account_age_days=365,
            kyc_level=2,
            is_merchant=False,
            device_count=1,
            community=-1,
        )

    # ------------------------------------------------------------------
    @property
    def feature_names(self) -> List[str]:
        return list(BASIC_FEATURE_NAMES)

    def extract_one(self, transaction: Transaction) -> np.ndarray:
        """Feature vector (length 52) for a single transaction."""
        payer = self._profiles.get(transaction.payer_id, self._default_profile)
        payee = self._profiles.get(transaction.payee_id, self._default_profile)
        values = (
            self._profile_block(payer)
            + self._profile_block(payee)
            + self._environment_block(transaction, payer)
            + self._cross_block(transaction, payer, payee)
        )
        vector = np.array(values, dtype=np.float64)
        if vector.shape[0] != len(BASIC_FEATURE_NAMES):
            raise FeatureError(
                f"expected {len(BASIC_FEATURE_NAMES)} features, produced {vector.shape[0]}"
            )
        return vector

    def extract(
        self,
        transactions: Sequence[Transaction],
        *,
        with_labels: bool = True,
    ) -> FeatureMatrix:
        """Design matrix for a batch of transactions.

        The batch path is fully vectorised: raw attributes are gathered once
        (profile rows deduplicated per unique user) and every feature column
        is computed with one numpy expression, instead of stacking per-row
        :meth:`extract_one` calls.  The two paths produce identical values.
        """
        if len(transactions) == 0:
            return FeatureMatrix(
                feature_names=self.feature_names,
                values=np.zeros((0, len(BASIC_FEATURE_NAMES))),
                row_ids=[],
                labels=np.zeros(0) if with_labels else None,
            )
        payer_block, payer_cities = self._profile_matrix(
            [t.payer_id for t in transactions]
        )
        payee_block, payee_cities = self._profile_matrix(
            [t.payee_id for t in transactions]
        )
        environment = self._environment_columns(transactions, payer_cities)
        cross = self._cross_columns(transactions, payer_block, payee_block, payer_cities, payee_cities)
        values = np.hstack([payer_block, payee_block, environment, cross])
        if values.shape[1] != len(BASIC_FEATURE_NAMES):
            raise FeatureError(
                f"expected {len(BASIC_FEATURE_NAMES)} features, produced {values.shape[1]}"
            )
        labels = (
            np.array([float(t.is_fraud) for t in transactions]) if with_labels else None
        )
        return FeatureMatrix(
            feature_names=self.feature_names,
            values=values,
            row_ids=[t.transaction_id for t in transactions],
            labels=labels,
        )

    # ------------------------------------------------------------------
    # Vectorised column builders for the batch path
    # ------------------------------------------------------------------
    def _profile_matrix(self, user_ids: Sequence[str]):
        """(n, 10) profile block plus home cities, deduplicated per user."""
        unique_rows: List[List[float]] = []
        unique_cities: List[str] = []
        index_of: Dict[str, int] = {}
        index = np.empty(len(user_ids), dtype=np.intp)
        for position, user_id in enumerate(user_ids):
            row = index_of.get(user_id)
            if row is None:
                profile = self._profiles.get(user_id, self._default_profile)
                row = len(unique_rows)
                index_of[user_id] = row
                unique_rows.append(self._profile_block(profile))
                unique_cities.append(profile.home_city)
            index[position] = row
        block = np.asarray(unique_rows, dtype=np.float64)[index]
        cities = [unique_cities[row] for row in index]
        return block, cities

    def _environment_columns(
        self, transactions: Sequence[Transaction], payer_cities: Sequence[str]
    ) -> np.ndarray:
        amount = np.array([t.amount for t in transactions], dtype=np.float64)
        hour = np.array([t.hour for t in transactions], dtype=np.float64)
        hour_angle = 2.0 * np.pi * hour / 24.0
        channels = [t.channel for t in transactions]
        trans_cities = [t.trans_city for t in transactions]
        recent_amount = np.array(
            [t.payer_recent_amount for t in transactions], dtype=np.float64
        )
        inbound = np.array(
            [t.payee_recent_inbound_count for t in transactions], dtype=np.float64
        )
        columns = [
            amount,
            np.log1p(amount),
            hour,
            np.sin(hour_angle),
            np.cos(hour_angle),
            ((hour >= 22) | (hour < 6)).astype(np.float64),
            ((hour >= 9) & (hour <= 18)).astype(np.float64),
            np.array([1.0 if c is TransactionChannel.APP else 0.0 for c in channels]),
            np.array([1.0 if c is TransactionChannel.WEB else 0.0 for c in channels]),
            np.array([1.0 if c is TransactionChannel.QR_CODE else 0.0 for c in channels]),
            np.array([1.0 if c is TransactionChannel.BANK_CARD else 0.0 for c in channels]),
            np.array([_city_risk(city) for city in trans_cities], dtype=np.float64),
            np.array([float(_city_bucket(city)) for city in trans_cities]),
            np.array(
                [
                    1.0 if trans_city == home_city else 0.0
                    for trans_city, home_city in zip(trans_cities, payer_cities)
                ]
            ),
            np.array([1.0 if t.is_new_device else 0.0 for t in transactions]),
            np.array([t.ip_risk_score for t in transactions], dtype=np.float64),
            np.array([t.payer_recent_txn_count for t in transactions], dtype=np.float64),
            recent_amount,
            np.log1p(recent_amount),
            inbound,
            np.log1p(inbound),
            amount / (recent_amount + 1.0),
        ]
        return np.column_stack(columns)

    def _cross_columns(
        self,
        transactions: Sequence[Transaction],
        payer_block: np.ndarray,
        payee_block: np.ndarray,
        payer_cities: Sequence[str],
        payee_cities: Sequence[str],
    ) -> np.ndarray:
        # Column offsets inside the 10-column profile block.
        age, account_age, kyc, devices = 0, 4, 5, 7
        amount = np.array([t.amount for t in transactions], dtype=np.float64)
        columns = [
            np.abs(payer_block[:, age] - payee_block[:, age]),
            np.array(
                [
                    1.0 if payer_city == payee_city else 0.0
                    for payer_city, payee_city in zip(payer_cities, payee_cities)
                ]
            ),
            np.abs(payer_block[:, kyc] - payee_block[:, kyc]),
            ((payer_block[:, kyc] == 1.0) & (payee_block[:, kyc] == 1.0)).astype(
                np.float64
            ),
            np.log1p(payer_block[:, account_age]),
            np.log1p(payee_block[:, account_age]),
            amount / np.maximum(payer_block[:, devices], 1.0),
            (np.abs(amount % 100.0) < 1e-9).astype(np.float64),
            (amount >= _HIGH_AMOUNT_THRESHOLD).astype(np.float64),
            np.array([float(t.day % 7) for t in transactions]),
        ]
        return np.column_stack(columns)

    def extract_user_features(self, user_id: str) -> Dict[str, float]:
        """Static per-user features for the HBase feature store (Figure 7).

        The online Model Server combines these stored per-user attributes with
        the per-transaction context available in the request itself.
        """
        profile = self._profiles.get(user_id, self._default_profile)
        names = BASIC_FEATURE_NAMES[:10]
        values = self._profile_block(profile)
        return {name.replace("payer_", ""): value for name, value in zip(names, values)}

    # ------------------------------------------------------------------
    def _profile_block(self, profile: UserProfile) -> List[float]:
        return [
            float(profile.age),
            1.0 if profile.gender is Gender.FEMALE else 0.0,
            1.0 if profile.gender is Gender.MALE else 0.0,
            1.0 if profile.gender is Gender.UNKNOWN else 0.0,
            float(profile.account_age_days),
            float(profile.kyc_level),
            1.0 if profile.is_merchant else 0.0,
            float(profile.device_count),
            _city_risk(profile.home_city),
            float(_city_bucket(profile.home_city)),
        ]

    def _environment_block(self, txn: Transaction, payer: UserProfile) -> List[float]:
        hour_angle = 2.0 * np.pi * txn.hour / 24.0
        return [
            float(txn.amount),
            float(np.log1p(txn.amount)),
            float(txn.hour),
            float(np.sin(hour_angle)),
            float(np.cos(hour_angle)),
            1.0 if (txn.hour >= 22 or txn.hour < 6) else 0.0,
            1.0 if 9 <= txn.hour <= 18 else 0.0,
            1.0 if txn.channel is TransactionChannel.APP else 0.0,
            1.0 if txn.channel is TransactionChannel.WEB else 0.0,
            1.0 if txn.channel is TransactionChannel.QR_CODE else 0.0,
            1.0 if txn.channel is TransactionChannel.BANK_CARD else 0.0,
            _city_risk(txn.trans_city),
            float(_city_bucket(txn.trans_city)),
            1.0 if txn.trans_city == payer.home_city else 0.0,
            1.0 if txn.is_new_device else 0.0,
            float(txn.ip_risk_score),
            float(txn.payer_recent_txn_count),
            float(txn.payer_recent_amount),
            float(np.log1p(txn.payer_recent_amount)),
            float(txn.payee_recent_inbound_count),
            float(np.log1p(txn.payee_recent_inbound_count)),
            float(txn.amount / (txn.payer_recent_amount + 1.0)),
        ]

    def _cross_block(
        self, txn: Transaction, payer: UserProfile, payee: UserProfile
    ) -> List[float]:
        return [
            float(abs(payer.age - payee.age)),
            1.0 if payer.home_city == payee.home_city else 0.0,
            float(abs(payer.kyc_level - payee.kyc_level)),
            1.0 if (payer.kyc_level == 1 and payee.kyc_level == 1) else 0.0,
            float(np.log1p(payer.account_age_days)),
            float(np.log1p(payee.account_age_days)),
            float(txn.amount / max(payer.device_count, 1)),
            1.0 if abs(txn.amount % 100.0) < 1e-9 else 0.0,
            1.0 if txn.amount >= _HIGH_AMOUNT_THRESHOLD else 0.0,
            float(txn.day % 7),
        ]


def feature_matrix_from_transactions(
    transactions: Sequence[Transaction],
    profiles: Dict[str, UserProfile],
    *,
    with_labels: bool = True,
) -> FeatureMatrix:
    """One-call helper used by examples and tests."""
    return BasicFeatureExtractor(profiles).extract(transactions, with_labels=with_labels)
