"""Feature discretisation.

Two of the paper's detection methods depend on binning continuous values:

* Logistic Regression — "better performance can be achieved after feature
  discretization in most cases"; the paper's best LR uses 200 bins,
* the rule-based trees (ID3 / C5.0) — "cannot support continuous values well,
  we discretize the data into different bins".

We provide equal-width and equal-frequency (quantile) binners plus a
:class:`Discretizer` that applies a binner per column and can one-hot encode
the resulting bin indices (the usual "discretise + LR" recipe).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Literal, Optional, Sequence

import numpy as np

from repro.exceptions import FeatureError, NotFittedError
from repro.features.matrix import FeatureMatrix


class _BaseBinner:
    """Shared fit/transform plumbing of the per-column binners."""

    def __init__(self, num_bins: int) -> None:
        if num_bins < 2:
            raise FeatureError("num_bins must be at least 2")
        self.num_bins = num_bins
        self.edges_: Optional[np.ndarray] = None

    def fit(self, values: np.ndarray) -> "_BaseBinner":
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size == 0:
            raise FeatureError("cannot fit a binner on an empty column")
        self.edges_ = self._compute_edges(values)
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        if self.edges_ is None:
            raise NotFittedError("binner must be fitted before transform")
        values = np.asarray(values, dtype=np.float64).ravel()
        bins = np.searchsorted(self.edges_, values, side="right")
        return np.clip(bins, 0, self.num_bins - 1)

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return self.fit(values).transform(values)

    @property
    def actual_num_bins(self) -> int:
        """Number of distinct bins after fitting (duplicates collapse)."""
        if self.edges_ is None:
            raise NotFittedError("binner must be fitted first")
        return int(len(self.edges_) + 1)

    def _compute_edges(self, values: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class EqualWidthBinner(_BaseBinner):
    """Bins of equal width between the observed minimum and maximum."""

    def _compute_edges(self, values: np.ndarray) -> np.ndarray:
        low, high = float(values.min()), float(values.max())
        if low == high:
            return np.array([low])
        return np.linspace(low, high, self.num_bins + 1)[1:-1]


def quantile_edges(values: np.ndarray, num_bins: int) -> np.ndarray:
    """Deduplicated quantile cut points splitting ``values`` into ``num_bins``.

    Shared by :class:`QuantileBinner` and the GBDT histogram binner
    (:class:`repro.models.tree.histogram.HistogramBinner`), so the offline
    discretiser and the boosting engine agree on bin boundaries.
    """
    if num_bins < 2:
        raise FeatureError("num_bins must be at least 2")
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size == 0:
        raise FeatureError("cannot compute bin edges of an empty column")
    quantiles = np.linspace(0.0, 1.0, num_bins + 1)[1:-1]
    return np.unique(np.quantile(values, quantiles))


class QuantileBinner(_BaseBinner):
    """Equal-frequency bins (quantile cut points); robust to heavy tails."""

    def _compute_edges(self, values: np.ndarray) -> np.ndarray:
        return quantile_edges(values, self.num_bins)


BinnerKind = Literal["quantile", "equal_width"]


@dataclass
class DiscretizerConfig:
    """Configuration of the matrix-level discretiser."""

    num_bins: int = 200
    kind: BinnerKind = "quantile"
    one_hot: bool = False
    #: Columns with at most this many distinct values are passed through
    #: unchanged (they are already categorical flags).
    passthrough_max_unique: int = 2


class Discretizer:
    """Fit per-column binners on a :class:`FeatureMatrix` and transform it."""

    def __init__(self, config: DiscretizerConfig | None = None):
        self.config = config or DiscretizerConfig()
        if self.config.num_bins < 2:
            raise FeatureError("num_bins must be at least 2")
        self._binners: Optional[List[Optional[_BaseBinner]]] = None
        self._feature_names: Optional[List[str]] = None

    # ------------------------------------------------------------------
    def fit(self, matrix: FeatureMatrix) -> "Discretizer":
        binners: List[Optional[_BaseBinner]] = []
        for column_index in range(matrix.num_features):
            column = matrix.values[:, column_index]
            if np.unique(column).size <= self.config.passthrough_max_unique:
                binners.append(None)
                continue
            binner: _BaseBinner
            if self.config.kind == "quantile":
                binner = QuantileBinner(self.config.num_bins)
            elif self.config.kind == "equal_width":
                binner = EqualWidthBinner(self.config.num_bins)
            else:
                raise FeatureError(f"unknown binner kind {self.config.kind!r}")
            binners.append(binner.fit(column))
        self._binners = binners
        self._feature_names = list(matrix.feature_names)
        return self

    def transform(self, matrix: FeatureMatrix) -> FeatureMatrix:
        if self._binners is None or self._feature_names is None:
            raise NotFittedError("Discretizer must be fitted before transform")
        if matrix.num_features != len(self._binners):
            raise FeatureError(
                f"matrix has {matrix.num_features} features, discretizer was fitted on "
                f"{len(self._binners)}"
            )
        if self.config.one_hot:
            return self._transform_one_hot(matrix)
        transformed = matrix.values.copy()
        for column_index, binner in enumerate(self._binners):
            if binner is not None:
                transformed[:, column_index] = binner.transform(matrix.values[:, column_index])
        return FeatureMatrix(
            feature_names=list(matrix.feature_names),
            values=transformed,
            row_ids=matrix.row_ids,
            labels=matrix.labels,
            metadata={**matrix.metadata, "discretized": True},
        )

    def fit_transform(self, matrix: FeatureMatrix) -> FeatureMatrix:
        return self.fit(matrix).transform(matrix)

    # ------------------------------------------------------------------
    def _transform_one_hot(self, matrix: FeatureMatrix) -> FeatureMatrix:
        assert self._binners is not None
        columns: List[np.ndarray] = []
        names: List[str] = []
        for column_index, binner in enumerate(self._binners):
            name = matrix.feature_names[column_index]
            column = matrix.values[:, column_index]
            if binner is None:
                columns.append(column[:, None])
                names.append(name)
                continue
            bins = binner.transform(column)
            width = binner.actual_num_bins
            encoded = np.zeros((matrix.num_rows, width))
            encoded[np.arange(matrix.num_rows), bins.astype(int)] = 1.0
            columns.append(encoded)
            names.extend(f"{name}__bin{i}" for i in range(width))
        return FeatureMatrix(
            feature_names=names,
            values=np.hstack(columns) if columns else np.zeros((matrix.num_rows, 0)),
            row_ids=matrix.row_ids,
            labels=matrix.labels,
            metadata={**matrix.metadata, "discretized": True, "one_hot": True},
        )


def discretize_array(
    values: np.ndarray, *, num_bins: int = 10, kind: BinnerKind = "quantile"
) -> np.ndarray:
    """Discretise a raw 2-D array column by column (no FeatureMatrix needed)."""
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2:
        raise FeatureError("discretize_array expects a 2-D array")
    result = values.copy()
    for column_index in range(values.shape[1]):
        column = values[:, column_index]
        if np.unique(column).size <= 2:
            continue
        binner: _BaseBinner
        binner = (
            QuantileBinner(num_bins) if kind == "quantile" else EqualWidthBinner(num_bins)
        )
        result[:, column_index] = binner.fit_transform(column)
    return result
