"""Design-matrix container shared by the feature layer and the models."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import FeatureError


@dataclass
class FeatureMatrix:
    """A named design matrix with optional row identifiers and labels.

    ``values`` has shape (num_rows, num_features) and ``feature_names`` names
    each column.  ``row_ids`` carries transaction ids through the pipeline so
    that online predictions can be joined back to alerts, and ``labels`` holds
    the (possibly delayed) fraud labels when available.
    """

    feature_names: List[str]
    values: np.ndarray
    row_ids: Optional[List[str]] = None
    labels: Optional[np.ndarray] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.values.ndim != 2:
            raise FeatureError("values must be a 2-dimensional array")
        if self.values.shape[1] != len(self.feature_names):
            raise FeatureError(
                f"{len(self.feature_names)} feature names do not match "
                f"{self.values.shape[1]} columns"
            )
        if self.row_ids is not None and len(self.row_ids) != self.values.shape[0]:
            raise FeatureError("row_ids length does not match the number of rows")
        if self.labels is not None:
            self.labels = np.asarray(self.labels, dtype=np.float64)
            if self.labels.shape[0] != self.values.shape[0]:
                raise FeatureError("labels length does not match the number of rows")

    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return int(self.values.shape[0])

    @property
    def num_features(self) -> int:
        return int(self.values.shape[1])

    def column(self, name: str) -> np.ndarray:
        """Return one feature column by name."""
        try:
            index = self.feature_names.index(name)
        except ValueError as exc:
            raise FeatureError(f"unknown feature {name!r}") from exc
        return self.values[:, index]

    def select(self, names: Sequence[str]) -> "FeatureMatrix":
        """Project onto a subset of features (keeps row ids and labels)."""
        indices = []
        for name in names:
            if name not in self.feature_names:
                raise FeatureError(f"unknown feature {name!r}")
            indices.append(self.feature_names.index(name))
        return FeatureMatrix(
            feature_names=list(names),
            values=self.values[:, indices],
            row_ids=self.row_ids,
            labels=self.labels,
            metadata=dict(self.metadata),
        )

    def hstack(self, other: "FeatureMatrix") -> "FeatureMatrix":
        """Concatenate feature columns of two matrices with identical rows."""
        if other.num_rows != self.num_rows:
            raise FeatureError(
                f"cannot hstack matrices with {self.num_rows} and {other.num_rows} rows"
            )
        overlap = set(self.feature_names) & set(other.feature_names)
        if overlap:
            raise FeatureError(f"duplicate feature names: {sorted(overlap)[:5]}")
        return FeatureMatrix(
            feature_names=self.feature_names + other.feature_names,
            values=np.hstack([self.values, other.values]),
            row_ids=self.row_ids if self.row_ids is not None else other.row_ids,
            labels=self.labels if self.labels is not None else other.labels,
            metadata={**other.metadata, **self.metadata},
        )

    def take(self, indices: Sequence[int]) -> "FeatureMatrix":
        """Row subset by integer indices."""
        indices = list(indices)
        return FeatureMatrix(
            feature_names=list(self.feature_names),
            values=self.values[indices],
            row_ids=[self.row_ids[i] for i in indices] if self.row_ids is not None else None,
            labels=self.labels[indices] if self.labels is not None else None,
            metadata=dict(self.metadata),
        )

    def with_labels(self, labels: Sequence[float]) -> "FeatureMatrix":
        """Return a copy with ``labels`` attached."""
        return FeatureMatrix(
            feature_names=list(self.feature_names),
            values=self.values,
            row_ids=self.row_ids,
            labels=np.asarray(labels, dtype=np.float64),
            metadata=dict(self.metadata),
        )

    def to_rows(self) -> List[Dict[str, float]]:
        """Dictionary-per-row view, used by the HBase feature upload."""
        return [
            {name: float(value) for name, value in zip(self.feature_names, row)}
            for row in self.values
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FeatureMatrix(rows={self.num_rows}, features={self.num_features})"
