"""The FeaturePlan: one declarative feature spec, one executor, two worlds.

The paper's operational core is that the *same* feature vector — 52 basic
features followed by the configured node-embedding blocks — is computed
offline on MaxCompute for training and online in the Model Server under a
tens-of-milliseconds SLA.  Any drift between the two implementations is
training/serving skew and silently destroys model quality.

A :class:`FeaturePlan` is a serialisable, immutable description of that
vector: the ordered basic-feature block plus the ordered embedding blocks
(set name, dimension) and which transaction endpoint(s) each block attaches
to.  The trainer exports the plan alongside the model file; the Model Server
loads both.  A single :class:`FeaturePlanExecutor` turns a plan plus a
:class:`FeatureSource` (in-memory for the offline pipeline, HBase-backed for
the online path) into design matrices, so there is exactly one assembly
implementation to keep correct.
"""

from __future__ import annotations

import abc
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.datagen.schema import Transaction, UserProfile
from repro.exceptions import FeatureError
from repro.features.aggregation import (
    AGGREGATION_FEATURE_NAMES,
    AggregationWindowSpec,
    PointInTimeAggregateProvider,
    aggregation_vector,
)
from repro.features.basic import BASIC_FEATURE_NAMES, BasicFeatureExtractor
from repro.features.matrix import FeatureMatrix
from repro.nrl.embeddings import EmbeddingSet

#: Valid values of :attr:`FeaturePlan.embedding_side`.
EMBEDDING_SIDES = ("payer", "payee", "both")


@dataclass(frozen=True)
class EmbeddingBlockSpec:
    """One embedding block of the final vector: a named set and its width."""

    set_name: str
    dimension: int

    def __post_init__(self) -> None:
        if not self.set_name:
            raise FeatureError("embedding block needs a non-empty set name")
        if self.dimension < 1:
            raise FeatureError(
                f"embedding block {self.set_name!r} needs a positive dimension"
            )

    def to_dict(self) -> Dict[str, object]:
        return {"set_name": self.set_name, "dimension": int(self.dimension)}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "EmbeddingBlockSpec":
        return cls(set_name=str(data["set_name"]), dimension=int(data["dimension"]))


@dataclass(frozen=True)
class FeaturePlan:
    """Ordered, immutable spec of the full feature vector.

    The column layout is the basic-feature block, then (when ``aggregation``
    is set) the 12 sliding-window aggregation features, then, for every
    embedding block in order, one sub-block per side (payer before payee when
    ``embedding_side`` is ``"both"``).

    ``aggregation`` is the exported windowing definition: offline assembly and
    the online streaming engine are both configured from this one
    :class:`~repro.features.aggregation.AggregationWindowSpec`, so the two
    worlds cannot disagree about window length or bucketing.
    """

    embedding_blocks: Tuple[EmbeddingBlockSpec, ...] = ()
    embedding_side: str = "both"
    basic_feature_names: Tuple[str, ...] = field(
        default_factory=lambda: tuple(BASIC_FEATURE_NAMES)
    )
    aggregation: Optional[AggregationWindowSpec] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "embedding_blocks", tuple(self.embedding_blocks))
        object.__setattr__(
            self, "basic_feature_names", tuple(self.basic_feature_names)
        )
        if self.embedding_side not in EMBEDDING_SIDES:
            raise FeatureError(
                f"embedding_side must be one of {EMBEDDING_SIDES}, "
                f"got {self.embedding_side!r}"
            )
        names = [block.set_name for block in self.embedding_blocks]
        if len(set(names)) != len(names):
            raise FeatureError(f"duplicate embedding set names in plan: {names}")

    # ------------------------------------------------------------------
    @property
    def sides(self) -> Tuple[str, ...]:
        """The transaction endpoints each embedding block attaches to."""
        if self.embedding_side == "both":
            return ("payer", "payee")
        return (self.embedding_side,)

    @property
    def feature_names(self) -> List[str]:
        """Ordered names of every column the plan produces."""
        names = list(self.basic_feature_names)
        if self.aggregation is not None:
            names.extend(AGGREGATION_FEATURE_NAMES)
        for block in self.embedding_blocks:
            for side in self.sides:
                names.extend(
                    f"{block.set_name}_{side}_{dim}" for dim in range(block.dimension)
                )
        return names

    @property
    def num_features(self) -> int:
        """Total width of the assembled feature vector."""
        per_block = sum(block.dimension for block in self.embedding_blocks)
        aggregation_width = len(AGGREGATION_FEATURE_NAMES) if self.aggregation else 0
        return (
            len(self.basic_feature_names)
            + aggregation_width
            + per_block * len(self.sides)
        )

    @property
    def embedding_specs(self) -> List[Tuple[str, int]]:
        """(set name, dimension) pairs — the legacy wire format."""
        return [(block.set_name, block.dimension) for block in self.embedding_blocks]

    # ------------------------------------------------------------------
    @classmethod
    def from_embedding_sets(
        cls,
        embedding_sets: Mapping[str, EmbeddingSet],
        *,
        embedding_side: str = "both",
        aggregation: Optional[AggregationWindowSpec] = None,
    ) -> "FeaturePlan":
        """Plan matching an ordered mapping of trained embedding sets."""
        blocks = tuple(
            EmbeddingBlockSpec(set_name=name, dimension=embeddings.dimension)
            for name, embeddings in embedding_sets.items()
        )
        return cls(
            embedding_blocks=blocks,
            embedding_side=embedding_side,
            aggregation=aggregation,
        )

    @classmethod
    def from_specs(
        cls,
        embedding_specs: Sequence[Sequence[object]],
        *,
        embedding_side: str = "both",
    ) -> "FeaturePlan":
        """Plan from legacy ``(set name, dimension)`` pairs."""
        blocks = tuple(
            EmbeddingBlockSpec(set_name=str(name), dimension=int(dimension))
            for name, dimension in embedding_specs
        )
        return cls(embedding_blocks=blocks, embedding_side=embedding_side)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form of the plan (the exported model artefact)."""
        return {
            "embedding_blocks": [block.to_dict() for block in self.embedding_blocks],
            "embedding_side": self.embedding_side,
            "basic_feature_names": list(self.basic_feature_names),
            "aggregation": self.aggregation.to_dict() if self.aggregation else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FeaturePlan":
        """Rebuild a plan from :meth:`to_dict` output (legacy JSON accepted)."""
        blocks = tuple(
            EmbeddingBlockSpec.from_dict(item)
            for item in data.get("embedding_blocks", [])
        )
        aggregation_data = data.get("aggregation")
        return cls(
            embedding_blocks=blocks,
            embedding_side=str(data.get("embedding_side", "both")),
            basic_feature_names=tuple(
                data.get("basic_feature_names", BASIC_FEATURE_NAMES)
            ),
            aggregation=(
                AggregationWindowSpec.from_dict(aggregation_data)
                if aggregation_data
                else None
            ),
        )

    def to_json(self) -> str:
        """The plan as a JSON string (what ships next to the model file)."""
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, payload: str) -> "FeaturePlan":
        """Load a plan from its :meth:`to_json` string."""
        return cls.from_dict(json.loads(payload))


# ---------------------------------------------------------------------------
# Feature sources: where the executor reads per-user data from
# ---------------------------------------------------------------------------


class FeatureSource(abc.ABC):
    """Supplies per-user profiles and embedding vectors to the executor.

    Implementations exist for the offline world (in-memory profiles and
    :class:`EmbeddingSet` objects) and the online world (Ali-HBase rows);
    the executor is agnostic to which one it is running against.
    """

    @abc.abstractmethod
    def profiles_for(self, user_ids: Sequence[str]) -> Dict[str, UserProfile]:
        """Profiles for ``user_ids``; callers tolerate missing entries."""

    @abc.abstractmethod
    def embedding_matrix(
        self, block: EmbeddingBlockSpec, user_ids: Sequence[str]
    ) -> np.ndarray:
        """(len(user_ids), block.dimension) matrix; unknown users are zeros."""

    def aggregate_rows(
        self, user_ids: Sequence[str]
    ) -> Dict[str, Mapping[str, object]]:
        """Per-user sliding-window aggregate rows (see ``AGGREGATE_ROW_FIELDS``).

        Non-abstract for backwards compatibility: sources without aggregate
        data serve every account as cold (all-zero aggregates).
        """
        return {}

    def aggregation_block(
        self, transactions: Sequence[Transaction]
    ) -> Optional[np.ndarray]:
        """Optional point-in-time aggregation block for a transaction batch.

        Sources that can compute each transaction's aggregates *as of its own
        event time* (the offline training path, via
        :class:`~repro.features.streaming.PointInTimeAggregationSource`)
        return the (n, 12) block directly; sources serving precomputed
        per-user rows (the online HBase path) return None and the executor
        falls back to :meth:`aggregate_rows`.
        """
        return None


class InMemoryFeatureSource(FeatureSource):
    """Offline source: the profile dict, trained embedding sets and (optionally)
    an aggregate provider — either a plain ``user_id -> row`` mapping or any
    aggregator exposing ``hbase_row(user_id)`` (batch or streaming), which is
    queried live so offline assembly always sees the provider's current state.
    """

    def __init__(
        self,
        profiles: Mapping[str, UserProfile],
        embedding_sets: Optional[Mapping[str, EmbeddingSet]] = None,
        aggregates: Optional[object] = None,
    ) -> None:
        self._profiles = profiles
        self._embedding_sets = dict(embedding_sets or {})
        self._aggregates = aggregates

    def profiles_for(self, user_ids: Sequence[str]) -> Dict[str, UserProfile]:
        return {
            user_id: self._profiles[user_id]
            for user_id in user_ids
            if user_id in self._profiles
        }

    def aggregate_rows(
        self, user_ids: Sequence[str]
    ) -> Dict[str, Mapping[str, object]]:
        if self._aggregates is None or isinstance(
            self._aggregates, PointInTimeAggregateProvider
        ):
            return {}
        if hasattr(self._aggregates, "hbase_row"):
            return {
                user_id: self._aggregates.hbase_row(user_id) for user_id in user_ids
            }
        return {
            user_id: self._aggregates[user_id]
            for user_id in user_ids
            if user_id in self._aggregates
        }

    def aggregation_block(
        self, transactions: Sequence[Transaction]
    ) -> Optional[np.ndarray]:
        # Explicit capability dispatch: only providers that opted into the
        # marker base compute per-transaction blocks; every other provider
        # serves per-user rows.
        if isinstance(self._aggregates, PointInTimeAggregateProvider):
            return self._aggregates.aggregation_block(transactions)
        return None

    def embedding_matrix(
        self, block: EmbeddingBlockSpec, user_ids: Sequence[str]
    ) -> np.ndarray:
        embeddings = self._embedding_sets.get(block.set_name)
        if embeddings is None:
            raise FeatureError(
                f"plan references embedding set {block.set_name!r} "
                f"but only {sorted(self._embedding_sets)} are available"
            )
        if embeddings.dimension != block.dimension:
            raise FeatureError(
                f"embedding set {block.set_name!r} has dimension "
                f"{embeddings.dimension}, plan expects {block.dimension}"
            )
        return embeddings.lookup(list(user_ids))


# ---------------------------------------------------------------------------
# The single executor shared by offline training and online serving
# ---------------------------------------------------------------------------


class FeaturePlanExecutor:
    """Executes a :class:`FeaturePlan` against a :class:`FeatureSource`."""

    def __init__(self, plan: FeaturePlan, source: FeatureSource) -> None:
        self.plan = plan
        self.source = source

    # ------------------------------------------------------------------
    @property
    def feature_names(self) -> List[str]:
        """Column names of the matrices this executor assembles."""
        return self.plan.feature_names

    def assemble(
        self,
        transactions: Sequence[Transaction],
        *,
        with_labels: bool = True,
    ) -> FeatureMatrix:
        """One design matrix for a batch: basic block ⊕ embedding blocks."""
        transactions = list(transactions)
        payers = [t.payer_id for t in transactions]
        payees = [t.payee_id for t in transactions]
        profiles = self.source.profiles_for(list(dict.fromkeys(payers + payees)))
        extractor = BasicFeatureExtractor(profiles)
        basic = extractor.extract(transactions, with_labels=with_labels)
        blocks: List[np.ndarray] = [basic.values]
        if self.plan.aggregation is not None:
            blocks.append(self._aggregation_block(transactions, payers, payees))
        for block in self.plan.embedding_blocks:
            for side in self.plan.sides:
                user_ids = payers if side == "payer" else payees
                blocks.append(self.source.embedding_matrix(block, user_ids))
        if len(blocks) == 1:
            return FeatureMatrix(
                feature_names=self.plan.feature_names,
                values=basic.values,
                row_ids=basic.row_ids,
                labels=basic.labels,
            )
        return FeatureMatrix(
            feature_names=self.plan.feature_names,
            values=np.hstack(blocks) if transactions else
            np.zeros((0, self.plan.num_features)),
            row_ids=basic.row_ids,
            labels=basic.labels,
        )

    def _aggregation_block(
        self,
        transactions: Sequence[Transaction],
        payers: Sequence[str],
        payees: Sequence[str],
    ) -> np.ndarray:
        """The 12-column aggregation block: point-in-time when the source can
        compute it, otherwise from the source's precomputed per-user rows."""
        point_in_time = self.source.aggregation_block(transactions)
        if point_in_time is not None:
            return np.asarray(point_in_time, dtype=np.float64)
        rows = self.source.aggregate_rows(list(dict.fromkeys([*payers, *payees])))
        block = np.zeros((len(transactions), len(AGGREGATION_FEATURE_NAMES)))
        empty: Mapping[str, object] = {}
        for index, txn in enumerate(transactions):
            block[index] = aggregation_vector(
                rows.get(txn.payer_id) or empty,
                rows.get(txn.payee_id) or empty,
                txn.payer_id,
            )
        return block

    def assemble_single(self, transaction: Transaction) -> np.ndarray:
        """Feature vector for one transaction (the scalar serving path)."""
        return self.assemble([transaction], with_labels=False).values[0]
