"""SQL-native aggregation backfill over partitioned MaxCompute tables.

The paper's production pipeline expresses the T+1 aggregate backfill as
windowed SQL over day-partitioned transaction tables; the pure-Python loop in
:meth:`~repro.features.aggregation.TransactionAggregator.fit` was the last
seed-era stand-in.  :class:`SQLBackfillEngine` closes that gap: it stages the
history into a :class:`~repro.maxcompute.partitioned.PartitionedTable` keyed
by day, runs generated ``... OVER (PARTITION BY account ORDER BY event_time
RANGE BETWEEN <W> PRECEDING AND CURRENT ROW)`` queries for the payer and
payee sides plus one GROUP BY for the distinct payer/payee pair sets, and
assembles the exact per-user state the loop produces.  Zone maps let the
executor skip every partition outside ``(as_of - W, as_of]``, and the scan
accounting lands in :class:`BackfillStats`.

Why the results are *bit-identical* to the loop: the WHERE clause restricts
the staged rows to ``(as_of - W, as_of]``, so for every row at time ``t`` the
frame start ``t - W`` lies strictly before every staged time — the frame is
always the full partition prefix, no value ever leaves the window, and the
running sum is the same pure left fold of additions the loop performs.  The
fold *order* is ascending ``(event_time, input position)``; the loop folds in
raw history order, so float sums agree to the last bit whenever each
account's history is event-time-ordered (as the datagen streams are) or the
amounts are dyadic (the parity-harness convention).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datagen.schema import Transaction
from repro.exceptions import FeatureError
from repro.features.aggregation import (
    SECONDS_PER_DAY,
    AggregationConfig,
    _UserAggregate,
    is_night_hour,
    transaction_event_time,
)
from repro.maxcompute import MaxComputeClient, Schema
from repro.maxcompute.sql.executor import QueryStats

#: Schema of the staged transactions table the generated queries run over.
STAGING_SCHEMA: Dict[str, str] = {
    "payer_id": "string",
    "payee_id": "string",
    "event_time": "bigint",
    "amount": "double",
    "night_flag": "bigint",
    "day": "bigint",
}


def _sql_number(value: float) -> str:
    """Render a numeric literal the SQL tokenizer can read back exactly."""
    if float(value) == int(value):
        return str(int(value))
    text = repr(float(value))
    if "e" in text or "E" in text:
        raise FeatureError(f"numeric literal {value!r} does not round-trip through SQL")
    return text


@dataclass
class BackfillStats:
    """Scan accounting for one SQL backfill (three generated queries)."""

    #: Day partitions in the staging table.
    partitions_total: int = 0
    #: Partitions actually read per query (identical across the three).
    partitions_scanned: int = 0
    #: Partitions proven non-matching by their zone maps and skipped.
    partitions_skipped: int = 0
    #: Rows read across all queries (3x the per-query scan when not pruned).
    rows_scanned: int = 0
    #: Rows inside the window per query.
    rows_matched: int = 0
    #: Rows staged into the partitioned table (the full history).
    rows_staged: int = 0
    #: Raw per-query stats, in payer / payee / pairs order.
    per_query: List[QueryStats] = field(default_factory=list)


class SQLBackfillEngine:
    """Runs the aggregation backfill as windowed SQL on the MaxCompute substrate.

    Produces the same ``account -> _UserAggregate`` state as the Python loop
    in :class:`~repro.features.aggregation.TransactionAggregator` (see the
    module docstring for the bit-identity argument), while exercising the
    real scan path: partitioned staging table, zone-map pruning, window
    evaluation.  :attr:`last_stats` reports the scan accounting of the most
    recent :meth:`backfill`.
    """

    STAGING_TABLE = "txn_backfill_staging"

    def __init__(
        self,
        config: Optional[AggregationConfig] = None,
        *,
        client: Optional[MaxComputeClient] = None,
        prune_partitions: bool = True,
    ):
        self.config = config or AggregationConfig()
        self.config.validate()
        self.client = client or MaxComputeClient()
        self.prune_partitions = prune_partitions
        #: Scan accounting of the most recent :meth:`backfill` call.
        self.last_stats: Optional[BackfillStats] = None

    # ------------------------------------------------------------------
    def stage_history(self, history: Sequence[Transaction]) -> int:
        """(Re)load the day-partitioned staging table; returns rows staged."""
        self.client.catalog.drop_table(self.STAGING_TABLE, if_exists=True)
        table = self.client.create_partitioned_table(
            self.STAGING_TABLE, dict(STAGING_SCHEMA), partition_key="day"
        )
        for txn in history:
            event_time = transaction_event_time(txn)
            table.append(
                {
                    "payer_id": txn.payer_id,
                    "payee_id": txn.payee_id,
                    "event_time": event_time,
                    "amount": txn.amount,
                    "night_flag": 1 if is_night_hour(txn.hour) else 0,
                    "day": event_time // SECONDS_PER_DAY,
                }
            )
        return table.num_rows

    def backfill(
        self, history: Sequence[Transaction], *, as_of_time: float
    ) -> Dict[str, _UserAggregate]:
        """Stage ``history`` and compute the window ending at ``as_of_time``.

        Returns the ``account -> _UserAggregate`` map; scan accounting is
        left in :attr:`last_stats`.
        """
        stats = BackfillStats(rows_staged=self.stage_history(history))
        window_seconds = self.config.effective_window_seconds
        window_start = as_of_time - window_seconds
        where = (
            f"event_time > {_sql_number(window_start)} "
            f"AND event_time <= {_sql_number(as_of_time)}"
        )
        aggregates: Dict[str, _UserAggregate] = {}

        payer_rows = self._run(self._window_sql("payer_id", "payee_id", where), stats)
        payee_rows = self._run(self._window_sql("payee_id", "payer_id", where), stats)
        pair_rows = self._run(
            f"SELECT payer_id, payee_id, COUNT(*) AS n "
            f"FROM {self.STAGING_TABLE} WHERE {where} GROUP BY payer_id, payee_id",
            stats,
        )
        self._finalize_stats(stats)

        for account, row in self._last_row_per_account("payer_id", payer_rows):
            aggregate = aggregates.setdefault(account, _UserAggregate())
            aggregate.out_count = int(row["out_count"])
            aggregate.out_amount_sum = row["out_amount_sum"]
            # The loop's max-fold starts from the dataclass default 0.0.
            aggregate.out_amount_max = max(0.0, row["out_amount_max"])
            aggregate.out_night_count = int(row["out_night_count"])
        for account, row in self._last_row_per_account("payee_id", payee_rows):
            aggregate = aggregates.setdefault(account, _UserAggregate())
            aggregate.in_count = int(row["in_count"])
            aggregate.in_amount_sum = row["in_amount_sum"]
            aggregate.in_amount_max = max(0.0, row["in_amount_max"])

        for row in pair_rows:
            payer, payee = row["payer_id"], row["payee_id"]
            aggregates.setdefault(payer, _UserAggregate()).payees.add(payee)
            aggregates.setdefault(payee, _UserAggregate()).payers.add(payer)

        self._cross_check_distinct_counts(aggregates, payer_rows, payee_rows)
        self.last_stats = stats
        return aggregates

    # ------------------------------------------------------------------
    def _window_sql(self, side: str, counter_side: str, where: str) -> str:
        """The generated per-side window query (payer or payee view)."""
        prefix = "out" if side == "payer_id" else "in"
        width = _sql_number(self.config.effective_window_seconds)
        over = (
            f"OVER (PARTITION BY {side} ORDER BY event_time "
            f"RANGE BETWEEN {width} PRECEDING AND CURRENT ROW)"
        )
        night = (
            f"SUM(night_flag) {over} AS out_night_count, " if prefix == "out" else ""
        )
        distinct_name = "distinct_payees" if prefix == "out" else "distinct_payers"
        return (
            f"SELECT {side}, event_time, "
            f"COUNT(amount) {over} AS {prefix}_count, "
            f"SUM(amount) {over} AS {prefix}_amount_sum, "
            f"MAX(amount) {over} AS {prefix}_amount_max, "
            f"{night}"
            f"COUNT(DISTINCT {counter_side}) {over} AS {distinct_name} "
            f"FROM {self.STAGING_TABLE} WHERE {where}"
        )

    def _run(self, sql: str, stats: BackfillStats) -> List[Dict[str, object]]:
        result = self.client.submit_sql(sql, prune_partitions=self.prune_partitions)
        if not result.succeeded or result.result_table is None:
            raise FeatureError(f"backfill query failed: {sql}")
        if result.query_stats is not None:
            stats.per_query.append(result.query_stats)
        return result.result_table.to_records()

    def _finalize_stats(self, stats: BackfillStats) -> None:
        if not stats.per_query:
            return
        first = stats.per_query[0]
        stats.partitions_total = first.partitions_total
        stats.partitions_scanned = first.partitions_scanned
        stats.partitions_skipped = first.partitions_skipped
        stats.rows_matched = first.rows_matched
        stats.rows_scanned = sum(query.rows_scanned for query in stats.per_query)

    @staticmethod
    def _last_row_per_account(
        key: str, rows: List[Dict[str, object]]
    ) -> List[Tuple[str, Dict[str, object]]]:
        """The final window row per account — its frame spans the whole window.

        Every staged row's frame start precedes every staged time (WHERE
        already clipped to the window), so the last row of each partition
        carries the aggregate over the account's entire in-window history.
        """
        last: Dict[str, Tuple[int, Dict[str, object]]] = {}
        for row in rows:
            account = row[key]  # type: ignore[index]
            event_time = row["event_time"]  # type: ignore[index]
            current = last.get(account)
            if current is None or event_time >= current[0]:
                last[account] = (event_time, row)  # type: ignore[assignment]
        return [(account, last[account][1]) for account in sorted(last)]

    def _cross_check_distinct_counts(
        self,
        aggregates: Dict[str, _UserAggregate],
        payer_rows: List[Dict[str, object]],
        payee_rows: List[Dict[str, object]],
    ) -> None:
        """COUNT(DISTINCT ...) from the window path must equal the pair sets.

        The two are computed by independent query shapes (sliding multiset vs
        GROUP BY); a mismatch means an engine bug, and silently publishing
        either number would poison the aggregate rows — fail loudly instead.
        """
        for account, row in self._last_row_per_account("payer_id", payer_rows):
            expected = len(aggregates[account].payees)
            if int(row["distinct_payees"]) != expected:
                raise FeatureError(
                    f"distinct-payee mismatch for {account!r}: window query says "
                    f"{row['distinct_payees']}, pair sets say {expected}"
                )
        for account, row in self._last_row_per_account("payee_id", payee_rows):
            expected = len(aggregates[account].payers)
            if int(row["distinct_payers"]) != expected:
                raise FeatureError(
                    f"distinct-payer mismatch for {account!r}: window query says "
                    f"{row['distinct_payers']}, pair sets say {expected}"
                )
