"""Streaming sliding-window aggregation: the online feature engine.

The batch :class:`~repro.features.aggregation.TransactionAggregator` freezes a
look-back window once per day, so online requests are served against rows that
are up to 24 hours stale.  The :class:`SlidingWindowAggregator` in this module
is the incremental replacement: it ingests transactions one at a time in event
time and can answer, at any instant, the exact same per-user aggregates a
brute-force batch recompute over the in-window events would produce.

Design
------
* **Event time.**  Every transaction is placed at
  :func:`~repro.features.aggregation.transaction_event_time` seconds.  Windows
  are left-open/right-closed: an event at ``t`` is inside the window ending at
  ``as_of`` iff ``as_of - W < t <= as_of``.
* **Buckets.**  Per account, events are accumulated into time buckets of
  ``bucket_seconds`` (default one hour — the schema's native granularity, so
  every bucket holds exactly one distinct timestamp and window membership is
  *exact*, not approximate).  Each bucket keeps subtotals (count, sum, max,
  night count) and the multiset of counterparties.
* **Costs.**  Ingest is O(1) amortised (update two buckets, occasionally evict
  expired buckets of the two touched accounts — each bucket is evicted at most
  once).  A feature query scans the account's O(window/bucket) live buckets.
* **Out-of-order arrivals.**  A late event lands in its (possibly older)
  bucket as long as it is still inside the retention horizon
  ``max_window + allowed_lateness``; an older event can never re-enter any
  permitted window (event-time windows only move forward) and is counted in
  ``late_events_dropped``.  Queries are exact for any
  ``as_of >= watermark - allowed_lateness`` (and for any ``as_of`` at or
  beyond the watermark); with the default lateness of 0 the engine retains
  exactly one window of buckets.
* **Multi-window.**  One bucket store serves any number of window lengths
  (e.g. 1 h / 24 h / 14 d); the first window is the *primary* one and emits
  the exact :data:`AGGREGATION_FEATURE_NAMES` vector of the batch path, extra
  windows append suffixed copies.

Determinism: queries fold buckets in ascending bucket-time order, so counts,
maxima, night fractions and distinct/payer sets depend only on the *set* of
in-window events, independent of arrival order; amount sums and means are
additionally exact across arrival orders whenever the amounts are dyadic
(e.g. integer cents scaled by a power of two — otherwise same-bucket float
sums can differ in the last ulp between orders).  A crash-recovery replay of
the same stream *in the same order* rebuilds bit-identical state.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.datagen.schema import Transaction
from repro.exceptions import FeatureError
from repro.features.aggregation import (
    AGGREGATION_FEATURE_NAMES,
    AggregationConfig,
    AggregationWindowSpec,
    SECONDS_PER_HOUR,
    PointInTimeAggregateProvider,
    _require_bucket_divides_event_granularity,
    _require_positive_finite,
    aggregation_vector,
    build_aggregate_row,
    is_night_hour,
    transaction_event_time,
)
from repro.features.matrix import FeatureMatrix


@dataclass(frozen=True)
class WindowSpec:
    """One sliding window: a name and a length in seconds.

    The first window of an aggregator is the *primary* window and emits the
    unprefixed :data:`AGGREGATION_FEATURE_NAMES`; additional windows need a
    non-empty unique name used as a feature-name suffix.
    """

    name: str
    window_seconds: float

    def __post_init__(self) -> None:
        _require_positive_finite(f"window {self.name!r} window_seconds", self.window_seconds)


def event_order(txn: Transaction) -> Tuple[int, str]:
    """The stream's canonical total order: event time, ties broken by
    transaction id.  Every replay path — the online Alipay replay, engine
    seeding, and the point-in-time training source — sorts with this one key,
    so replayed state can never depend on which path ordered the stream."""
    return (transaction_event_time(txn), txn.transaction_id)


#: The "1h / 24h / 14d" short-/mid-/long-horizon triple from the issue;
#: the 14-day window leads so the primary features match the batch default.
STANDARD_WINDOWS: Tuple[WindowSpec, ...] = (
    WindowSpec("14d", 14.0 * 24 * SECONDS_PER_HOUR),
    WindowSpec("24h", 24.0 * SECONDS_PER_HOUR),
    WindowSpec("1h", 1.0 * SECONDS_PER_HOUR),
)


class _Bucket:
    """Subtotals of one account's events inside one time bucket."""

    __slots__ = (
        "out_count",
        "out_sum",
        "out_max",
        "out_night",
        "payees",
        "in_count",
        "in_sum",
        "in_max",
        "payers",
    )

    def __init__(self) -> None:
        self.out_count = 0
        self.out_sum = 0.0
        self.out_max = 0.0
        self.out_night = 0
        self.payees: Set[str] = set()
        self.in_count = 0
        self.in_sum = 0.0
        self.in_max = 0.0
        self.payers: Set[str] = set()


class SlidingWindowAggregator:
    """Event-time, bucketed, multi-window per-account aggregate accumulator."""

    def __init__(
        self,
        config: Optional[AggregationConfig] = None,
        *,
        windows: Optional[Sequence[WindowSpec]] = None,
        bucket_seconds: Optional[float] = None,
        allowed_lateness_seconds: float = 0.0,
    ) -> None:
        if windows is not None and config is not None:
            raise FeatureError("pass an AggregationConfig or explicit windows, not both")
        if windows is None:
            resolved = config or AggregationConfig()
            resolved.validate()
            windows = (WindowSpec("primary", resolved.effective_window_seconds),)
        self.windows: Tuple[WindowSpec, ...] = tuple(windows)
        if not self.windows:
            raise FeatureError("SlidingWindowAggregator needs at least one window")
        suffixes = [spec.name for spec in self.windows[1:]]
        if any(not name for name in suffixes) or len(set(suffixes)) != len(suffixes):
            raise FeatureError("extra windows need non-empty, unique names")
        self.bucket_seconds = _require_bucket_divides_event_granularity(
            SECONDS_PER_HOUR if bucket_seconds is None else bucket_seconds
        )
        lateness = float(allowed_lateness_seconds)
        if math.isnan(lateness) or math.isinf(lateness) or lateness < 0.0:
            raise FeatureError(
                f"allowed_lateness_seconds must be a finite number >= 0, got {lateness!r}"
            )
        self.allowed_lateness_seconds = lateness
        #: Retention horizon: a bucket older than the longest window plus the
        #: allowed lateness can never be seen by a permitted query again.
        self._horizon = max(spec.window_seconds for spec in self.windows) + lateness
        #: account -> bucket time -> :class:`_Bucket`.
        self._accounts: Dict[str, Dict[float, _Bucket]] = {}
        self._watermark = -math.inf
        self.events_ingested = 0
        self.late_events_dropped = 0
        self.buckets_evicted = 0
        #: Every this-many ingests, sweep *all* accounts' expired buckets so
        #: dormant accounts (only touched accounts are evicted inline) cannot
        #: leak memory over a long-running stream.
        self.prune_interval = 10_000
        self._ingests_since_prune = 0

    @classmethod
    def from_window_spec(cls, spec: AggregationWindowSpec) -> "SlidingWindowAggregator":
        """Aggregator configured from the window spec a FeaturePlan exports."""
        return cls(
            windows=(WindowSpec("primary", spec.window_seconds),),
            bucket_seconds=spec.bucket_seconds,
        )

    # ------------------------------------------------------------------
    @property
    def primary_window(self) -> WindowSpec:
        """The first configured window (emits the unprefixed feature names)."""
        return self.windows[0]

    @property
    def window_spec(self) -> AggregationWindowSpec:
        """The primary window as a serialisable plan spec."""
        return AggregationWindowSpec(
            window_seconds=self.primary_window.window_seconds,
            bucket_seconds=self.bucket_seconds,
        )

    @property
    def watermark(self) -> float:
        """Highest event time ingested so far (``-inf`` before any event)."""
        return self._watermark

    @property
    def feature_names(self) -> List[str]:
        """Primary-window names plus suffixed copies per extra window."""
        names = list(AGGREGATION_FEATURE_NAMES)
        for spec in self.windows[1:]:
            names.extend(f"{base}_{spec.name}" for base in AGGREGATION_FEATURE_NAMES)
        return names

    def account_ids(self) -> List[str]:
        """Accounts with any non-evicted bucket (sorted)."""
        return sorted(self._accounts)

    def stats(self) -> Dict[str, float]:
        """Operational counters: ingests, late drops, evictions, live state."""
        return {
            "events_ingested": float(self.events_ingested),
            "late_events_dropped": float(self.late_events_dropped),
            "buckets_evicted": float(self.buckets_evicted),
            "accounts": float(len(self._accounts)),
            "buckets": float(sum(len(b) for b in self._accounts.values())),
        }

    # ------------------------------------------------------------------
    # Ingest path
    # ------------------------------------------------------------------
    def _bucket_time(self, event_time: float) -> float:
        return math.floor(event_time / self.bucket_seconds) * self.bucket_seconds

    def _evict(self, user_id: str) -> None:
        """Drop the touched account's buckets that no window can ever see."""
        buckets = self._accounts.get(user_id)
        if not buckets:
            return
        cutoff = self._watermark - self._horizon
        expired = [bucket_time for bucket_time in buckets if bucket_time <= cutoff]
        for bucket_time in expired:
            del buckets[bucket_time]
        self.buckets_evicted += len(expired)
        if not buckets:
            del self._accounts[user_id]

    def ingest(self, txn: Transaction) -> bool:
        """Fold one transaction into the window state.

        Returns False (and counts the event as dropped) when the event is at
        or beyond the retention horizon — older than
        ``watermark - (max_window + allowed_lateness)`` — since no permitted
        query can ever see it.
        """
        event_time = transaction_event_time(txn)
        if event_time <= self._watermark - self._horizon:
            self.late_events_dropped += 1
            return False
        bucket_time = self._bucket_time(event_time)

        payer_bucket = self._accounts.setdefault(txn.payer_id, {}).get(bucket_time)
        if payer_bucket is None:
            payer_bucket = self._accounts[txn.payer_id][bucket_time] = _Bucket()
        payer_bucket.out_count += 1
        payer_bucket.out_sum += txn.amount
        payer_bucket.out_max = max(payer_bucket.out_max, txn.amount)
        if is_night_hour(txn.hour):
            payer_bucket.out_night += 1
        payer_bucket.payees.add(txn.payee_id)

        payee_bucket = self._accounts.setdefault(txn.payee_id, {}).get(bucket_time)
        if payee_bucket is None:
            payee_bucket = self._accounts[txn.payee_id][bucket_time] = _Bucket()
        payee_bucket.in_count += 1
        payee_bucket.in_sum += txn.amount
        payee_bucket.in_max = max(payee_bucket.in_max, txn.amount)
        payee_bucket.payers.add(txn.payer_id)

        self.events_ingested += 1
        if event_time > self._watermark:
            self._watermark = event_time
            self._evict(txn.payer_id)
            self._evict(txn.payee_id)
        self._ingests_since_prune += 1
        if self._ingests_since_prune >= self.prune_interval:
            self.prune()
        return True

    def ingest_many(self, transactions: Iterable[Transaction]) -> int:
        """Ingest a stream in arrival order; returns how many were applied."""
        applied = 0
        for txn in transactions:
            applied += 1 if self.ingest(txn) else 0
        return applied

    def replay(self, transactions: Iterable[Transaction]) -> "SlidingWindowAggregator":
        """Ingest a historical batch as an event-time stream.

        Sorted by (event time, transaction id) — the same total order every
        other replay path uses — so the resulting state is independent of the
        input list's permutation.
        """
        self.ingest_many(sorted(transactions, key=event_order))
        return self

    def prune(self) -> int:
        """Evict expired buckets of *every* account (also runs automatically
        every ``prune_interval`` ingests); returns the evicted bucket count."""
        before = self.buckets_evicted
        for user_id in list(self._accounts):
            self._evict(user_id)
        self._ingests_since_prune = 0
        return self.buckets_evicted - before

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------
    def _window_row(
        self, user_id: str, window_seconds: float, as_of: float
    ) -> Tuple[Dict[str, float], Set[str]]:
        """(aggregate row, in-window payer set) for one account and window.

        Buckets are folded in ascending time order so the result is a pure
        function of the in-window event set, independent of arrival order.
        """
        out_count = 0
        out_sum = 0.0
        out_max = 0.0
        out_night = 0
        in_count = 0
        in_sum = 0.0
        in_max = 0.0
        payees: Set[str] = set()
        payers: Set[str] = set()
        buckets = self._accounts.get(user_id)
        if buckets:
            window_start = as_of - window_seconds
            # Filter to the in-window keys before sorting: a short window over
            # a long retention horizon folds only its own few buckets.
            for bucket_time in sorted(
                key for key in buckets if window_start < key <= as_of
            ):
                bucket = buckets[bucket_time]
                out_count += bucket.out_count
                out_sum += bucket.out_sum
                out_max = max(out_max, bucket.out_max)
                out_night += bucket.out_night
                payees.update(bucket.payees)
                in_count += bucket.in_count
                in_sum += bucket.in_sum
                in_max = max(in_max, bucket.in_max)
                payers.update(bucket.payers)
        row = build_aggregate_row(
            out_count=out_count,
            out_amount_sum=out_sum,
            out_amount_max=out_max,
            out_night_count=out_night,
            num_payees=len(payees),
            in_count=in_count,
            in_amount_sum=in_sum,
            in_amount_max=in_max,
            num_payers=len(payers),
        )
        return row, payers

    def _resolve_as_of(self, as_of: Optional[float]) -> float:
        return self._watermark if as_of is None else float(as_of)

    def user_row(self, user_id: str, *, as_of: Optional[float] = None) -> Dict[str, float]:
        """Primary-window aggregate row (same keys as the batch ``user_row``)."""
        row, _ = self._window_row(
            user_id, self.primary_window.window_seconds, self._resolve_as_of(as_of)
        )
        return row

    def hbase_row(self, user_id: str, *, as_of: Optional[float] = None) -> Dict[str, object]:
        """The serialised aggregate row written through to Ali-HBase.

        ``payers`` is a frozenset cell: equality is order-free and the online
        new-payer membership check stays O(1) however many in-window payers a
        hot merchant accumulates.
        """
        row, payers = self._window_row(
            user_id, self.primary_window.window_seconds, self._resolve_as_of(as_of)
        )
        serialised: Dict[str, object] = dict(row)
        serialised["payers"] = frozenset(payers)
        return serialised

    def snapshot_rows(self, *, as_of: Optional[float] = None) -> Dict[str, Dict[str, object]]:
        """``user_id -> hbase_row`` for every tracked account (deterministic)."""
        return {user_id: self.hbase_row(user_id, as_of=as_of) for user_id in self.account_ids()}

    def features_for(self, txn: Transaction, *, as_of: Optional[float] = None) -> np.ndarray:
        """The multi-window feature vector for one transaction.

        ``as_of`` defaults to the transaction's own event time — the true
        event-time semantics: the window ends at this transaction, and
        (because serving scores *before* ingesting) does not include it.
        """
        at = transaction_event_time(txn) if as_of is None else float(as_of)
        values: List[float] = []
        for spec in self.windows:
            payer_row, _ = self._window_row(txn.payer_id, spec.window_seconds, at)
            payee_row, payee_payers = self._window_row(
                txn.payee_id, spec.window_seconds, at
            )
            enriched: Dict[str, object] = dict(payee_row)
            enriched["payers"] = payee_payers
            values.extend(aggregation_vector(payer_row, enriched, txn.payer_id))
        return np.asarray(values, dtype=np.float64)

    def transform(
        self, transactions: Sequence[Transaction], *, as_of: Optional[float] = None
    ) -> FeatureMatrix:
        """Batch-compatible feature matrix (read-only; nothing is ingested).

        With ``as_of`` unset every row is computed at the watermark, mirroring
        the batch aggregator's frozen-window ``transform``.
        """
        at = self._resolve_as_of(as_of)
        rows = np.zeros((len(transactions), len(self.feature_names)))
        for index, txn in enumerate(transactions):
            rows[index] = self.features_for(txn, as_of=at)
        return FeatureMatrix(
            feature_names=self.feature_names,
            values=rows,
            row_ids=[t.transaction_id for t in transactions],
            labels=np.array([float(t.is_fraud) for t in transactions]),
        )


class PointInTimeAggregationSource(PointInTimeAggregateProvider):
    """Training-time aggregation features with exact online semantics.

    The naive batch construction (fit one window, transform the training
    batch against it) lets every training transaction see its *own*
    contribution — and everything that happened after it inside the fitted
    window.  Online serving is score-then-ingest, so that construction is
    systematic train/serve skew; most visibly, a first-time payer→payee
    transfer trains as ``agg_payee_new_payer_fraction = 0`` but serves as 1.

    This source removes the skew: it merges the held history with the
    requested batch into one event-time stream and replays it through a
    :class:`SlidingWindowAggregator`, serving each requested transaction the
    instant before it is ingested — byte-for-byte the contract the
    :class:`~repro.serving.alipay.AlipayServer` replay applies online.
    """

    def __init__(
        self, config: AggregationConfig, history: Iterable[Transaction]
    ) -> None:
        config.validate()
        self.config = config
        # History is sorted once here; each uncached aggregation_block call
        # still replays it through a fresh engine (O(history) ingests), so
        # repeated identical batches are memoized below.
        self.history = sorted(history, key=event_order)
        #: batch -> computed block; bounded, insertion-order evicted.
        #: Train/evaluate across many model configurations reuse the same few
        #: batches, so repeats cost O(1) instead of a full replay.
        self._block_cache: Dict[Tuple, np.ndarray] = {}
        self._block_cache_limit = 8

    @property
    def window_spec(self) -> AggregationWindowSpec:
        return AggregationWindowSpec.from_config(self.config)

    def aggregation_block(self, transactions: Sequence[Transaction]) -> np.ndarray:
        """(len(transactions), 12) point-in-time aggregation feature block.

        A transaction id may appear multiple times in the batch (oversampled
        training rows): each copy is served then ingested in turn, so the
        k-th copy sees the k-1 before it — exactly as replaying the
        duplicated stream online would.
        """
        # The key covers every feature-relevant field, not just the id, so a
        # batch that reuses a transaction id with different content cannot
        # alias into a stale cached block.
        cache_key = tuple(
            (t.transaction_id, t.day, t.hour, t.payer_id, t.payee_id, t.amount)
            for t in transactions
        )
        cached = self._block_cache.get(cache_key)
        if cached is not None:
            return cached.copy()
        positions: Dict[str, List[int]] = {}
        for index, txn in enumerate(transactions):
            positions.setdefault(txn.transaction_id, []).append(index)
        stream = heapq.merge(
            (e for e in self.history if e.transaction_id not in positions),
            sorted(transactions, key=event_order),
            key=event_order,
        )
        engine = SlidingWindowAggregator(self.config)
        block = np.zeros((len(transactions), len(AGGREGATION_FEATURE_NAMES)))
        served: Dict[str, int] = {}
        for event in stream:
            occurrences = positions.get(event.transaction_id)
            if occurrences is not None:
                occurrence = served.get(event.transaction_id, 0)
                block[occurrences[occurrence]] = engine.features_for(event)
                served[event.transaction_id] = occurrence + 1
            engine.ingest(event)
        if len(self._block_cache) >= self._block_cache_limit:
            self._block_cache.pop(next(iter(self._block_cache)))
        self._block_cache[cache_key] = block
        return block.copy()
