"""Transaction-network layer.

The paper defines the transaction network G = (V, E) where nodes are users and
directed edges are transfer relationships (Definition 2).  This package
provides the graph data structure, a builder that constructs the network from
transaction records, random-walk corpus generation for DeepWalk, and the graph
statistics used by tests and examples (degree distributions, 2-hop
neighbourhoods, fraud "gathering" measurements).
"""

from repro.graph.network import TransactionNetwork
from repro.graph.builder import NetworkBuilder, build_network
from repro.graph.random_walk import RandomWalkConfig, RandomWalker, generate_walks
from repro.graph.metrics import (
    degree_statistics,
    two_hop_neighbors,
    gathering_coefficient,
    shared_neighbor_fraction,
)

__all__ = [
    "TransactionNetwork",
    "NetworkBuilder",
    "build_network",
    "RandomWalkConfig",
    "RandomWalker",
    "generate_walks",
    "degree_statistics",
    "two_hop_neighbors",
    "gathering_coefficient",
    "shared_neighbor_fraction",
]
