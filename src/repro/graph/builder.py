"""Build the transaction network from transaction records.

Mirrors the paper's offline step where 90 days of transaction logs in
MaxCompute are aggregated into the user transaction network: one node per
user, one directed edge per distinct (transferor, transferee) pair with a
weight equal to the number (or total amount) of transfers.
"""

from __future__ import annotations

from typing import Iterable, Literal

from repro.datagen.schema import Transaction
from repro.exceptions import GraphError
from repro.graph.network import TransactionNetwork

EdgeWeighting = Literal["count", "amount", "log_amount"]


class NetworkBuilder:
    """Incremental transaction-network builder.

    Parameters
    ----------
    weighting:
        How repeated transfers accumulate into the edge weight:
        ``"count"`` adds 1 per transfer, ``"amount"`` adds the transferred
        amount, ``"log_amount"`` adds ``log1p(amount)`` (dampens whales).
    min_edge_weight:
        Edges whose accumulated weight stays below this threshold are dropped
        when :meth:`finish` is called; pruning rare one-off transfers keeps the
        random walks focused on recurring relationships.
    """

    def __init__(
        self,
        *,
        weighting: EdgeWeighting = "count",
        min_edge_weight: float = 0.0,
    ) -> None:
        if weighting not in ("count", "amount", "log_amount"):
            raise GraphError(f"unknown edge weighting {weighting!r}")
        if min_edge_weight < 0:
            raise GraphError("min_edge_weight must be non-negative")
        self.weighting = weighting
        self.min_edge_weight = min_edge_weight
        self._network = TransactionNetwork()

    # ------------------------------------------------------------------
    def add(self, transaction: Transaction) -> None:
        """Fold one transaction into the network."""
        weight = self._edge_weight(transaction)
        self._network.add_edge(transaction.payer_id, transaction.payee_id, weight)

    def add_many(self, transactions: Iterable[Transaction]) -> None:
        for transaction in transactions:
            self.add(transaction)

    def finish(self) -> TransactionNetwork:
        """Return the built network, applying edge pruning if configured."""
        if self.min_edge_weight <= 0:
            return self._network
        pruned = TransactionNetwork()
        for node in self._network.nodes():
            pruned.add_node(node)
        for payer, payee, weight in self._network.edges():
            if weight >= self.min_edge_weight:
                pruned.add_edge(payer, payee, weight)
        return pruned

    # ------------------------------------------------------------------
    def _edge_weight(self, transaction: Transaction) -> float:
        if self.weighting == "count":
            return 1.0
        if self.weighting == "amount":
            return max(transaction.amount, 1e-9)
        import math

        return math.log1p(max(transaction.amount, 0.0))


def build_network(
    transactions: Iterable[Transaction],
    *,
    weighting: EdgeWeighting = "count",
    min_edge_weight: float = 0.0,
) -> TransactionNetwork:
    """Convenience wrapper: build a network from an iterable of transactions."""
    builder = NetworkBuilder(weighting=weighting, min_edge_weight=min_edge_weight)
    builder.add_many(transactions)
    return builder.finish()
