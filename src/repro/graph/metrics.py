"""Graph statistics used in the analysis and tests.

These quantify the paper's qualitative observations: victims of the same
fraudster are 2-hop neighbours of each other ("gathering" behaviour), and
fraudster nodes accumulate unusually many inbound edges from diverse
communities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Set

import numpy as np

from repro.graph.network import TransactionNetwork


@dataclass
class DegreeStatistics:
    """Summary of the degree distribution of a transaction network."""

    mean_in_degree: float
    mean_out_degree: float
    max_in_degree: int
    max_out_degree: int
    num_isolated: int


def degree_statistics(network: TransactionNetwork) -> DegreeStatistics:
    """Compute degree summary statistics."""
    nodes = network.nodes()
    if not nodes:
        return DegreeStatistics(0.0, 0.0, 0, 0, 0)
    in_degrees = np.array([network.in_degree(n) for n in nodes])
    out_degrees = np.array([network.out_degree(n) for n in nodes])
    isolated = int(np.sum((in_degrees + out_degrees) == 0))
    return DegreeStatistics(
        mean_in_degree=float(in_degrees.mean()),
        mean_out_degree=float(out_degrees.mean()),
        max_in_degree=int(in_degrees.max()),
        max_out_degree=int(out_degrees.max()),
        num_isolated=isolated,
    )


def two_hop_neighbors(network: TransactionNetwork, node: str) -> Set[str]:
    """Nodes reachable in exactly two undirected hops from ``node``.

    The node itself and its 1-hop neighbours are excluded.
    """
    one_hop = set(network.neighbors(node))
    two_hop: Set[str] = set()
    for neighbor in one_hop:
        two_hop.update(network.neighbors(neighbor))
    two_hop.discard(node)
    return two_hop - one_hop


def shared_neighbor_fraction(
    network: TransactionNetwork, nodes: Iterable[str]
) -> float:
    """Fraction of node pairs in ``nodes`` that share at least one neighbour.

    For the victims of one fraudster this is 1.0 by construction (they all
    point at the fraudster), which is exactly the paper's Figure 2 intuition.
    """
    node_list = [n for n in nodes if n in network]
    if len(node_list) < 2:
        return 0.0
    neighbor_sets: Dict[str, Set[str]] = {
        n: set(network.neighbors(n)) for n in node_list
    }
    pairs = 0
    shared = 0
    for i, a in enumerate(node_list):
        for b in node_list[i + 1 :]:
            pairs += 1
            if neighbor_sets[a] & neighbor_sets[b]:
                shared += 1
    return shared / pairs if pairs else 0.0


def gathering_coefficient(
    network: TransactionNetwork, fraudster_victims: Dict[str, Iterable[str]]
) -> float:
    """Average shared-neighbour fraction over every fraudster's victim set.

    A value close to 1 means victims of each fraudster form a tight 2-hop
    cluster around the fraudster node, i.e. the aggregated data carries signal
    beyond individual transactions.
    """
    values = []
    for victims in fraudster_victims.values():
        fraction = shared_neighbor_fraction(network, victims)
        if fraction > 0 or len(list(victims)) >= 2:
            values.append(fraction)
    return float(np.mean(values)) if values else 0.0
