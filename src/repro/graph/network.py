"""Directed, weighted transaction network.

The structure is intentionally simple and dependency-free: adjacency maps of
``node -> {neighbor -> weight}`` in both directions, with integer indexing for
the embedding layers.  It supports the operations the reproduction needs —
edge accumulation from repeated transfers, undirected neighbour views for
random walks, per-node degrees and conversion to ``networkx`` for analysis.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.exceptions import GraphError


class TransactionNetwork:
    """Directed multigraph of transfer relationships, with edge weights.

    Repeated transfers between the same (payer, payee) pair accumulate weight,
    mirroring how the paper aggregates 90 days of records into one network.
    """

    def __init__(self) -> None:
        self._out: Dict[str, Dict[str, float]] = {}
        self._in: Dict[str, Dict[str, float]] = {}
        self._node_index: Dict[str, int] = {}
        self._index_node: List[str] = []
        self._num_edges = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: str) -> int:
        """Ensure ``node`` exists; return its integer index."""
        if node not in self._node_index:
            self._node_index[node] = len(self._index_node)
            self._index_node.append(node)
            self._out.setdefault(node, {})
            self._in.setdefault(node, {})
        return self._node_index[node]

    def add_edge(self, payer: str, payee: str, weight: float = 1.0) -> None:
        """Add (or reinforce) a transfer edge from ``payer`` to ``payee``."""
        if payer == payee:
            raise GraphError("self loops are not allowed in the transaction network")
        if weight <= 0:
            raise GraphError(f"edge weight must be positive, got {weight}")
        self.add_node(payer)
        self.add_node(payee)
        if payee not in self._out[payer]:
            self._num_edges += 1
        self._out[payer][payee] = self._out[payer].get(payee, 0.0) + weight
        self._in[payee][payer] = self._in[payee].get(payer, 0.0) + weight

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._index_node)

    @property
    def num_edges(self) -> int:
        """Number of distinct directed edges."""
        return self._num_edges

    def __contains__(self, node: str) -> bool:
        return node in self._node_index

    def __len__(self) -> int:
        return self.num_nodes

    def nodes(self) -> List[str]:
        """All node ids in insertion order (stable across runs)."""
        return list(self._index_node)

    def edges(self) -> Iterator[Tuple[str, str, float]]:
        """Iterate over (payer, payee, weight) triples."""
        for payer, targets in self._out.items():
            for payee, weight in targets.items():
                yield payer, payee, weight

    def node_index(self, node: str) -> int:
        """Integer index of ``node`` (stable, used by the embedding matrices)."""
        try:
            return self._node_index[node]
        except KeyError as exc:
            raise GraphError(f"unknown node {node!r}") from exc

    def node_at(self, index: int) -> str:
        try:
            return self._index_node[index]
        except IndexError as exc:
            raise GraphError(f"node index {index} out of range") from exc

    def has_edge(self, payer: str, payee: str) -> bool:
        return payee in self._out.get(payer, {})

    def edge_weight(self, payer: str, payee: str) -> float:
        return self._out.get(payer, {}).get(payee, 0.0)

    # ------------------------------------------------------------------
    # Neighbourhoods and degrees
    # ------------------------------------------------------------------
    def successors(self, node: str) -> Dict[str, float]:
        """Outgoing neighbours (payees) with accumulated weights."""
        if node not in self._node_index:
            raise GraphError(f"unknown node {node!r}")
        return dict(self._out[node])

    def predecessors(self, node: str) -> Dict[str, float]:
        """Incoming neighbours (payers) with accumulated weights."""
        if node not in self._node_index:
            raise GraphError(f"unknown node {node!r}")
        return dict(self._in[node])

    def neighbors(self, node: str) -> Dict[str, float]:
        """Undirected neighbour view (used by random walks)."""
        if node not in self._node_index:
            raise GraphError(f"unknown node {node!r}")
        merged: Dict[str, float] = dict(self._out[node])
        for neighbor, weight in self._in[node].items():
            merged[neighbor] = merged.get(neighbor, 0.0) + weight
        return merged

    def out_degree(self, node: str) -> int:
        return len(self.successors(node))

    def in_degree(self, node: str) -> int:
        return len(self.predecessors(node))

    def degree(self, node: str) -> int:
        return len(self.neighbors(node))

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Export to a ``networkx.DiGraph`` for ad-hoc analysis."""
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(self.nodes())
        graph.add_weighted_edges_from(self.edges())
        return graph

    def subgraph(self, nodes: Iterable[str]) -> "TransactionNetwork":
        """Induced subgraph on ``nodes`` (unknown ids are ignored)."""
        keep = {n for n in nodes if n in self._node_index}
        sub = TransactionNetwork()
        for node in keep:
            sub.add_node(node)
        for payer in keep:
            for payee, weight in self._out[payer].items():
                if payee in keep:
                    sub.add_edge(payer, payee, weight)
        return sub

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TransactionNetwork(nodes={self.num_nodes}, edges={self.num_edges})"
