"""Random-walk corpus generation for DeepWalk.

The paper configures DeepWalk with a walk length of 50 and a number of
samplings of 100 (each node is used as the first node of 100 walks), then
feeds the linear node sequences to skip-gram with negative sampling.  Walks
treat the transaction network as undirected and can be weighted by edge
weights, which keeps recurring transfer relationships prominent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

import numpy as np

from repro.exceptions import GraphError
from repro.graph.network import TransactionNetwork
from repro.rng import SeedLike, ensure_rng


@dataclass
class RandomWalkConfig:
    """Configuration of the random-walk corpus.

    ``num_walks_per_node`` is the paper's "number of sampling" hyperparameter
    (Table 2 sweeps 25/50/100/200); ``walk_length`` is 50 in the paper.
    """

    walk_length: int = 50
    num_walks_per_node: int = 100
    weighted: bool = True
    seed: int | None = None

    def validate(self) -> None:
        if self.walk_length < 2:
            raise GraphError("walk_length must be at least 2")
        if self.num_walks_per_node < 1:
            raise GraphError("num_walks_per_node must be at least 1")


class RandomWalker:
    """Generates truncated random walks over a :class:`TransactionNetwork`."""

    def __init__(
        self,
        network: TransactionNetwork,
        config: RandomWalkConfig | None = None,
        *,
        rng: SeedLike = None,
    ) -> None:
        self.network = network
        self.config = config or RandomWalkConfig()
        self.config.validate()
        self._rng = ensure_rng(self.config.seed if rng is None else rng)
        # Pre-compute neighbour arrays and cumulative transition probabilities
        # once; the walk loop only does a binary search per step.
        self._neighbors: List[np.ndarray] = []
        self._cumulative: List[np.ndarray | None] = []
        for node in network.nodes():
            neighbor_weights = network.neighbors(node)
            if neighbor_weights:
                names = np.array(
                    [network.node_index(n) for n in neighbor_weights], dtype=np.int64
                )
                if self.config.weighted:
                    weights = np.array(list(neighbor_weights.values()), dtype=np.float64)
                    cumulative = np.cumsum(weights / weights.sum())
                else:
                    cumulative = None
                self._neighbors.append(names)
                self._cumulative.append(cumulative)
            else:
                self._neighbors.append(np.empty(0, dtype=np.int64))
                self._cumulative.append(None)

    # ------------------------------------------------------------------
    def walk_from(self, start: str) -> List[str]:
        """One truncated random walk starting at ``start``."""
        start_index = self.network.node_index(start)
        indices = self._walk_indices(start_index)
        return [self.network.node_at(i) for i in indices]

    def _walk_indices(self, start_index: int) -> List[int]:
        walk = [start_index]
        current = start_index
        draws = self._rng.random(self.config.walk_length - 1)
        for step in range(self.config.walk_length - 1):
            neighbors = self._neighbors[current]
            if neighbors.size == 0:
                break
            cumulative = self._cumulative[current]
            if cumulative is None:
                position = int(draws[step] * neighbors.size)
                if position == neighbors.size:
                    position -= 1
            else:
                position = int(np.searchsorted(cumulative, draws[step], side="right"))
                if position >= neighbors.size:
                    position = neighbors.size - 1
            current = int(neighbors[position])
            walk.append(current)
        return walk

    def iter_walks(self) -> Iterator[List[str]]:
        """Iterate over all walks (``num_walks_per_node`` per node).

        Node order is shuffled between passes, as in the original DeepWalk,
        which reduces optimisation-order artefacts in downstream skip-gram.
        """
        node_indices = np.arange(self.network.num_nodes)
        for _ in range(self.config.num_walks_per_node):
            self._rng.shuffle(node_indices)
            for index in node_indices:
                walk = self._walk_indices(int(index))
                yield [self.network.node_at(i) for i in walk]

    def generate(self) -> List[List[str]]:
        """Materialise the whole corpus as a list of node-id sequences."""
        return list(self.iter_walks())


def generate_walks(
    network: TransactionNetwork,
    *,
    walk_length: int = 50,
    num_walks_per_node: int = 100,
    weighted: bool = True,
    rng: SeedLike = None,
) -> List[List[str]]:
    """Convenience wrapper mirroring the paper's DeepWalk configuration."""
    config = RandomWalkConfig(
        walk_length=walk_length,
        num_walks_per_node=num_walks_per_node,
        weighted=weighted,
    )
    return RandomWalker(network, config, rng=rng).generate()


def split_corpus(walks: Sequence[List[str]], num_partitions: int) -> List[List[List[str]]]:
    """Partition a walk corpus across workers (used by distributed DeepWalk)."""
    if num_partitions <= 0:
        raise GraphError("num_partitions must be positive")
    partitions: List[List[List[str]]] = [[] for _ in range(num_partitions)]
    for index, walk in enumerate(walks):
        partitions[index % num_partitions].append(list(walk))
    return partitions
