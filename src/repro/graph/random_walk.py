"""Random-walk corpus generation for DeepWalk.

The paper configures DeepWalk with a walk length of 50 and a number of
samplings of 100 (each node is used as the first node of 100 walks), then
feeds the linear node sequences to skip-gram with negative sampling.  Walks
treat the transaction network as undirected and can be weighted by edge
weights, which keeps recurring transfer relationships prominent.

The walker stores the graph as flat CSR-style arrays (``indptr`` +
neighbour/cumulative-probability arrays) and advances *all* walks of a batch
one step at a time with NumPy.  Weighted transitions use a single
``searchsorted`` over the stacked cumulative rows: entry ``k`` of the stacked
array holds ``source_row(k) + cumulative_probability(k)``, so the inverse-CDF
draw for node ``v`` is a binary search for ``v + u`` — no per-node Python loop.
:meth:`RandomWalker.iter_walk_batches` streams the corpus in bounded batches
so large corpora never have to be materialised.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Iterator, List, Sequence

import numpy as np

from repro.exceptions import GraphError
from repro.graph.network import TransactionNetwork
from repro.rng import SeedLike, ensure_rng


@dataclass
class RandomWalkConfig:
    """Configuration of the random-walk corpus.

    ``num_walks_per_node`` is the paper's "number of sampling" hyperparameter
    (Table 2 sweeps 25/50/100/200); ``walk_length`` is 50 in the paper.
    ``batch_size`` bounds how many walks advance together in the vectorised
    engine (and therefore the memory footprint of one streamed batch).
    """

    walk_length: int = 50
    num_walks_per_node: int = 100
    weighted: bool = True
    batch_size: int = 512
    seed: int | None = None

    def validate(self) -> None:
        if self.walk_length < 2:
            raise GraphError("walk_length must be at least 2")
        if self.num_walks_per_node < 1:
            raise GraphError("num_walks_per_node must be at least 1")
        if self.batch_size < 1:
            raise GraphError("batch_size must be at least 1")


class RandomWalker:
    """Generates truncated random walks over a :class:`TransactionNetwork`."""

    def __init__(
        self,
        network: TransactionNetwork,
        config: RandomWalkConfig | None = None,
        *,
        rng: SeedLike = None,
    ) -> None:
        self.network = network
        self.config = config or RandomWalkConfig()
        self.config.validate()
        self._rng = ensure_rng(self.config.seed if rng is None else rng)

        # Flatten the adjacency into CSR arrays once; every walk step is then
        # pure NumPy over these.
        num_nodes = network.num_nodes
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        neighbor_blocks: List[np.ndarray] = []
        weight_blocks: List[np.ndarray] = []
        for index, node in enumerate(network.nodes()):
            neighbor_weights = network.neighbors(node)
            indptr[index + 1] = indptr[index] + len(neighbor_weights)
            if neighbor_weights:
                neighbor_blocks.append(
                    np.array([network.node_index(n) for n in neighbor_weights], dtype=np.int64)
                )
                weight_blocks.append(
                    np.array(list(neighbor_weights.values()), dtype=np.float64)
                )
        self._indptr = indptr
        self._degrees = np.diff(indptr)
        if neighbor_blocks:
            self._flat_neighbors = np.concatenate(neighbor_blocks)
        else:
            self._flat_neighbors = np.empty(0, dtype=np.int64)

        if self.config.weighted and weight_blocks:
            # Stacked inverse-CDF array: row v's cumulative probabilities live
            # in (v, v+1], with the last entry pinned to exactly v + 1 so a
            # draw u in [0, 1) always lands inside the row.
            stacked = np.empty(self._flat_neighbors.shape[0], dtype=np.float64)
            blocks = iter(weight_blocks)
            for index in range(num_nodes):
                start, end = indptr[index], indptr[index + 1]
                if end <= start:
                    continue
                weights = next(blocks)
                cumulative = np.cumsum(weights / weights.sum())
                cumulative[-1] = 1.0
                stacked[start:end] = index + cumulative
            self._stacked_cumulative: np.ndarray | None = stacked
        else:
            self._stacked_cumulative = None

    # ------------------------------------------------------------------
    def reseeded(self, rng: SeedLike) -> "RandomWalker":
        """A walker sharing this walker's flattened graph arrays, fresh RNG.

        Flattening the adjacency is the expensive part of construction;
        streaming consumers that replay the corpus several times (e.g. the
        distributed trainer cycling over epochs) clone instead of rebuilding.
        """
        clone = copy.copy(self)
        clone._rng = ensure_rng(rng)
        return clone

    def walk_from(self, start: str) -> List[str]:
        """One truncated random walk starting at ``start``."""
        start_index = self.network.node_index(start)
        indices = self._walk_indices(start_index)
        return [self.network.node_at(i) for i in indices]

    def _walk_indices(self, start_index: int) -> List[int]:
        row = self.walk_batch(np.array([start_index], dtype=np.int64))[0]
        return [int(i) for i in row if i >= 0]

    def walk_batch(self, start_indices: Sequence[int] | np.ndarray) -> np.ndarray:
        """Advance walks for all ``start_indices`` together, one step at a time.

        Returns a ``(len(start_indices), walk_length)`` int64 array; walks that
        hit an isolated node terminate early and are padded with ``-1``.
        """
        starts = np.asarray(start_indices, dtype=np.int64)
        length = self.config.walk_length
        # One upfront (B, L-1) draw block: the PCG stream fills it in the same
        # order as per-walk upfront draws, so batched and walk-at-a-time
        # generation produce bit-identical corpora for any batch size.
        draws = self._rng.random((starts.shape[0], length - 1))
        walks = np.full((starts.shape[0], length), -1, dtype=np.int64)
        walks[:, 0] = starts
        current = starts.copy()
        active = np.flatnonzero(self._degrees[starts] > 0)
        for step in range(1, length):
            if active.size == 0:
                break
            nodes = current[active]
            step_draws = draws[active, step - 1]
            if self._stacked_cumulative is not None:
                positions = np.searchsorted(
                    self._stacked_cumulative, nodes + step_draws, side="right"
                )
                positions = np.minimum(positions, self._indptr[nodes + 1] - 1)
            else:
                offsets = (step_draws * self._degrees[nodes]).astype(np.int64)
                offsets = np.minimum(offsets, self._degrees[nodes] - 1)
                positions = self._indptr[nodes] + offsets
            next_nodes = self._flat_neighbors[positions]
            current[active] = next_nodes
            walks[active, step] = next_nodes
            active = active[self._degrees[next_nodes] > 0]
        return walks

    def batch_to_walks(self, batch: np.ndarray) -> List[List[str]]:
        """Convert a padded index batch back to node-id sequences."""
        return [
            [self.network.node_at(int(index)) for index in row if index >= 0] for row in batch
        ]

    def iter_walk_batches(self, batch_size: int | None = None) -> Iterator[np.ndarray]:
        """Stream the corpus as padded ``(batch, walk_length)`` index arrays.

        Node order is shuffled between passes, as in the original DeepWalk,
        which reduces optimisation-order artefacts in downstream skip-gram.
        The full corpus is never materialised; each batch holds at most
        ``batch_size`` walks.
        """
        size = self.config.batch_size if batch_size is None else int(batch_size)
        if size < 1:
            raise GraphError("batch_size must be at least 1")
        node_indices = np.arange(self.network.num_nodes)
        for _ in range(self.config.num_walks_per_node):
            self._rng.shuffle(node_indices)
            for start in range(0, node_indices.shape[0], size):
                yield self.walk_batch(node_indices[start : start + size])

    def iter_walks(self) -> Iterator[List[str]]:
        """Iterate over all walks (``num_walks_per_node`` per node)."""
        for batch in self.iter_walk_batches():
            yield from self.batch_to_walks(batch)

    def generate(self) -> List[List[str]]:
        """Materialise the whole corpus as a list of node-id sequences."""
        return list(self.iter_walks())


def generate_walks(
    network: TransactionNetwork,
    *,
    walk_length: int = 50,
    num_walks_per_node: int = 100,
    weighted: bool = True,
    rng: SeedLike = None,
) -> List[List[str]]:
    """Convenience wrapper mirroring the paper's DeepWalk configuration."""
    config = RandomWalkConfig(
        walk_length=walk_length,
        num_walks_per_node=num_walks_per_node,
        weighted=weighted,
    )
    return RandomWalker(network, config, rng=rng).generate()


def split_corpus(walks: Sequence[List[str]], num_partitions: int) -> List[List[List[str]]]:
    """Partition a walk corpus across workers (used by distributed DeepWalk)."""
    if num_partitions <= 0:
        raise GraphError("num_partitions must be positive")
    partitions: List[List[List[str]]] = [[] for _ in range(num_partitions)]
    for index, walk in enumerate(walks):
        partitions[index % num_partitions].append(list(walk))
    return partitions
