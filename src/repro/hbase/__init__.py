"""Ali-HBase substrate simulation.

Ali-HBase serves the online Model Server with per-user data: one column family
for basic features (qualifiers ``age``, ``gender``, ``trans_city`` ...) and one
for the user node embeddings (one qualifier per dimension), indexed by user-id
row keys and versioned by the date-time of each offline training run
(paper Figure 7).

The simulation provides a versioned column-family store with region sharding,
a write-ahead log, and a client API (``put`` / ``get`` / ``bulk_load`` /
``scan``) that the offline pipeline and the Model Server share.
"""

from repro.hbase.store import Cell, ColumnFamilyStore, HBaseTable
from repro.hbase.region import RegionServer, RegionRouter
from repro.hbase.wal import WriteAheadLog, WALEntry
from repro.hbase.client import HBaseClient

__all__ = [
    "Cell",
    "ColumnFamilyStore",
    "HBaseTable",
    "RegionServer",
    "RegionRouter",
    "WriteAheadLog",
    "WALEntry",
    "HBaseClient",
]
