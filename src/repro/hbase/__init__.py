"""Ali-HBase substrate simulation.

Ali-HBase serves the online Model Server with per-user data: one column family
for basic features (qualifiers ``age``, ``gender``, ``trans_city`` ...) and one
for the user node embeddings (one array-valued qualifier per embedding set),
indexed by user-id row keys and versioned by the date-time of each offline
training run (paper Figure 7).

The simulation provides a versioned column-family store with region sharding,
a write-ahead log, a client-side TTL row cache, and a client API (``put`` /
``get`` / ``multi_get`` / ``bulk_load`` / ``scan``) that the offline pipeline
and the Model Server share.
"""

from repro.hbase.store import Cell, ColumnFamilyStore, HBaseTable
from repro.hbase.region import RegionServer, RegionRouter
from repro.hbase.wal import WriteAheadLog, WALEntry
from repro.hbase.cache import RowCache
from repro.hbase.client import HBaseClient

__all__ = [
    "RowCache",
    "Cell",
    "ColumnFamilyStore",
    "HBaseTable",
    "RegionServer",
    "RegionRouter",
    "WriteAheadLog",
    "WALEntry",
    "HBaseClient",
]
