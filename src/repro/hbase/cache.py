"""TTL row cache in front of the column-family store.

The online hot path reads the same per-user rows over and over (active users
transact repeatedly within minutes, and the payee side of fraud "gathering"
patterns concentrates on few accounts), while the underlying rows only change
once per day when the offline pipeline bulk-loads a new version.  A small
time-bounded cache therefore absorbs most point reads.  Writes through the
client invalidate the affected row eagerly, so a cache hit can never serve a
value older than the last local write.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

#: (column family, version) — the per-row cache sub-key.
_SubKey = Tuple[str, Optional[int]]
#: (table, row key) — the invalidation unit.
_RowKey = Tuple[str, str]


def _copy_row(row: Dict[str, Any]) -> Dict[str, Any]:
    """Copy a row deeply enough that callers cannot mutate cached state.

    Cell values are scalars or array-valued embedding cells (lists/tuples of
    floats); mutable list values get their own copy."""
    return {
        qualifier: list(value) if isinstance(value, list) else value
        for qualifier, value in row.items()
    }


class RowCache:
    """Bounded TTL cache of row reads, invalidated per (table, row key)."""

    def __init__(self, *, ttl_seconds: float = 30.0, max_rows: int = 4096):
        if ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive")
        if max_rows < 1:
            raise ValueError("max_rows must be at least 1")
        self.ttl_seconds = float(ttl_seconds)
        self.max_rows = int(max_rows)
        self._rows: "OrderedDict[_RowKey, Dict[_SubKey, Tuple[float, Dict[str, Any]]]]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def get(
        self,
        table: str,
        row_key: str,
        column_family: str,
        version: Optional[int],
        *,
        now: Optional[float] = None,
    ) -> Optional[Dict[str, Any]]:
        """Cached row dict, or None on miss/expiry (a copy, safe to mutate)."""
        now = time.monotonic() if now is None else now
        entry = self._rows.get((table, row_key))
        if entry is not None:
            cached = entry.get((column_family, version))
            if cached is not None:
                expires_at, row = cached
                if now < expires_at:
                    self.hits += 1
                    self._rows.move_to_end((table, row_key))
                    return _copy_row(row)
                del entry[(column_family, version)]
                if not entry:
                    # Drop the empty row entry so expired rows stop occupying
                    # max_rows capacity (and len()/stats() stay truthful).
                    del self._rows[(table, row_key)]
        self.misses += 1
        return None

    def put(
        self,
        table: str,
        row_key: str,
        column_family: str,
        version: Optional[int],
        row: Dict[str, Any],
        *,
        now: Optional[float] = None,
    ) -> None:
        now = time.monotonic() if now is None else now
        entry = self._rows.setdefault((table, row_key), {})
        entry[(column_family, version)] = (now + self.ttl_seconds, _copy_row(row))
        self._rows.move_to_end((table, row_key))
        while len(self._rows) > self.max_rows:
            self._rows.popitem(last=False)

    def invalidate(
        self, table: str, row_key: str, column_family: Optional[str] = None
    ) -> None:
        """Drop cached reads of one row (called on write).

        A put only mutates one column family, so passing ``column_family``
        keeps the row's *other* families cached — during streaming aggregate
        write-through this is what keeps the (unchanged) profile and
        embedding reads of a just-scored account hot.  With ``None`` the
        whole row is dropped (conservative full invalidation).
        """
        if column_family is None:
            self._rows.pop((table, row_key), None)
            return
        entry = self._rows.get((table, row_key))
        if entry is None:
            return
        for sub_key in [key for key in entry if key[0] == column_family]:
            del entry[sub_key]
        if not entry:
            del self._rows[(table, row_key)]

    def clear(self) -> None:
        self._rows.clear()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def stats(self) -> Dict[str, float]:
        total = self.hits + self.misses
        return {
            "rows": float(len(self._rows)),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "hit_rate": self.hits / total if total else 0.0,
        }
