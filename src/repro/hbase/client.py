"""HBase client API.

The client is what both ends of the TitAnt system use:

* the offline pipeline bulk-loads per-user basic features and node embeddings
  after every training run (one new version per run),
* the Model Server point-reads a user's latest row at prediction time.

Writes go through the write-ahead log and the region router before reaching
the column-family store, mirroring a real deployment's write path.
"""

from __future__ import annotations

import weakref
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import RowNotFoundError, StorageError, TableNotFoundError
from repro.hbase.cache import RowCache
from repro.hbase.region import RegionRouter
from repro.hbase.store import HBaseTable
from repro.hbase.wal import WriteAheadLog

#: Column-family names used by the TitAnt feature store (paper Figure 7).
BASIC_FEATURES_FAMILY = "basic_features"
EMBEDDINGS_FAMILY = "user_node_embeddings"
#: Per-user sliding-window aggregates, written through by the online
#: streaming feature engine on every ingested transaction (and bulk-seeded by
#: the offline pipeline from the same windowing definition).
AGGREGATES_FAMILY = "transaction_aggregates"


class HBaseClient:
    """Client with table management, puts/gets, batched reads and scans.

    ``row_cache_ttl_s`` enables a small client-side TTL row cache (0 turns it
    off).  Rows only change when the offline pipeline publishes a new daily
    version, and every write through this client invalidates the cached row,
    so the cache is transparent to callers.
    """

    def __init__(
        self,
        *,
        num_regions: int = 4,
        max_versions: int = 5,
        row_cache_ttl_s: float = 30.0,
        row_cache_rows: int = 4096,
        wal_max_entries: Optional[int] = None,
    ):
        self._tables: Dict[str, HBaseTable] = {}
        self._router = RegionRouter(num_regions=num_regions)
        # Unbounded by default (full crash recovery); long-running streaming
        # write-through deployments can cap retained entries like a real
        # region server rotates WALs.
        self._wal = WriteAheadLog(max_entries=wal_max_entries)
        self._max_versions = max_versions
        self._cache: Optional[RowCache] = (
            RowCache(ttl_seconds=row_cache_ttl_s, max_rows=row_cache_rows)
            if row_cache_ttl_s > 0
            else None
        )
        # Every connection() handle registers its cache here, and writes
        # through ANY handle invalidate the row in EVERY attached cache —
        # the cross-connection analogue of the single-client invalidation
        # that keeps "a cache hit never serves a value older than the last
        # local write" true for the whole fleet.  Weak references: a
        # discarded connection's cache must not stay pinned (and must not
        # keep costing an invalidation per write) for the cluster's lifetime.
        self._cache_registry: List["weakref.ref[RowCache]"] = []
        if self._cache is not None:
            self._cache_registry.append(weakref.ref(self._cache))

    def connection(
        self,
        *,
        row_cache_ttl_s: Optional[float] = None,
        row_cache_rows: Optional[int] = None,
    ) -> "HBaseClient":
        """A new client handle over this client's storage substrate.

        The returned client shares the tables, region router and WAL (one
        cluster) but owns its *own* client-side row cache — the shape of a
        real fleet, where every Model Server process runs its own HBase
        client with a private cache.  Account-sharded routing
        (:class:`~repro.serving.router.ServingRouter`) exists precisely to
        keep these per-connection caches hot: an account that always lands on
        the same replica is cached once fleet-wide instead of once per
        replica.  Cache TTL/capacity default to the parent connection's.
        """
        if row_cache_ttl_s is None:
            row_cache_ttl_s = self._cache.ttl_seconds if self._cache is not None else 0.0
        if row_cache_rows is None:
            row_cache_rows = self._cache.max_rows if self._cache is not None else 4096
        clone = object.__new__(HBaseClient)
        clone._tables = self._tables
        clone._router = self._router
        clone._wal = self._wal
        clone._max_versions = self._max_versions
        clone._cache = (
            RowCache(ttl_seconds=row_cache_ttl_s, max_rows=row_cache_rows)
            if row_cache_ttl_s > 0
            else None
        )
        clone._cache_registry = self._cache_registry
        if clone._cache is not None:
            self._cache_registry.append(weakref.ref(clone._cache))
        return clone

    # ------------------------------------------------------------------
    # Table management
    # ------------------------------------------------------------------
    def create_table(
        self, name: str, column_families: Iterable[str], *, if_not_exists: bool = True
    ) -> HBaseTable:
        """Create a table with the given column families (idempotent by default)."""
        if name in self._tables:
            if if_not_exists:
                return self._tables[name]
            raise StorageError(f"HBase table {name!r} already exists")
        table = HBaseTable(name, column_families, max_versions=self._max_versions)
        self._tables[name] = table
        return table

    def table(self, name: str) -> HBaseTable:
        """Look up a table handle; raises :class:`TableNotFoundError`."""
        try:
            return self._tables[name]
        except KeyError as exc:
            raise TableNotFoundError(f"HBase table {name!r} does not exist") from exc

    def list_tables(self) -> List[str]:
        """Names of every table in the store, sorted."""
        return sorted(self._tables)

    def create_feature_store(self, name: str = "titant_features") -> HBaseTable:
        """Create the feature-store table: basic features + embeddings
        (paper Figure 7) plus the streaming transaction-aggregate family."""
        return self.create_table(
            name, [BASIC_FEATURES_FAMILY, EMBEDDINGS_FAMILY, AGGREGATES_FAMILY]
        )

    # ------------------------------------------------------------------
    # Mutations and reads
    # ------------------------------------------------------------------
    def put(
        self,
        table_name: str,
        row_key: str,
        column_family: str,
        values: Mapping[str, Any],
        *,
        version: int,
    ) -> None:
        """Write one row's column-family cells (WAL first, caches invalidated)."""
        table = self.table(table_name)
        self._wal.append(table_name, row_key, column_family, values, version=version)
        self._router.record_write(row_key)
        dead_refs = False
        for cache_ref in self._cache_registry:
            cache = cache_ref()
            if cache is None:
                dead_refs = True
                continue
            cache.invalidate(table_name, row_key, column_family)
        if dead_refs:
            self._cache_registry[:] = [
                ref for ref in self._cache_registry if ref() is not None
            ]
        table.put(row_key, column_family, values, version=version)

    def get(
        self,
        table_name: str,
        row_key: str,
        column_family: str,
        *,
        version: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Point read of one row's family (latest version unless pinned)."""
        table = self.table(table_name)
        if self._cache is not None:
            cached = self._cache.get(table_name, row_key, column_family, version)
            if cached is not None:
                return cached
        self._router.record_read(row_key)
        row = table.get(row_key, column_family, version=version)
        if self._cache is not None:
            self._cache.put(table_name, row_key, column_family, version, row)
        return row

    def get_or_default(
        self,
        table_name: str,
        row_key: str,
        column_family: str,
        *,
        version: Optional[int] = None,
        default: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Point read that degrades to ``default`` for unseen users.

        A brand-new account has no row yet; the online predictor must still
        answer, so it falls back to a neutral default row.  A missing *table*
        is a deployment problem, not a cold user, and always raises
        :class:`TableNotFoundError` — only missing *rows* degrade.
        """
        self.table(table_name)  # raises TableNotFoundError before degrading
        try:
            return self.get(table_name, row_key, column_family, version=version)
        except RowNotFoundError:
            return dict(default or {})

    def multi_get(
        self,
        table_name: str,
        row_keys: Sequence[str],
        column_family: str,
        *,
        version: Optional[int] = None,
        default: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Dict[str, Any]]:
        """Batched point read for N row keys in one client call.

        This is the online hot-path primitive — instead of one round trip per
        user per column family, the Model Server fetches every row a batch of
        transactions needs with one ``multi_get`` per family.  Keys are
        deduplicated, satisfied from the row cache where possible, and the
        remainder read through the region router.  Missing rows map to a copy
        of ``default``.
        """
        table = self.table(table_name)
        results: Dict[str, Dict[str, Any]] = {}
        for row_key in dict.fromkeys(row_keys):
            if self._cache is not None:
                cached = self._cache.get(table_name, row_key, column_family, version)
                if cached is not None:
                    results[row_key] = cached
                    continue
            self._router.record_read(row_key)
            try:
                row = table.get(row_key, column_family, version=version)
            except RowNotFoundError:
                results[row_key] = dict(default or {})
                continue
            if self._cache is not None:
                self._cache.put(table_name, row_key, column_family, version, row)
            results[row_key] = row
        return results

    def bulk_load(
        self,
        table_name: str,
        column_family: str,
        rows: Mapping[str, Mapping[str, Any]],
        *,
        version: int,
    ) -> int:
        """Load many rows in one call (the offline pipeline's daily upload)."""
        count = 0
        for row_key, values in rows.items():
            self.put(table_name, row_key, column_family, values, version=version)
            count += 1
        return count

    def scan(
        self,
        table_name: str,
        column_family: str,
        *,
        prefix: str = "",
        version: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> List[Tuple[str, Dict[str, Any]]]:
        """Ordered prefix scan over one column family (offline tooling path)."""
        return self.table(table_name).scan(
            column_family, prefix=prefix, version=version, limit=limit
        )

    # ------------------------------------------------------------------
    # Operational introspection
    # ------------------------------------------------------------------
    def region_load_report(self) -> Dict[int, Dict[str, int]]:
        """Per-region read/write counters from the region router."""
        return self._router.load_report()

    def row_cache_stats(self) -> Dict[str, float]:
        """Hit/miss statistics of the client-side row cache (zeros when off)."""
        if self._cache is None:
            return {"rows": 0.0, "hits": 0.0, "misses": 0.0, "hit_rate": 0.0}
        return self._cache.stats()

    def wal_size(self) -> int:
        """Number of entries currently retained in the write-ahead log."""
        return len(self._wal)

    @property
    def wal(self) -> WriteAheadLog:
        """The write-ahead log (read access for durability tests/tooling)."""
        return self._wal

    def replay_wal_into(self, table_name: str) -> int:
        """Rebuild a (fresh) table from the WAL after a simulated crash."""
        table = self.table(table_name)
        return self._wal.replay(table, table_name=table_name)
