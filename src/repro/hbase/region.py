"""Region sharding.

HBase distributes a table's row-key space across region servers.  The
simulation hashes row keys onto a configurable number of regions so that the
client exercises the same routing step a real deployment performs, and so the
tests can assert that load spreads across regions.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List

from repro.exceptions import StorageError


@dataclass
class RegionServer:
    """One region server: counts the requests routed to it."""

    server_id: int
    read_requests: int = 0
    write_requests: int = 0
    rows_hosted: set = field(default_factory=set)

    def record_write(self, row_key: str) -> None:
        self.write_requests += 1
        self.rows_hosted.add(row_key)

    def record_read(self) -> None:
        self.read_requests += 1


class RegionRouter:
    """Deterministically routes row keys to region servers."""

    def __init__(self, num_regions: int = 4):
        if num_regions < 1:
            raise StorageError("num_regions must be at least 1")
        self.servers: List[RegionServer] = [RegionServer(server_id=i) for i in range(num_regions)]

    # ------------------------------------------------------------------
    def region_for(self, row_key: str) -> RegionServer:
        digest = hashlib.md5(row_key.encode("utf-8")).digest()
        index = int.from_bytes(digest[:4], "big") % len(self.servers)
        return self.servers[index]

    def record_write(self, row_key: str) -> RegionServer:
        server = self.region_for(row_key)
        server.record_write(row_key)
        return server

    def record_read(self, row_key: str) -> RegionServer:
        server = self.region_for(row_key)
        server.record_read()
        return server

    # ------------------------------------------------------------------
    def load_report(self) -> Dict[int, Dict[str, int]]:
        """Per-region request counts (used to verify balanced routing)."""
        return {
            server.server_id: {
                "reads": server.read_requests,
                "writes": server.write_requests,
                "rows": len(server.rows_hosted),
            }
            for server in self.servers
        }
