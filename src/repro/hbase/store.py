"""Versioned column-family storage.

The data model follows HBase/Bigtable: a table has named column families,
each cell is addressed by (row key, column family, qualifier) and keeps
multiple timestamped versions.  ``get`` returns the latest version by default
or the latest at/before a requested version — exactly what the Model Server
needs when it reads "the latest version of user node embeddings and basic
features" uploaded by each offline training run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.exceptions import RowNotFoundError, StorageError


@dataclass(frozen=True)
class Cell:
    """One versioned cell value."""

    row_key: str
    column_family: str
    qualifier: str
    value: Any
    version: int


class ColumnFamilyStore:
    """Cells of a single column family, organised by row key and qualifier."""

    def __init__(self, name: str, *, max_versions: int = 5):
        if max_versions < 1:
            raise StorageError("max_versions must be at least 1")
        self.name = name
        self.max_versions = max_versions
        #: row_key -> qualifier -> list of (version, value), newest last.
        self._rows: Dict[str, Dict[str, List[Tuple[int, Any]]]] = {}

    # ------------------------------------------------------------------
    def put(self, row_key: str, qualifier: str, value: Any, *, version: int) -> None:
        qualifiers = self._rows.setdefault(row_key, {})
        versions = qualifiers.setdefault(qualifier, [])
        versions.append((version, value))
        versions.sort(key=lambda item: item[0])
        if len(versions) > self.max_versions:
            del versions[: len(versions) - self.max_versions]

    def get(
        self, row_key: str, qualifier: str, *, version: Optional[int] = None
    ) -> Any:
        versions = self._rows.get(row_key, {}).get(qualifier)
        if not versions:
            raise RowNotFoundError(
                f"no cell for row {row_key!r} qualifier {qualifier!r} in family {self.name!r}"
            )
        if version is None:
            return versions[-1][1]
        eligible = [value for cell_version, value in versions if cell_version <= version]
        if not eligible:
            raise RowNotFoundError(
                f"no version <= {version} for row {row_key!r} qualifier {qualifier!r}"
            )
        return eligible[-1]

    def get_row(self, row_key: str, *, version: Optional[int] = None) -> Dict[str, Any]:
        qualifiers = self._rows.get(row_key)
        if not qualifiers:
            raise RowNotFoundError(f"row {row_key!r} not found in family {self.name!r}")
        result: Dict[str, Any] = {}
        for qualifier in qualifiers:
            try:
                result[qualifier] = self.get(row_key, qualifier, version=version)
            except RowNotFoundError:
                continue
        if not result:
            raise RowNotFoundError(
                f"row {row_key!r} has no cells at or before version {version}"
            )
        return result

    def has_row(self, row_key: str) -> bool:
        return row_key in self._rows

    def row_keys(self) -> List[str]:
        return sorted(self._rows)

    def cell_versions(self, row_key: str, qualifier: str) -> List[int]:
        return [version for version, _ in self._rows.get(row_key, {}).get(qualifier, [])]


class HBaseTable:
    """A table: named column families sharing the row-key space."""

    def __init__(self, name: str, column_families: Iterable[str], *, max_versions: int = 5):
        families = list(column_families)
        if not families:
            raise StorageError("an HBase table needs at least one column family")
        if len(set(families)) != len(families):
            raise StorageError("duplicate column family names")
        self.name = name
        self._families: Dict[str, ColumnFamilyStore] = {
            family: ColumnFamilyStore(family, max_versions=max_versions) for family in families
        }

    # ------------------------------------------------------------------
    def family(self, name: str) -> ColumnFamilyStore:
        try:
            return self._families[name]
        except KeyError as exc:
            raise StorageError(f"unknown column family {name!r} in table {self.name!r}") from exc

    def column_families(self) -> List[str]:
        return list(self._families)

    def put(
        self,
        row_key: str,
        column_family: str,
        values: Mapping[str, Any],
        *,
        version: int,
    ) -> None:
        """Write several qualifiers of one row in one call."""
        family = self.family(column_family)
        for qualifier, value in values.items():
            family.put(row_key, qualifier, value, version=version)

    def get(
        self,
        row_key: str,
        column_family: str,
        *,
        version: Optional[int] = None,
    ) -> Dict[str, Any]:
        return self.family(column_family).get_row(row_key, version=version)

    def get_cell(
        self,
        row_key: str,
        column_family: str,
        qualifier: str,
        *,
        version: Optional[int] = None,
    ) -> Any:
        return self.family(column_family).get(row_key, qualifier, version=version)

    def has_row(self, row_key: str) -> bool:
        return any(family.has_row(row_key) for family in self._families.values())

    def row_keys(self) -> List[str]:
        keys = set()
        for family in self._families.values():
            keys.update(family.row_keys())
        return sorted(keys)

    def scan(
        self,
        column_family: str,
        *,
        prefix: str = "",
        version: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> List[Tuple[str, Dict[str, Any]]]:
        """Ordered scan of (row key, row dict) pairs, optionally prefix-filtered."""
        family = self.family(column_family)
        results: List[Tuple[str, Dict[str, Any]]] = []
        for row_key in family.row_keys():
            if prefix and not row_key.startswith(prefix):
                continue
            try:
                results.append((row_key, family.get_row(row_key, version=version)))
            except RowNotFoundError:
                continue
            if limit is not None and len(results) >= limit:
                break
        return results
