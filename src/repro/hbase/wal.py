"""Write-ahead log.

Every mutation is appended to the WAL before it is applied to the store, so a
crashed region server can replay its log.  The simulation keeps the log in
memory (optionally bounded) and supports replay onto a fresh table — used by
the durability tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

from repro.exceptions import StorageError


@dataclass(frozen=True)
class WALEntry:
    """One logged mutation."""

    sequence: int
    table: str
    row_key: str
    column_family: str
    values: Dict[str, Any]
    version: int


class WriteAheadLog:
    """Append-only mutation log with replay support."""

    def __init__(self, *, max_entries: Optional[int] = None):
        if max_entries is not None and max_entries < 1:
            raise StorageError("max_entries must be positive when set")
        self._entries: List[WALEntry] = []
        self._sequence = 0
        self.max_entries = max_entries

    # ------------------------------------------------------------------
    def append(
        self,
        table: str,
        row_key: str,
        column_family: str,
        values: Mapping[str, Any],
        *,
        version: int,
    ) -> WALEntry:
        self._sequence += 1
        entry = WALEntry(
            sequence=self._sequence,
            table=table,
            row_key=row_key,
            column_family=column_family,
            values=dict(values),
            version=version,
        )
        self._entries.append(entry)
        if self.max_entries is not None and len(self._entries) > self.max_entries:
            del self._entries[: len(self._entries) - self.max_entries]
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self, *, table: Optional[str] = None) -> List[WALEntry]:
        if table is None:
            return list(self._entries)
        return [entry for entry in self._entries if entry.table == table]

    def last_sequence(self) -> int:
        return self._sequence

    # ------------------------------------------------------------------
    def replay(self, table_object, *, table_name: Optional[str] = None) -> int:
        """Re-apply the logged mutations to ``table_object``; returns the count."""
        replayed = 0
        for entry in self.entries(table=table_name):
            table_object.put(
                entry.row_key, entry.column_family, entry.values, version=entry.version
            )
            replayed += 1
        return replayed
