"""KunPeng parameter-server substrate simulation.

KunPeng is Ant Financial's parameter-server (PS) based distributed learning
platform: server nodes store model parameters, worker nodes train on data
partitions, and Pull/Push operations exchange parameters and gradients.  It
tolerates single-point worker failures (a failed instance restarts and
recovers while the others keep going) and supports data and model parallelism.

The simulation runs every node in process but preserves the execution
semantics the paper relies on:

* row-partitioned parameter storage across server nodes with Pull/Push and
  model averaging (:mod:`repro.kunpeng.server`, :mod:`repro.kunpeng.cluster`),
* worker data partitions and synchronous training rounds
  (:mod:`repro.kunpeng.worker`),
* failure injection and recovery (:mod:`repro.kunpeng.failover`),
* an optional *process* backend that hosts each server shard in a real OS
  process over shared memory, for measured — not simulated — parallelism
  (:mod:`repro.kunpeng.parallel`),
* a calibrated cost model that converts the simulated cluster's workload into
  wall-clock estimates per machine count — the quantity Figure 10 plots
  (:mod:`repro.kunpeng.cost_model`).
"""

from repro.kunpeng.server import ParameterServerNode
from repro.kunpeng.worker import WorkerNode
from repro.kunpeng.cluster import KunPengCluster, ClusterConfig
from repro.kunpeng.cost_model import (
    ClusterCostModel,
    MeasuredRound,
    TrainingTimeEstimate,
    deepwalk_round_volume,
    estimate_deepwalk_time,
    estimate_gbdt_time,
    gbdt_round_volume,
)
from repro.kunpeng.failover import FailureInjector
from repro.kunpeng.parallel import ProcessShardRuntime, SharedBlockManager

__all__ = [
    "ParameterServerNode",
    "WorkerNode",
    "KunPengCluster",
    "ClusterConfig",
    "ClusterCostModel",
    "MeasuredRound",
    "TrainingTimeEstimate",
    "deepwalk_round_volume",
    "estimate_deepwalk_time",
    "estimate_gbdt_time",
    "gbdt_round_volume",
    "FailureInjector",
    "ProcessShardRuntime",
    "SharedBlockManager",
]
