"""The KunPeng cluster: servers + workers + parameter routing.

The paper's deployment assigns half of the machines as server nodes and half
as worker nodes (Section 5.2).  The cluster object owns both pools, partitions
each named parameter matrix row-wise across the servers, routes Pull/Push
requests to the owning server, and records the communication volume so that
the cost model can turn a training run into the per-machine-count timings of
Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ParameterServerError
from repro.kunpeng.server import ParameterServerNode
from repro.kunpeng.worker import WorkerNode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kunpeng.parallel import ProcessShardRuntime

#: Supported :class:`KunPengCluster` backends.
BACKENDS = ("inline", "process")


@dataclass
class ClusterConfig:
    """Sizing of a KunPeng cluster.

    ``num_machines`` is the total machine count (the x axis of Figure 10);
    ``server_fraction`` defaults to one half, per the paper.
    """

    num_machines: int = 4
    server_fraction: float = 0.5

    def validate(self) -> None:
        if self.num_machines < 2:
            raise ParameterServerError("a cluster needs at least 2 machines")
        if not 0.0 < self.server_fraction < 1.0:
            raise ParameterServerError("server_fraction must be in (0, 1)")

    @property
    def num_servers(self) -> int:
        return max(1, int(round(self.num_machines * self.server_fraction)))

    @property
    def num_workers(self) -> int:
        return max(1, self.num_machines - self.num_servers)


@dataclass
class CommunicationLog:
    """Aggregate communication counters of one training run.

    ``values_transferred`` counts embedding *rows* moved between workers and
    servers.  Traffic inside a :meth:`begin_round`/:meth:`end_round` window is
    additionally recorded per round, so the cost model can use the actual
    per-round volume instead of assuming every round moves the full matrices
    (checkpoint downloads and other out-of-round transfers stay excluded).
    """

    pull_requests: int = 0
    push_requests: int = 0
    values_transferred: int = 0
    round_values: List[int] = field(default_factory=list)
    _round_start: Optional[int] = None

    def record_pull(self, num_values: int) -> None:
        self.pull_requests += 1
        self.values_transferred += num_values

    def record_push(self, num_values: int) -> None:
        self.push_requests += 1
        self.values_transferred += num_values

    def begin_round(self) -> None:
        self._round_start = self.values_transferred

    def end_round(self) -> None:
        if self._round_start is None:
            raise ParameterServerError("end_round called without begin_round")
        self.round_values.append(self.values_transferred - self._round_start)
        self._round_start = None

    def mean_values_per_round(self) -> float:
        if not self.round_values:
            return 0.0
        return float(sum(self.round_values)) / len(self.round_values)


class KunPengCluster:
    """A PS cluster: parameter routing plus workload accounting.

    ``backend`` selects where shard state lives and who applies updates:

    * ``"inline"`` (default) — every shard is a :class:`ParameterServerNode`
      in this process; deterministic and dependency-free, the simulation
      backend used throughout the test suite.
    * ``"process"`` — every shard runs in its own OS process with blocks in
      shared memory (:class:`~repro.kunpeng.parallel.ProcessShardRuntime`);
      pushes overlap driver compute, pulls are fenced zero-copy reads, and
      results are bit-exact with the inline backend because each shard
      applies its command stream in issue order.

    Routing, placement and communication accounting are backend-independent;
    only the per-shard data operation dispatches.
    """

    def __init__(
        self, config: ClusterConfig | None = None, *, backend: str = "inline"
    ) -> None:
        self.config = config or ClusterConfig()
        self.config.validate()
        if backend not in BACKENDS:
            raise ParameterServerError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        self.backend = backend
        self.servers: List[ParameterServerNode] = [
            ParameterServerNode(node_id=i) for i in range(self.config.num_servers)
        ]
        self.workers: List[WorkerNode] = [
            WorkerNode(node_id=i) for i in range(self.config.num_workers)
        ]
        self.communication = CommunicationLog()
        #: ``name -> list of (row_start, row_end, server index)``
        self._placements: Dict[str, List[Tuple[int, int, int]]] = {}
        #: ``name -> embedding dimension`` (column count of the hosted matrix)
        self._dimensions: Dict[str, int] = {}
        self._runtime: Optional["ProcessShardRuntime"] = None

    @property
    def runtime(self) -> "ProcessShardRuntime":
        """The process-backend shard runtime (started lazily on first use)."""
        if self.backend != "process":
            raise ParameterServerError("runtime is only available on the process backend")
        if self._runtime is None:
            from repro.kunpeng.parallel import ProcessShardRuntime

            self._runtime = ProcessShardRuntime(len(self.servers))
        return self._runtime

    def close(self) -> None:
        """Release backend resources (shard processes, shared memory).

        A no-op on the inline backend; always safe and idempotent, so
        drivers can call it unconditionally.
        """
        if self._runtime is not None:
            self._runtime.stop()
            self._runtime = None

    def __enter__(self) -> "KunPengCluster":
        """Enter a ``with`` block that closes the cluster backend on exit."""
        return self

    def __exit__(
        self,
        exc_type: Optional[type],
        exc: Optional[BaseException],
        tb: Optional[object],
    ) -> None:
        """Close the backend (stop shard processes) when the block ends."""
        self.close()

    # ------------------------------------------------------------------
    # Parameter placement and routing
    # ------------------------------------------------------------------
    def create_parameter(self, name: str, matrix: np.ndarray) -> None:
        """Partition ``matrix`` row-wise across the server nodes."""
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise ParameterServerError("parameters must be 2-dimensional matrices")
        if name in self._placements:
            raise ParameterServerError(f"parameter {name!r} already exists")
        num_rows = matrix.shape[0]
        num_servers = len(self.servers)
        boundaries = np.linspace(0, num_rows, num_servers + 1).astype(int)
        placements: List[Tuple[int, int, int]] = []
        for server_index in range(num_servers):
            row_start, row_end = int(boundaries[server_index]), int(boundaries[server_index + 1])
            if row_end <= row_start:
                continue
            if self.backend == "process":
                self.runtime.host(server_index, name, row_start, matrix[row_start:row_end])
            else:
                self.servers[server_index].host_shard(
                    name, row_start, row_end, matrix[row_start:row_end]
                )
            placements.append((row_start, row_end, server_index))
        self._placements[name] = placements
        self._dimensions[name] = int(matrix.shape[1])

    def _owner(self, name: str, row: int) -> ParameterServerNode:
        for row_start, row_end, server_index in self._placements.get(name, []):
            if row_start <= row < row_end:
                return self.servers[server_index]
        raise ParameterServerError(f"no server hosts row {row} of parameter {name!r}")

    def pull_rows(self, name: str, rows: Iterable[int]) -> Dict[int, np.ndarray]:
        """Pull a set of global rows, fanning out to the owning servers."""
        rows = list(rows)
        by_server: Dict[int, List[int]] = {}
        for row in rows:
            server = self._owner(name, row)
            by_server.setdefault(server.node_id, []).append(row)
        result: Dict[int, np.ndarray] = {}
        for server_id, server_rows in by_server.items():
            if self.backend == "process":
                block = self.runtime.read(server_id, name, np.asarray(server_rows, dtype=np.int64))
                result.update({row: block[i].copy() for i, row in enumerate(server_rows)})
            else:
                result.update(self.servers[server_id].pull(name, server_rows))
            self.communication.record_pull(len(server_rows))
        return result

    def pull_row_block(self, name: str, rows: np.ndarray) -> np.ndarray:
        """Vectorised sparse pull: stacked rows in request order.

        Routes contiguous row-range slices to their owning shards; only the
        requested rows travel, which is the parameter-server design the paper
        relies on for word2vec at Alipay scale.
        """
        if name not in self._placements:
            raise ParameterServerError(f"unknown parameter {name!r}")
        rows = np.asarray(rows, dtype=np.int64)
        result = np.empty((rows.shape[0], self._dimensions[name]), dtype=np.float64)
        matched = 0
        for row_start, row_end, server_index in self._placements[name]:
            mask = (rows >= row_start) & (rows < row_end)
            count = int(mask.sum())
            if count == 0:
                continue
            if self.backend == "process":
                result[mask] = self.runtime.read(server_index, name, rows[mask])
            else:
                result[mask] = self.servers[server_index].pull_block(name, rows[mask])
            self.communication.record_pull(count)
            matched += count
        if matched != rows.shape[0]:
            raise ParameterServerError(f"some requested rows of {name!r} have no owning server")
        return result

    def push_row_block(
        self,
        name: str,
        rows: np.ndarray,
        gradients: np.ndarray,
        *,
        learning_rate: float = 1.0,
    ) -> None:
        """Vectorised sparse push: row-sparse gradient block routed to shards."""
        if name not in self._placements:
            raise ParameterServerError(f"unknown parameter {name!r}")
        rows = np.asarray(rows, dtype=np.int64)
        gradients = np.asarray(gradients, dtype=np.float64)
        if gradients.shape != (rows.shape[0], self._dimensions[name]):
            raise ParameterServerError("pushed gradient block shape does not match rows")
        matched = 0
        for row_start, row_end, server_index in self._placements[name]:
            mask = (rows >= row_start) & (rows < row_end)
            count = int(mask.sum())
            if count == 0:
                continue
            if self.backend == "process":
                # Fire-and-forget: the owning shard process applies the update
                # while the driver moves on to the next batch.
                self.runtime.push(
                    server_index, name, rows[mask], gradients[mask], learning_rate=learning_rate
                )
            else:
                self.servers[server_index].push_block(
                    name, rows[mask], gradients[mask], learning_rate=learning_rate
                )
            self.communication.record_push(count)
            matched += count
        if matched != rows.shape[0]:
            raise ParameterServerError(f"some pushed rows of {name!r} have no owning server")

    def accumulate_row_block(self, name: str, rows: np.ndarray, values: np.ndarray) -> None:
        """Vectorised sparse accumulate: ``parameter[rows] += values``.

        The additive counterpart of :meth:`push_row_block`, used for
        histogram aggregation: every worker pushes its local (gradient,
        hessian, count) histogram rows and the servers sum them, so the
        driver pulls one merged histogram instead of per-row statistics.
        Traffic is recorded exactly like a gradient push.
        """
        self.push_row_block(name, rows, -np.asarray(values, dtype=np.float64))

    def reset_parameter(self, name: str) -> None:
        """Zero a hosted parameter on every owning server (no traffic).

        Accumulator parameters (per-level GBDT histograms) are cleared
        between aggregation windows with a server-local memset rather than a
        full-matrix push, matching how a real PS would reuse a scratch
        buffer.
        """
        if name not in self._placements:
            raise ParameterServerError(f"unknown parameter {name!r}")
        for _row_start, _row_end, server_index in self._placements[name]:
            if self.backend == "process":
                self.runtime.reset(server_index, name)
            else:
                self.servers[server_index].reset_shard(name)

    def pull_matrix(self, name: str) -> np.ndarray:
        """Reassemble the full parameter matrix (checkpoint / final download)."""
        if name not in self._placements:
            raise ParameterServerError(f"unknown parameter {name!r}")
        placements = sorted(self._placements[name])
        pieces = []
        for row_start, row_end, server_index in placements:
            if self.backend == "process":
                shard = self.runtime.read(server_index, name)
            else:
                shard = self.servers[server_index].pull_all(name)
            self.communication.record_pull(row_end - row_start)
            pieces.append(shard)
        return np.vstack(pieces)

    def push_gradients(
        self,
        name: str,
        gradients: Dict[int, np.ndarray],
        *,
        learning_rate: float = 1.0,
    ) -> None:
        """Push sparse row gradients to their owning servers."""
        by_server: Dict[int, Dict[int, np.ndarray]] = {}
        for row, gradient in gradients.items():
            server = self._owner(name, row)
            by_server.setdefault(server.node_id, {})[row] = gradient
        for server_id, server_gradients in by_server.items():
            if self.backend == "process":
                # Dict keys are unique rows, so the vectorised ``subtract.at``
                # in the shard process matches the inline per-row loop exactly.
                grad_rows = np.fromiter(server_gradients, dtype=np.int64, count=len(server_gradients))
                stacked = np.stack(
                    [np.asarray(g, dtype=np.float64) for g in server_gradients.values()]
                )
                self.runtime.push(server_id, name, grad_rows, stacked, learning_rate=learning_rate)
            else:
                self.servers[server_id].push(name, server_gradients, learning_rate=learning_rate)
            self.communication.record_push(len(server_gradients))

    def push_model_average(self, name: str, replicas: Sequence[np.ndarray]) -> None:
        """Average full worker replicas of a parameter matrix (word2vec style)."""
        if name not in self._placements:
            raise ParameterServerError(f"unknown parameter {name!r}")
        if not replicas:
            raise ParameterServerError("push_average needs at least one replica")
        for row_start, row_end, server_index in self._placements[name]:
            shard_replicas = [replica[row_start:row_end] for replica in replicas]
            if self.backend == "process":
                stacked = np.stack(
                    [np.asarray(r, dtype=np.float64) for r in shard_replicas]
                )
                self.runtime.average(server_index, name, stacked)
            else:
                self.servers[server_index].push_average(name, shard_replicas)
            self.communication.record_push((row_end - row_start) * len(replicas))

    # ------------------------------------------------------------------
    # Data parallelism helpers
    # ------------------------------------------------------------------
    def scatter_data(self, items: Sequence[object]) -> None:
        """Round-robin the training items across worker partitions."""
        partitions: List[List[object]] = [[] for _ in self.workers]
        for index, item in enumerate(items):
            partitions[index % len(self.workers)].append(item)
        for worker, partition in zip(self.workers, partitions):
            worker.assign_partition(partition)

    def alive_workers(self) -> List[WorkerNode]:
        return [worker for worker in self.workers if worker.alive]

    # ------------------------------------------------------------------
    # Per-round communication accounting
    # ------------------------------------------------------------------
    def begin_round(self) -> None:
        """Open a per-round accounting window (see :class:`CommunicationLog`)."""
        self.communication.begin_round()

    def end_round(self) -> None:
        """Close the window; the round's transferred row count is recorded."""
        self.communication.end_round()

    def values_per_round(self) -> List[int]:
        """Rows transferred in each recorded training round."""
        return list(self.communication.round_values)

    # ------------------------------------------------------------------
    def workload_summary(self) -> Dict[str, float]:
        """Totals feeding the cost model: compute units and communication volume."""
        return {
            "num_machines": float(self.config.num_machines),
            "num_servers": float(len(self.servers)),
            "num_workers": float(len(self.workers)),
            "worker_compute_units": float(
                sum(worker.stats.compute_units for worker in self.workers)
            ),
            "max_worker_compute_units": float(
                max((worker.stats.compute_units for worker in self.workers), default=0.0)
            ),
            "pull_requests": float(self.communication.pull_requests),
            "push_requests": float(self.communication.push_requests),
            "values_transferred": float(self.communication.values_transferred),
            "rounds_recorded": float(len(self.communication.round_values)),
            "values_per_round": self.communication.mean_values_per_round(),
        }
