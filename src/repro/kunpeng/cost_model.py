"""Cluster cost model for training-time estimates (Figure 10).

The paper measures how long distributed DeepWalk and GBDT training take as the
number of machines grows from 4 to 40 (half servers, half workers).  Two
effects shape the curves:

* compute parallelism — per-worker compute shrinks as workers are added,
* communication and coordination overhead — pull/push traffic, model
  averaging and stragglers grow with the machine count, so beyond a point
  adding machines stops helping (the paper observes GBDT barely improves from
  20 to 40 machines).

The cost model turns a workload description (total compute units, per-round
communication volume, number of rounds) into an estimated wall-clock time for
a given cluster size.  The constants are calibrated so that the *shape* of
Figure 10 is reproduced: DeepWalk keeps benefiting up to 40 machines while
GBDT flattens after 20.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.kunpeng.cluster import ClusterConfig


@dataclass(frozen=True)
class MeasuredRound:
    """One measured training run, the unit of cost-model calibration.

    Pairs the workload description the model estimates from (the same three
    numbers :meth:`ClusterCostModel.estimate` takes, plus the cluster sizing)
    with the wall-clock seconds the run actually took, as measured by
    ``bench_parallel_ps.py`` on the process backend.
    """

    cluster: ClusterConfig
    total_compute_units: float
    comm_values_per_round: float
    num_rounds: int
    measured_seconds: float

    def validate(self) -> None:
        """Reject measurements the fit cannot use."""
        self.cluster.validate()
        if self.measured_seconds <= 0:
            raise ConfigurationError("measured_seconds must be positive")
        if self.num_rounds < 1:
            raise ConfigurationError("num_rounds must be at least 1")


@dataclass
class ClusterCostModel:
    """Per-unit costs of the simulated cluster.

    All times are in seconds.  ``compute_seconds_per_unit`` is the cost of one
    compute unit on one worker; ``comm_seconds_per_value`` the cost of moving
    one parameter value between a worker and a server; ``sync_seconds_per_round``
    the fixed synchronisation barrier per training round; and
    ``per_machine_overhead_seconds`` the scheduling/traffic-imbalance overhead
    that grows with the number of machines ("more machines often indicate
    greater communication cost due to uneven machine traffic").
    """

    compute_seconds_per_unit: float = 1.0
    comm_seconds_per_value: float = 1e-6
    sync_seconds_per_round: float = 0.5
    per_machine_overhead_seconds: float = 4.0
    straggler_factor: float = 0.08

    def validate(self) -> None:
        """Reject negative cost constants."""
        for name in (
            "compute_seconds_per_unit",
            "comm_seconds_per_value",
            "sync_seconds_per_round",
            "per_machine_overhead_seconds",
            "straggler_factor",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")

    # ------------------------------------------------------------------
    def estimate(
        self,
        *,
        total_compute_units: float,
        comm_values_per_round: float,
        num_rounds: int,
        cluster: ClusterConfig,
    ) -> "TrainingTimeEstimate":
        """Estimate wall-clock training time on ``cluster``."""
        self.validate()
        cluster.validate()
        workers = cluster.num_workers
        servers = cluster.num_servers

        compute = self.compute_seconds_per_unit * total_compute_units / workers
        # Straggler effect: the slowest of W workers finishes ~ (1 + f log W) late.
        compute *= 1.0 + self.straggler_factor * _log2(workers)
        # Each round moves comm_values_per_round values, spread over the servers,
        # but every extra server adds routing fan-out for the workers.
        communication = (
            self.comm_seconds_per_value
            * comm_values_per_round
            * num_rounds
            * (1.0 + 0.15 * _log2(servers))
        )
        synchronization = self.sync_seconds_per_round * num_rounds * _log2(workers + 1)
        overhead = self.per_machine_overhead_seconds * cluster.num_machines
        total = compute + communication + synchronization + overhead
        return TrainingTimeEstimate(
            num_machines=cluster.num_machines,
            compute_seconds=compute,
            communication_seconds=communication,
            synchronization_seconds=synchronization,
            overhead_seconds=overhead,
            total_seconds=total,
        )

    # ------------------------------------------------------------------
    def _design_row(self, measurement: MeasuredRound) -> List[float]:
        """The estimate's four cost terms with their constants factored out.

        :meth:`estimate` is linear in the four per-unit constants once the
        ``straggler_factor`` is held fixed, which is what makes calibration a
        least-squares problem.
        """
        workers = measurement.cluster.num_workers
        servers = measurement.cluster.num_servers
        return [
            measurement.total_compute_units
            / workers
            * (1.0 + self.straggler_factor * _log2(workers)),
            measurement.comm_values_per_round
            * measurement.num_rounds
            * (1.0 + 0.15 * _log2(servers)),
            measurement.num_rounds * _log2(workers + 1),
            float(measurement.cluster.num_machines),
        ]

    def calibrate(self, measured_round_times: Sequence[MeasuredRound]) -> "ClusterCostModel":
        """Fit the four cost constants to measured wall-clock run times.

        Solves the non-negative least-squares problem ``measured ≈ X @ c``
        where ``X`` holds the four cost terms of :meth:`estimate` (compute,
        communication, synchronisation, per-machine overhead) evaluated per
        measurement, via an active-set iteration: solve unconstrained, clamp
        negative constants to zero, re-solve over the survivors.  Returns a
        new model (``straggler_factor`` kept); ``self`` is unchanged.
        """
        if not measured_round_times:
            raise ConfigurationError("calibrate needs at least one measurement")
        for measurement in measured_round_times:
            measurement.validate()
        design = np.array(
            [self._design_row(m) for m in measured_round_times], dtype=np.float64
        )
        target = np.array(
            [m.measured_seconds for m in measured_round_times], dtype=np.float64
        )
        active = list(range(design.shape[1]))
        coefficients = np.zeros(design.shape[1])
        while active:
            solution, *_ = np.linalg.lstsq(design[:, active], target, rcond=None)
            if np.all(solution >= 0.0):
                coefficients[:] = 0.0
                coefficients[active] = solution
                break
            active = [index for index, value in zip(active, solution) if value > 0.0]
        fitted = replace(
            self,
            compute_seconds_per_unit=float(coefficients[0]),
            comm_seconds_per_value=float(coefficients[1]),
            sync_seconds_per_round=float(coefficients[2]),
            per_machine_overhead_seconds=float(coefficients[3]),
        )
        fitted.validate()
        return fitted

    def relative_errors(self, measured_round_times: Sequence[MeasuredRound]) -> List[float]:
        """Per-measurement ``|estimate - measured| / measured`` of this model.

        The bench calibrates on its measured rounds and asserts
        ``max(relative_errors(...))`` stays under a stated bound — the
        model-validation loop the simulated backend could never close.
        """
        errors: List[float] = []
        for measurement in measured_round_times:
            measurement.validate()
            estimate = self.estimate(
                total_compute_units=measurement.total_compute_units,
                comm_values_per_round=measurement.comm_values_per_round,
                num_rounds=measurement.num_rounds,
                cluster=measurement.cluster,
            )
            errors.append(
                abs(estimate.total_seconds - measurement.measured_seconds)
                / measurement.measured_seconds
            )
        return errors


def _log2(value: float) -> float:
    import math

    return math.log2(max(value, 1.0))


@dataclass
class TrainingTimeEstimate:
    """Breakdown of one estimated training run."""

    num_machines: int
    compute_seconds: float
    communication_seconds: float
    synchronization_seconds: float
    overhead_seconds: float
    total_seconds: float

    @property
    def total_minutes(self) -> float:
        return self.total_seconds / 60.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "num_machines": float(self.num_machines),
            "compute_seconds": self.compute_seconds,
            "communication_seconds": self.communication_seconds,
            "synchronization_seconds": self.synchronization_seconds,
            "overhead_seconds": self.overhead_seconds,
            "total_seconds": self.total_seconds,
        }


# ---------------------------------------------------------------------------
# Workload presets matching the paper's production scale
# ---------------------------------------------------------------------------

#: Approximate production workloads backing Figure 10.  DeepWalk processes
#: roughly 8 million transaction records' worth of walks (Section 5.1: ~1.5
#: hours on 20 machines), GBDT trains 400 depth-3 trees over the 14-day
#: training window.  The absolute constants are calibrated to land in the same
#: range as the paper's y axes (hundreds of minutes for DW, hundreds to ~1500
#: seconds for GBDT); only the shape is claimed, not the exact values.
DEEPWALK_PRODUCTION_WORKLOAD = {
    "total_compute_units": 86_000.0,
    "comm_values_per_round": 2_400_000.0,
    "num_rounds": 100,
}

GBDT_PRODUCTION_WORKLOAD = {
    "total_compute_units": 2_000.0,
    "comm_values_per_round": 140_000.0,
    "num_rounds": 400,
}

_DEEPWALK_COST_MODEL = ClusterCostModel(
    compute_seconds_per_unit=1.0,
    comm_seconds_per_value=0.8e-5,
    sync_seconds_per_round=0.8,
    per_machine_overhead_seconds=10.0,
    straggler_factor=0.06,
)

_GBDT_COST_MODEL = ClusterCostModel(
    compute_seconds_per_unit=1.0,
    comm_seconds_per_value=2.0e-6,
    sync_seconds_per_round=0.05,
    per_machine_overhead_seconds=2.0,
    straggler_factor=0.10,
)


def deepwalk_round_volume(
    vocab_rows: int,
    num_workers: int,
    *,
    mode: str = "dense",
    batch_pairs: int = 2048,
    negatives: int = 5,
) -> float:
    """Embedding rows a synchronous DeepWalk round moves, per training mode.

    ``dense`` is the model-average loop: every worker pulls both full matrices
    and pushes both full replicas back, i.e. ``4 * vocab_rows * num_workers``
    rows per round regardless of batch size.  ``sparse`` is the paper's
    pull/compute/push cycle: each worker pulls only the ``w_in`` rows of its
    batch's centers and the ``w_out`` rows of its contexts ∪ negatives, then
    pushes the same rows back.  The bound below assumes no duplicates, so it
    is an upper bound — real batches repeat hub nodes and frequent negatives
    and move fewer rows (the simulated cluster records the actual counts).
    """
    if mode == "dense":
        return 4.0 * vocab_rows * num_workers
    if mode != "sparse":
        raise ConfigurationError(f"unknown training mode {mode!r}")
    pulled_in = min(vocab_rows, batch_pairs)
    pulled_out = min(vocab_rows, batch_pairs * (1 + negatives))
    return 2.0 * (pulled_in + pulled_out) * num_workers


#: Approximate vocabulary size behind Figure 10's DeepWalk workload, used to
#: scale the preset communication volume when estimating the sparse loop.
_DEEPWALK_VOCAB_ROWS = 150_000


def estimate_deepwalk_time(
    num_machines: int,
    *,
    mode: str = "dense",
    cost_model: ClusterCostModel | None = None,
) -> TrainingTimeEstimate:
    """Estimated distributed DeepWalk training time on ``num_machines``.

    ``mode="sparse"`` rescales the preset per-round communication volume by
    the sparse/dense ratio of :func:`deepwalk_round_volume`, modelling the
    row-sparse pull/push loop instead of full model averaging.
    """
    model = cost_model or _DEEPWALK_COST_MODEL
    workload = dict(DEEPWALK_PRODUCTION_WORKLOAD)
    cluster = ClusterConfig(num_machines=num_machines)
    if mode != "dense":
        ratio = deepwalk_round_volume(
            _DEEPWALK_VOCAB_ROWS, cluster.num_workers, mode=mode
        ) / deepwalk_round_volume(_DEEPWALK_VOCAB_ROWS, cluster.num_workers, mode="dense")
        workload["comm_values_per_round"] *= ratio
    return model.estimate(cluster=cluster, **workload)


def gbdt_round_volume(
    num_rows: int,
    num_features: int,
    num_workers: int,
    *,
    mode: str = "hist",
    num_bins: int = 64,
    max_depth: int = 3,
) -> float:
    """Values a distributed GBDT round (one boosting tree) moves, per mode.

    ``exact`` gathers per-row statistics at the driver: 2 values (gradient,
    hessian) per training row per round — traffic scales with the row count.
    ``hist`` aggregates fixed-size histograms through the parameter servers:
    per tree level every worker pushes at most ``nodes x features x bins``
    non-empty histogram rows and the driver pulls the merged block once, so
    the bound below is ``(workers + 1) x internal_nodes x features x bins``
    summed over the levels — independent of ``num_rows``.  Both are upper
    bounds (sparse histograms and row subsampling move less); the simulated
    cluster records the actual counts.
    """
    if mode == "exact":
        return 2.0 * num_rows
    if mode != "hist":
        raise ConfigurationError(f"unknown tree method {mode!r}")
    internal_nodes = 2**max_depth - 1  # 1 + 2 + ... + 2^(depth-1) node histograms
    return float((num_workers + 1) * internal_nodes * num_features * num_bins)


#: Approximate scale of the paper's 14-day GBDT training window (millions of
#: transactions feed the 400-tree model), used to relate the preset per-round
#: communication volume to the exact-mode per-row traffic.
_GBDT_TRAIN_ROWS = 2_000_000
_GBDT_NUM_FEATURES = 100
_GBDT_NUM_BINS = 64


def estimate_gbdt_time(
    num_machines: int,
    *,
    mode: str = "exact",
    cost_model: ClusterCostModel | None = None,
) -> TrainingTimeEstimate:
    """Estimated distributed GBDT training time on ``num_machines``.

    ``mode="hist"`` rescales the preset per-round communication volume by the
    hist/exact ratio of :func:`gbdt_round_volume`, modelling histogram
    aggregation instead of per-row gradient gathering; at the paper's row
    count the fixed-size histograms are far smaller than the row statistics.
    """
    model = cost_model or _GBDT_COST_MODEL
    workload = dict(GBDT_PRODUCTION_WORKLOAD)
    cluster = ClusterConfig(num_machines=num_machines)
    if mode != "exact":
        ratio = gbdt_round_volume(
            _GBDT_TRAIN_ROWS,
            _GBDT_NUM_FEATURES,
            cluster.num_workers,
            mode=mode,
            num_bins=_GBDT_NUM_BINS,
        ) / gbdt_round_volume(
            _GBDT_TRAIN_ROWS, _GBDT_NUM_FEATURES, cluster.num_workers, mode="exact"
        )
        workload["comm_values_per_round"] *= ratio
    return model.estimate(cluster=cluster, **workload)


def scalability_curve(
    machine_counts: Sequence[int] = (4, 10, 20, 40),
) -> List[Dict[str, float]]:
    """The Figure 10 series: DW minutes and GBDT seconds per machine count."""
    rows: List[Dict[str, float]] = []
    for machines in machine_counts:
        deepwalk = estimate_deepwalk_time(machines)
        gbdt = estimate_gbdt_time(machines)
        rows.append(
            {
                "num_machines": float(machines),
                "deepwalk_minutes": deepwalk.total_minutes,
                "gbdt_seconds": gbdt.total_seconds,
            }
        )
    return rows
