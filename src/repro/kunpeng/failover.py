"""Failure injection and recovery.

The paper motivates the PS architecture over MPI by its failure tolerance:
"the failed instance can be restarted and recovered to the previous status
automatically while other instances remain not affected".  The failure
injector crashes workers according to a configured probability; the training
drivers call :meth:`heal` at round boundaries, which restarts dead workers so
the round can be retried on the restored cluster — parameters on the servers
are never lost because they live on the (unaffected) server nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.exceptions import ParameterServerError
from repro.kunpeng.cluster import KunPengCluster
from repro.rng import SeedLike, ensure_rng


@dataclass
class FailureEvent:
    """Record of one injected failure."""

    round_index: int
    worker_id: int


class FailureInjector:
    """Randomly crashes workers between training rounds."""

    def __init__(
        self,
        cluster: KunPengCluster,
        *,
        failure_probability: float = 0.0,
        max_failures: int = 1_000,
        rng: SeedLike = None,
    ) -> None:
        if not 0.0 <= failure_probability <= 1.0:
            raise ParameterServerError("failure_probability must be in [0, 1]")
        if max_failures < 0:
            raise ParameterServerError("max_failures must be non-negative")
        self.cluster = cluster
        self.failure_probability = failure_probability
        self.max_failures = max_failures
        self._rng = ensure_rng(rng)
        self.events: List[FailureEvent] = []

    # ------------------------------------------------------------------
    def maybe_fail(self, round_index: int) -> List[int]:
        """Possibly crash workers before a round; returns the crashed ids."""
        crashed: List[int] = []
        if len(self.events) >= self.max_failures:
            return crashed
        for worker in self.cluster.workers:
            if not worker.alive:
                continue
            if self._rng.random() < self.failure_probability:
                # Never kill the last alive worker: the platform guarantees
                # progress as long as one worker survives the round.
                if len(self.cluster.alive_workers()) <= 1:
                    break
                worker.fail()
                crashed.append(worker.node_id)
                self.events.append(FailureEvent(round_index=round_index, worker_id=worker.node_id))
        return crashed

    def heal(self) -> List[int]:
        """Restart every failed worker (automatic recovery); returns restarted ids."""
        restarted: List[int] = []
        for worker in self.cluster.workers:
            if not worker.alive:
                worker.restart()
                restarted.append(worker.node_id)
        return restarted

    @property
    def total_failures(self) -> int:
        return len(self.events)
