"""Real hardware parallelism: parameter-server shards as OS processes.

Everything else in :mod:`repro.kunpeng` simulates the KunPeng cluster inside
one Python process, which is perfect for semantics but says nothing about
wall-clock time.  This module is the *process backend*: each parameter-server
shard runs in its own ``multiprocessing`` worker, and every hosted parameter
block lives in a ``multiprocessing.shared_memory`` segment that both the
driver and the owning shard process map as a numpy array.

The division of labour mirrors a real PS deployment:

* **writes** (``push``/``accumulate``/``reset``/model averaging) are enqueued
  on the owning shard's FIFO command pipe and applied *by the shard process*
  — concurrently across shards, and overlapping with whatever the driver
  computes next (the next minibatch's gradients, the next worker's
  histograms),
* **reads** (``pull``) are served *driver-side* straight from the shared
  block — zero copy over the wire — after a **fence**: the driver waits for
  the shard's acknowledgement that every previously enqueued write has been
  applied.  Because each shard applies its commands strictly in issue order,
  a fenced read observes exactly the state the inline backend would produce,
  so the two backends are bit-for-bit equivalent.

:class:`SharedBlockManager` owns the allocate/attach/unlink lifecycle of the
shared segments.  It unlinks everything it allocated on ``close()``, on
context-manager exit *and* from an ``atexit`` hook, so segments are reclaimed
even when a shard process dies mid-round (shard death surfaces as a
:class:`~repro.exceptions.ParameterServerError` on the next fence, never as
an orphaned ``/dev/shm`` file).
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import re
import secrets
from types import TracebackType
from typing import Dict, List, Optional, Tuple

import numpy as np
from multiprocessing import shared_memory
from multiprocessing.connection import Connection
from multiprocessing.context import BaseContext
from numpy.typing import DTypeLike

from repro.exceptions import ParameterServerError
from repro.logging_utils import get_logger

logger = get_logger("kunpeng.parallel")

#: Shard-process command opcodes (element 0 of every pipe message).
_HOST = "host"
_PUSH = "push"
_RESET = "reset"
_AVERAGE = "average"
_FENCE = "fence"
_STOP = "stop"


def _sanitize_key(key: str) -> str:
    return re.sub(r"[^A-Za-z0-9_]", "_", key)


class SharedBlockManager:
    """Owns named shared-memory numpy blocks: allocate, attach, unlink.

    One manager instance is the *owner* of every segment it allocates: only
    the owning process (guarded by pid) unlinks, and unlinking is guaranteed
    by ``close()``, by context-manager exit and by an ``atexit`` hook — so a
    crashed or killed attacher can never leave orphaned ``/dev/shm``
    segments behind.
    """

    def __init__(self, prefix: Optional[str] = None) -> None:
        #: Namespace of every segment this manager creates (unique per
        #: instance so concurrent clusters never collide).
        self.prefix = prefix or f"repro{os.getpid():x}x{secrets.token_hex(3)}"
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._views: Dict[str, np.ndarray] = {}
        self._owner_pid = os.getpid()
        self._closed = False
        atexit.register(self.close)

    # ------------------------------------------------------------------
    def segment_name(self, key: str) -> str:
        """The OS-level segment name backing block ``key``."""
        return f"{self.prefix}_{_sanitize_key(key)}"

    def allocate(
        self, key: str, shape: Tuple[int, ...], dtype: DTypeLike = np.float64
    ) -> np.ndarray:
        """Create a shared segment for ``key`` and return its numpy view."""
        if self._closed:
            raise ParameterServerError("SharedBlockManager is closed")
        if key in self._segments:
            raise ParameterServerError(f"shared block {key!r} already allocated")
        dtype = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape)) * dtype.itemsize)
        segment = shared_memory.SharedMemory(
            name=self.segment_name(key), create=True, size=nbytes
        )
        view = np.ndarray(shape, dtype=dtype, buffer=segment.buf)
        self._segments[key] = segment
        self._views[key] = view
        return view

    @staticmethod
    def attach(
        segment_name: str, shape: Tuple[int, ...], dtype: DTypeLike = np.float64
    ) -> Tuple[shared_memory.SharedMemory, np.ndarray]:
        """Map an existing segment (owned elsewhere) as a numpy view.

        Shard workers are forked, so they share the driver's resource
        tracker; their attach-register is a set-level no-op there and the
        owner's unlink performs the single deregistration.
        """
        segment = shared_memory.SharedMemory(name=segment_name)
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf)
        return segment, view

    def view(self, key: str) -> np.ndarray:
        """The owner's numpy view of block ``key``."""
        try:
            return self._views[key]
        except KeyError as exc:
            raise ParameterServerError(f"unknown shared block {key!r}") from exc

    def keys(self) -> List[str]:
        """Keys of every block currently allocated by this manager."""
        return list(self._segments)

    @property
    def closed(self) -> bool:
        """Whether the manager has released its segments."""
        return self._closed

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Unlink every owned segment (idempotent, owner-process only)."""
        if self._closed or os.getpid() != self._owner_pid:
            return
        self._closed = True
        atexit.unregister(self.close)
        for key in list(self._segments):
            segment = self._segments.pop(key)
            self._views.pop(key, None)
            try:
                segment.close()
            except BufferError:  # a live numpy view still maps the buffer;
                pass  # unlink below still reclaims the segment at process exit
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already reclaimed
                pass

    def __enter__(self) -> "SharedBlockManager":
        """Enter a ``with`` block that unlinks all segments on exit."""
        return self

    def __exit__(
        self,
        exc_type: Optional[type],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        """Release every owned segment when the ``with`` block ends."""
        self.close()


# ---------------------------------------------------------------------------
# Shard worker process
# ---------------------------------------------------------------------------


def _shard_worker_main(conn: Connection) -> None:
    """Command loop of one shard process.

    Commands arrive on a FIFO pipe and are applied in issue order, which is
    what makes the process backend bit-exact with the inline one.  A failed
    command poisons the shard: further mutations are skipped and the latched
    error is reported on the next fence/stop, keeping the one-reply-per-fence
    protocol deterministic.
    """
    blocks: Dict[str, Tuple[shared_memory.SharedMemory, np.ndarray, int]] = {}
    error: Optional[str] = None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        op = message[0]
        if op == _FENCE or op == _STOP:
            try:
                conn.send(("ok", None) if error is None else ("error", error))
            except (BrokenPipeError, OSError):
                break
            if op == _STOP:
                break
            continue
        if error is not None:
            continue
        try:
            if op == _HOST:
                _, key, segment_name, shape, dtype_str, row_start = message
                segment, view = SharedBlockManager.attach(segment_name, shape, dtype_str)
                blocks[key] = (segment, view, int(row_start))
            elif op == _PUSH:
                _, key, rows, gradients, learning_rate = message
                _, view, row_start = blocks[key]
                np.subtract.at(view, rows - row_start, learning_rate * gradients)
            elif op == _RESET:
                blocks[message[1]][1].fill(0.0)
            elif op == _AVERAGE:
                _, key, stacked = message
                _, view, _ = blocks[key]
                view[:] = stacked.mean(axis=0)
            else:
                raise ParameterServerError(f"unknown shard opcode {op!r}")
        except Exception as exc:  # latched and surfaced on the next fence
            error = f"{type(exc).__name__}: {exc}"
    for key in list(blocks):
        segment, view, _ = blocks.pop(key)
        del view
        try:
            segment.close()
        except BufferError:  # pragma: no cover - view lifetime race
            pass
    conn.close()


class _ShardHandle:
    """Driver-side endpoint of one shard process: pipe, liveness, fencing."""

    def __init__(self, shard_index: int, context: BaseContext) -> None:
        self.shard_index = shard_index
        self.conn, child_conn = context.Pipe()
        self.process = context.Process(
            target=_shard_worker_main,
            args=(child_conn,),
            daemon=True,
            name=f"ps-shard-{shard_index}",
        )
        self.process.start()
        child_conn.close()
        #: Writes enqueued since the last acknowledged fence.
        self.dirty = False

    def send(self, message: tuple, *, mutates: bool = True) -> None:
        try:
            self.conn.send(message)
        except (BrokenPipeError, OSError) as exc:
            raise ParameterServerError(
                f"shard process {self.shard_index} is not accepting commands ({exc})"
            ) from exc
        if mutates:
            self.dirty = True

    def fence(self) -> None:
        """Wait until every enqueued write has been applied by the shard."""
        if not self.dirty:
            return
        self.send((_FENCE,), mutates=False)
        try:
            status, detail = self.conn.recv()
        except (EOFError, OSError) as exc:
            raise ParameterServerError(
                f"shard process {self.shard_index} died mid-round ({exc})"
            ) from exc
        self.dirty = False
        if status != "ok":
            raise ParameterServerError(
                f"shard process {self.shard_index} failed: {detail}"
            )

    def stop(self, timeout: float = 5.0) -> None:
        if self.process.is_alive():
            try:
                self.conn.send((_STOP,))
            except (BrokenPipeError, OSError):
                pass
        self.process.join(timeout)
        if self.process.is_alive():  # pragma: no cover - unresponsive shard
            self.process.kill()
            self.process.join(1.0)
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass


class ProcessShardRuntime:
    """Hosts parameter-server shards in real OS processes over shared memory.

    The runtime owns one :class:`_ShardHandle` per shard (started lazily on
    first hosting), one :class:`SharedBlockManager` for every hosted block,
    and the fence bookkeeping that keeps driver-side reads exact.  It is the
    engine behind ``KunPengCluster(backend="process")``; training drivers
    never talk to it directly.
    """

    def __init__(self, num_shards: int, *, start_method: Optional[str] = None) -> None:
        if num_shards < 1:
            raise ParameterServerError("process runtime needs at least one shard")
        self.num_shards = num_shards
        self._context = multiprocessing.get_context(start_method)
        self.blocks = SharedBlockManager()
        self._handles: List[Optional[_ShardHandle]] = [None] * num_shards
        self._row_starts: Dict[Tuple[str, int], int] = {}
        self._stopped = False
        atexit.register(self.stop)

    # ------------------------------------------------------------------
    @staticmethod
    def _key(name: str, shard_index: int) -> str:
        return f"{name}@{shard_index}"

    def _handle(self, shard_index: int) -> _ShardHandle:
        if self._stopped:
            raise ParameterServerError("process runtime already stopped")
        handle = self._handles[shard_index]
        if handle is None:
            handle = _ShardHandle(shard_index, self._context)
            self._handles[shard_index] = handle
        return handle

    # ------------------------------------------------------------------
    def host(
        self, shard_index: int, name: str, row_start: int, values: np.ndarray
    ) -> None:
        """Place a row-range shard of parameter ``name`` on ``shard_index``.

        The block is allocated in shared memory, initialised driver-side, and
        the shard process attaches to it by segment name.
        """
        key = self._key(name, shard_index)
        view = self.blocks.allocate(key, values.shape, values.dtype)
        view[:] = values
        self._row_starts[(name, shard_index)] = int(row_start)
        self._handle(shard_index).send(
            (
                _HOST,
                key,
                self.blocks.segment_name(key),
                values.shape,
                values.dtype.str,
                int(row_start),
            )
        )

    def push(
        self,
        shard_index: int,
        name: str,
        rows: np.ndarray,
        gradients: np.ndarray,
        *,
        learning_rate: float = 1.0,
    ) -> None:
        """Enqueue ``values[rows] -= learning_rate * gradients`` on the shard.

        Returns immediately; the shard applies the update concurrently with
        whatever the driver does next (the pipelining that real hardware
        parallelism buys).  ``rows`` are global row indices.
        """
        self._handle(shard_index).send(
            (_PUSH, self._key(name, shard_index), rows, gradients, float(learning_rate))
        )

    def reset(self, shard_index: int, name: str) -> None:
        """Enqueue a shard-local zero-fill of the block (no bulk traffic)."""
        self._handle(shard_index).send((_RESET, self._key(name, shard_index)))

    def average(self, shard_index: int, name: str, stacked: np.ndarray) -> None:
        """Enqueue model averaging: the block becomes ``stacked.mean(axis=0)``."""
        self._handle(shard_index).send(
            (_AVERAGE, self._key(name, shard_index), stacked)
        )

    def fence(self, shard_index: int) -> None:
        """Block until shard ``shard_index`` has applied its enqueued writes."""
        handle = self._handles[shard_index]
        if handle is not None:
            handle.fence()

    def read(
        self, shard_index: int, name: str, rows: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Fenced driver-side read of (a row subset of) a hosted block.

        ``rows`` are global indices; ``None`` copies the whole shard.  The
        read happens on the driver's own mapping of the shared segment, so no
        data crosses the pipe — only the fence acknowledgement does.
        """
        self.fence(shard_index)
        view = self.blocks.view(self._key(name, shard_index))
        if rows is None:
            return view.copy()
        return view[rows - self._row_starts[(name, shard_index)]]

    # ------------------------------------------------------------------
    def alive_shards(self) -> List[int]:
        """Indices of started shard processes that are currently alive."""
        return [
            index
            for index, handle in enumerate(self._handles)
            if handle is not None and handle.process.is_alive()
        ]

    def kill_shard(self, shard_index: int) -> None:
        """SIGKILL a shard process (failure-injection/test helper).

        Subsequent operations against the dead shard raise
        :class:`~repro.exceptions.ParameterServerError`; the shared segments
        stay owned by the driver and are reclaimed by :meth:`stop`.
        """
        handle = self._handles[shard_index]
        if handle is not None and handle.process.is_alive():
            handle.process.kill()
            handle.process.join(5.0)

    def stop(self) -> None:
        """Stop every shard process and unlink all shared segments (idempotent)."""
        if self._stopped:
            return
        self._stopped = True
        atexit.unregister(self.stop)
        for handle in self._handles:
            if handle is not None:
                handle.stop()
        self._handles = [None] * self.num_shards
        self._row_starts.clear()
        self.blocks.close()

    def __enter__(self) -> "ProcessShardRuntime":
        """Enter a ``with`` block that stops the shard fleet on exit."""
        return self

    def __exit__(
        self,
        exc_type: Optional[type],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        """Stop every shard and unlink shared memory when the block ends."""
        self.stop()
