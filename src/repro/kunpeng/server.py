"""Parameter-server nodes.

A server node owns a contiguous row range of each named parameter matrix.
Workers ``pull`` the rows they need, compute gradients locally, and ``push``
them back; the server applies the update (plain SGD step) or, for the model
averaging used by the paper's word2vec reimplementation, replaces rows with
the average of the workers' copies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.exceptions import ParameterServerError


@dataclass
class _Shard:
    """One server-resident shard: rows [row_start, row_end) of a matrix."""

    name: str
    row_start: int
    row_end: int
    values: np.ndarray

    def contains(self, row: int) -> bool:
        return self.row_start <= row < self.row_end


class ParameterServerNode:
    """One server node holding shards of named parameter matrices."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self._shards: Dict[str, _Shard] = {}
        self.pull_count = 0
        self.push_count = 0

    # ------------------------------------------------------------------
    def host_shard(self, name: str, row_start: int, row_end: int, values: np.ndarray) -> None:
        """Install a shard (rows ``[row_start, row_end)``) of parameter ``name``."""
        if row_end <= row_start:
            raise ParameterServerError("shard row range must be non-empty")
        if values.shape[0] != row_end - row_start:
            raise ParameterServerError(
                f"shard values have {values.shape[0]} rows, expected {row_end - row_start}"
            )
        self._shards[name] = _Shard(
            name=name, row_start=row_start, row_end=row_end, values=values.astype(np.float64)
        )

    def has_parameter(self, name: str) -> bool:
        return name in self._shards

    def shard_range(self, name: str) -> Tuple[int, int]:
        shard = self._get(name)
        return shard.row_start, shard.row_end

    def _get(self, name: str) -> _Shard:
        try:
            return self._shards[name]
        except KeyError as exc:
            raise ParameterServerError(
                f"server {self.node_id} does not host parameter {name!r}"
            ) from exc

    # ------------------------------------------------------------------
    def pull(self, name: str, rows: Iterable[int]) -> Dict[int, np.ndarray]:
        """Return copies of the requested rows (global row indices)."""
        shard = self._get(name)
        self.pull_count += 1
        result: Dict[int, np.ndarray] = {}
        for row in rows:
            if not shard.contains(row):
                raise ParameterServerError(
                    f"row {row} of {name!r} is not hosted on server {self.node_id}"
                )
            result[row] = shard.values[row - shard.row_start].copy()
        return result

    def pull_block(self, name: str, rows: np.ndarray) -> np.ndarray:
        """Vectorised pull: stacked copies of ``rows`` (global indices), in order."""
        shard = self._get(name)
        self.pull_count += 1
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return np.empty((0, shard.values.shape[1]), dtype=np.float64)
        if rows.min() < shard.row_start or rows.max() >= shard.row_end:
            raise ParameterServerError(
                f"rows outside [{shard.row_start}, {shard.row_end}) of {name!r} "
                f"requested from server {self.node_id}"
            )
        return shard.values[rows - shard.row_start]  # fancy indexing copies

    def pull_all(self, name: str) -> np.ndarray:
        """Copy of the whole shard (used by model averaging and checkpoints)."""
        self.pull_count += 1
        return self._get(name).values.copy()

    def push(
        self,
        name: str,
        gradients: Dict[int, np.ndarray],
        *,
        learning_rate: float = 1.0,
    ) -> None:
        """Apply ``values -= learning_rate * gradient`` for each pushed row."""
        shard = self._get(name)
        self.push_count += 1
        for row, gradient in gradients.items():
            if not shard.contains(row):
                raise ParameterServerError(
                    f"row {row} of {name!r} is not hosted on server {self.node_id}"
                )
            shard.values[row - shard.row_start] -= learning_rate * gradient

    def push_block(
        self,
        name: str,
        rows: np.ndarray,
        gradients: np.ndarray,
        *,
        learning_rate: float = 1.0,
    ) -> None:
        """Vectorised push: ``values[rows] -= learning_rate * gradients``.

        ``np.subtract.at`` accumulates correctly even if ``rows`` repeats.
        """
        shard = self._get(name)
        self.push_count += 1
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return
        if rows.min() < shard.row_start or rows.max() >= shard.row_end:
            raise ParameterServerError(
                f"rows outside [{shard.row_start}, {shard.row_end}) of {name!r} "
                f"pushed to server {self.node_id}"
            )
        if gradients.shape != (rows.shape[0], shard.values.shape[1]):
            raise ParameterServerError("pushed gradient block shape does not match rows")
        np.subtract.at(shard.values, rows - shard.row_start, learning_rate * gradients)

    def reset_shard(self, name: str) -> None:
        """Zero the shard in place (server-local; no worker traffic involved).

        Used by accumulator-style parameters (GBDT gradient histograms) that
        are summed afresh each aggregation window.
        """
        self._get(name).values.fill(0.0)

    def push_average(self, name: str, replicas: List[np.ndarray]) -> None:
        """Model averaging: replace the shard with the mean of worker replicas.

        This is the aggregation step the paper describes for the word2vec
        reimplementation ("server nodes pull the new embeddings and aggregate
        them by executing the model average operation").
        """
        if not replicas:
            raise ParameterServerError("push_average needs at least one replica")
        shard = self._get(name)
        self.push_count += 1
        stacked = np.stack([np.asarray(r, dtype=np.float64) for r in replicas])
        if stacked.shape[1:] != shard.values.shape:
            raise ParameterServerError("replica shape does not match the hosted shard")
        shard.values = stacked.mean(axis=0)

    # ------------------------------------------------------------------
    def traffic(self) -> Dict[str, int]:
        """Pull/push counters, consumed by the communication cost model."""
        return {"pulls": self.pull_count, "pushes": self.push_count}
