"""Worker nodes.

Workers hold a partition of the training data and run compute steps.  In the
real KunPeng deployment each worker is a process on its own machine; here a
worker is an object whose ``run`` method executes the step function.  The
worker tracks how many "compute units" it has performed so the cluster cost
model can translate workload into simulated wall-clock time, and supports the
fail/restart cycle the PS architecture tolerates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.exceptions import WorkerFailureError


@dataclass
class WorkerStats:
    """Per-worker accounting used by the cost model and failover tests."""

    steps_executed: int = 0
    compute_units: float = 0.0
    failures: int = 0
    restarts: int = 0


class WorkerNode:
    """One worker node with an assigned data partition."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.partition: List[Any] = []
        self.state: Dict[str, Any] = {}
        self.stats = WorkerStats()
        self._alive = True

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self._alive

    def assign_partition(self, partition: List[Any]) -> None:
        self.partition = list(partition)

    def fail(self) -> None:
        """Simulate a crash: the worker drops its in-memory state."""
        self._alive = False
        self.state = {}
        self.stats.failures += 1

    def restart(self) -> None:
        """Restart after a failure; the data partition is re-read, state is empty."""
        if self._alive:
            return
        self._alive = True
        self.stats.restarts += 1

    # ------------------------------------------------------------------
    def run(
        self,
        step: Callable[["WorkerNode"], Any],
        *,
        compute_units: Optional[float] = None,
    ) -> Any:
        """Execute one step function against this worker.

        Raises :class:`WorkerFailureError` if the worker is down — the caller
        (cluster / failure injector) decides whether to restart and retry,
        which is exactly the PS platform's single-point-of-failure story.
        """
        if not self._alive:
            raise WorkerFailureError(f"worker {self.node_id} is down")
        result = step(self)
        self.stats.steps_executed += 1
        self.stats.compute_units += (
            compute_units if compute_units is not None else float(len(self.partition))
        )
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = "alive" if self._alive else "failed"
        return f"WorkerNode(id={self.node_id}, partition={len(self.partition)}, {status})"
