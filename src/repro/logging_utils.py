"""Logging helpers shared by every subsystem.

The production system described in the paper emits structured logs from each
component (MaxCompute scheduler, KunPeng trainers, the Model Server).  We keep
the same spirit: one package-level logger namespace (``repro.*``) configured in
a single place, plus a tiny stopwatch used by the cost models and the latency
tracker.
"""

from __future__ import annotations

import logging
import time
from contextlib import contextmanager
from typing import Iterator

_PACKAGE_LOGGER_NAME = "repro"


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    ``get_logger("kunpeng.worker")`` returns the logger
    ``repro.kunpeng.worker`` so that applications can configure the whole
    reproduction with a single ``logging.getLogger("repro")`` handle.
    """
    if name.startswith(_PACKAGE_LOGGER_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_PACKAGE_LOGGER_NAME}.{name}")


def configure_logging(level: int = logging.INFO) -> None:
    """Configure a simple console handler for the package logger.

    Safe to call multiple times; handlers are only attached once.
    """
    logger = logging.getLogger(_PACKAGE_LOGGER_NAME)
    logger.setLevel(level)
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)s %(name)s: %(message)s")
        )
        logger.addHandler(handler)


class Stopwatch:
    """Wall-clock stopwatch with millisecond resolution.

    Used by the serving layer to measure real prediction latency and by tests
    that assert the "milliseconds" serving claim of the paper.
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed_seconds: float = 0.0

    def start(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Stopwatch.stop() called before start()")
        self.elapsed_seconds = time.perf_counter() - self._start
        self._start = None
        return self.elapsed_seconds

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed_seconds * 1000.0


@contextmanager
def timed() -> Iterator[Stopwatch]:
    """Context manager yielding a running :class:`Stopwatch`.

    >>> with timed() as watch:
    ...     _ = sum(range(10))
    >>> watch.elapsed_seconds >= 0.0
    True
    """
    watch = Stopwatch().start()
    try:
        yield watch
    finally:
        if watch._start is not None:
            watch.stop()
