"""Logging helpers shared by every subsystem.

The production system described in the paper emits structured logs from each
component (MaxCompute scheduler, KunPeng trainers, the Model Server).  We keep
the same spirit: one package-level logger namespace (``repro.*``) configured in
a single place, plus a tiny stopwatch used by the cost models and the latency
tracker.
"""

from __future__ import annotations

import logging
import time
from contextlib import contextmanager
from typing import Iterator

_PACKAGE_LOGGER_NAME = "repro"


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    ``get_logger("kunpeng.worker")`` returns the logger
    ``repro.kunpeng.worker`` so that applications can configure the whole
    reproduction with a single ``logging.getLogger("repro")`` handle.
    """
    if name.startswith(_PACKAGE_LOGGER_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_PACKAGE_LOGGER_NAME}.{name}")


def configure_logging(level: int = logging.INFO) -> None:
    """Configure a simple console handler for the package logger.

    Safe to call multiple times; handlers are only attached once.
    """
    logger = logging.getLogger(_PACKAGE_LOGGER_NAME)
    logger.setLevel(level)
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)s %(name)s: %(message)s")
        )
        logger.addHandler(handler)


class ProgressTracker:
    """Rate/ETA progress logger for long generation and load runs.

    Emits through the ``repro.progress`` logger, so it is **quiet by
    default** — nothing is printed unless the application configures logging
    (:func:`configure_logging` or its own handlers).  Updates are throttled
    to one log line per ``min_interval_s`` regardless of how often
    :meth:`advance` is called, so per-event advancing costs a counter
    increment and a clock read.

    >>> tracker = ProgressTracker("generate", total=1000, unit="events")
    >>> for _ in range(1000):
    ...     tracker.advance()
    >>> report = tracker.finish()
    >>> report["count"]
    1000
    """

    def __init__(
        self,
        label: str,
        *,
        total: int | None = None,
        unit: str = "events",
        min_interval_s: float = 5.0,
    ) -> None:
        self.label = label
        self.total = total
        self.unit = unit
        self.min_interval_s = min_interval_s
        self.count = 0
        self._start = time.monotonic()
        self._last_log = self._start
        self._logger = get_logger("progress")

    def advance(self, step: int = 1) -> None:
        """Record ``step`` completed units; log if the interval elapsed."""
        self.count += step
        now = time.monotonic()
        if now - self._last_log >= self.min_interval_s:
            self._last_log = now
            self._logger.info(self._format(now))

    def finish(self) -> dict:
        """Log the final line and return ``{count, elapsed_s, rate}``."""
        now = time.monotonic()
        self._logger.info(self._format(now) + " (done)")
        elapsed = max(now - self._start, 1e-9)
        return {
            "count": self.count,
            "elapsed_s": elapsed,
            "rate": self.count / elapsed,
        }

    def _format(self, now: float) -> str:
        elapsed = max(now - self._start, 1e-9)
        rate = self.count / elapsed
        if self.total:
            remaining = max(self.total - self.count, 0)
            eta_s = remaining / rate if rate > 0 else float("inf")
            return (
                f"{self.label}: {self.count:,}/{self.total:,} {self.unit} "
                f"({rate:,.0f}/s, eta {eta_s:,.0f}s)"
            )
        return f"{self.label}: {self.count:,} {self.unit} ({rate:,.0f}/s)"


class Stopwatch:
    """Wall-clock stopwatch with millisecond resolution.

    Used by the serving layer to measure real prediction latency and by tests
    that assert the "milliseconds" serving claim of the paper.
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed_seconds: float = 0.0

    def start(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Stopwatch.stop() called before start()")
        self.elapsed_seconds = time.perf_counter() - self._start
        self._start = None
        return self.elapsed_seconds

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed_seconds * 1000.0


@contextmanager
def timed() -> Iterator[Stopwatch]:
    """Context manager yielding a running :class:`Stopwatch`.

    >>> with timed() as watch:
    ...     _ = sum(range(10))
    >>> watch.elapsed_seconds >= 0.0
    True
    """
    watch = Stopwatch().start()
    try:
        yield watch
    finally:
        if watch._start is not None:
            watch.stop()
