"""MaxCompute (ODPS) substrate simulation.

The paper stores and prepares all offline data on MaxCompute: transaction
logs land there, SQL and MapReduce jobs extract basic features / labels and
build the transaction network, and the learned artefacts are written back.
MaxCompute has three logical layers (Figure 4): a client layer (web console /
HTTP server), a server layer (workers, executors, scheduler, the OTS instance
status service) and a storage & compute layer (Pangu storage, Fuxi resource
scheduling).

This package reproduces that execution model in process:

* :mod:`repro.maxcompute.table` / :mod:`repro.maxcompute.storage` — columnar
  tables persisted in a Pangu-like store,
* :mod:`repro.maxcompute.sql` — a small SQL subset (SELECT / WHERE / GROUP BY /
  ORDER BY / LIMIT with aggregates) with a parser, planner and executor,
* :mod:`repro.maxcompute.mapreduce` — a MapReduce engine over tables,
* :mod:`repro.maxcompute.ots` / :mod:`repro.maxcompute.scheduler` — job
  instances, subtasks, resource slots and status tracking,
* :mod:`repro.maxcompute.client` — the developer-facing client that submits
  SQL / MapReduce jobs and waits for their completion.
"""

from repro.maxcompute.table import Column, ColumnType, Schema, Table
from repro.maxcompute.storage import PanguStorage
from repro.maxcompute.partitioned import (
    ColumnZone,
    PartitionedTable,
    ZoneMap,
    condition_may_match,
)
from repro.maxcompute.catalog import TableCatalog
from repro.maxcompute.ots import OpenTableService, InstanceStatus, InstanceRecord
from repro.maxcompute.scheduler import FuxiScheduler, JobInstance, SubTask
from repro.maxcompute.mapreduce import MapReduceJob, run_mapreduce
from repro.maxcompute.client import MaxComputeClient, JobResult

__all__ = [
    "Column",
    "ColumnType",
    "Schema",
    "Table",
    "PanguStorage",
    "ColumnZone",
    "PartitionedTable",
    "ZoneMap",
    "condition_may_match",
    "TableCatalog",
    "OpenTableService",
    "InstanceStatus",
    "InstanceRecord",
    "FuxiScheduler",
    "JobInstance",
    "SubTask",
    "MapReduceJob",
    "run_mapreduce",
    "MaxComputeClient",
    "JobResult",
]
