"""Table catalog: the metadata service in front of Pangu storage."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.exceptions import TableAlreadyExistsError, TableNotFoundError
from repro.maxcompute.partitioned import PartitionedTable
from repro.maxcompute.storage import PanguStorage
from repro.maxcompute.table import Schema, Table


class TableCatalog:
    """Create / drop / lookup tables; all data lives in the backing storage."""

    def __init__(self, storage: Optional[PanguStorage] = None):
        self.storage = storage or PanguStorage()

    # ------------------------------------------------------------------
    def create_table(
        self,
        name: str,
        schema: Schema,
        *,
        if_not_exists: bool = False,
        comment: str = "",
    ) -> Table:
        if name in self.storage:
            if if_not_exists:
                return self.storage.get(name)
            raise TableAlreadyExistsError(f"table {name!r} already exists")
        table = Table(name, schema, comment=comment)
        self.storage.put(table)
        return table

    def create_partitioned_table(
        self,
        name: str,
        schema: Schema,
        *,
        partition_key: str,
        if_not_exists: bool = False,
        comment: str = "",
    ) -> PartitionedTable:
        """Create a :class:`PartitionedTable` routed by ``partition_key`` values."""
        if name in self.storage:
            if if_not_exists:
                existing = self.storage.get(name)
                if not isinstance(existing, PartitionedTable):
                    raise TableAlreadyExistsError(
                        f"table {name!r} exists but is not partitioned"
                    )
                return existing
            raise TableAlreadyExistsError(f"table {name!r} already exists")
        table = PartitionedTable(name, schema, partition_key=partition_key, comment=comment)
        self.storage.put(table)
        return table

    def drop_table(self, name: str, *, if_exists: bool = False) -> None:
        if name not in self.storage:
            if if_exists:
                return
            raise TableNotFoundError(f"table {name!r} does not exist")
        self.storage.delete(name)

    def get_table(self, name: str) -> Table:
        return self.storage.get(name)

    def has_table(self, name: str) -> bool:
        return name in self.storage

    def list_tables(self) -> List[str]:
        return self.storage.list_tables()

    # ------------------------------------------------------------------
    def insert_rows(self, name: str, rows: Iterable[Dict[str, object]]) -> int:
        """Append rows to an existing table; returns the number inserted."""
        table = self.get_table(name)
        count = 0
        for row in rows:
            table.append(row)
            count += 1
        return count

    def register(self, table: Table, *, overwrite: bool = True) -> None:
        """Register a fully built table (e.g. a SQL result) under its name."""
        if not overwrite and table.name in self.storage:
            raise TableAlreadyExistsError(f"table {table.name!r} already exists")
        self.storage.put(table)

    def describe(self, name: str) -> Dict[str, object]:
        table = self.get_table(name)
        return {
            "name": table.name,
            "comment": table.comment,
            "num_rows": table.num_rows,
            "columns": {column.name: column.type.value for column in table.schema.columns},
        }
