"""Developer-facing MaxCompute client.

Mirrors the web-console flow of Figure 4: the client authenticates, submits a
SQL or MapReduce job, the HTTP server hands it to a worker, the scheduler
registers the instance in OTS, splits it into subtasks, runs them on
executors, and the result lands in Pangu storage under the requested table
name.  The simulation keeps the same call sequence; authentication is a simple
account allow-list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.exceptions import JobError, StorageError
from repro.logging_utils import get_logger
from repro.maxcompute.catalog import TableCatalog
from repro.maxcompute.mapreduce import MapReduceJob, MapReduceStats, run_mapreduce
from repro.maxcompute.ots import InstanceStatus
from repro.maxcompute.scheduler import FuxiScheduler
from repro.maxcompute.partitioned import PartitionedTable
from repro.maxcompute.sql.executor import QueryStats, SQLExecutor
from repro.maxcompute.table import Schema, Table, table_from_records

logger = get_logger("maxcompute.client")


@dataclass
class JobResult:
    """Outcome of a submitted job."""

    instance_id: str
    status: InstanceStatus
    result_table: Optional[Table] = None
    stats: Optional[MapReduceStats] = None
    query_stats: Optional[QueryStats] = None

    @property
    def succeeded(self) -> bool:
        return self.status is InstanceStatus.TERMINATED


class MaxComputeClient:
    """Client layer of the MaxCompute simulation."""

    def __init__(
        self,
        *,
        account: str = "titant_offline",
        authorized_accounts: Optional[Sequence[str]] = None,
        scheduler: Optional[FuxiScheduler] = None,
        catalog: Optional[TableCatalog] = None,
    ) -> None:
        authorized = set(authorized_accounts or {account})
        if account not in authorized:
            raise JobError(f"account {account!r} failed cloud-account verification")
        self.account = account
        self.catalog = catalog or TableCatalog()
        self.scheduler = scheduler or FuxiScheduler()
        self._sql = SQLExecutor(self.catalog)

    # ------------------------------------------------------------------
    # Table management (the parts of DDL the pipeline needs)
    # ------------------------------------------------------------------
    def create_table(self, name: str, schema: Dict[str, str] | Schema, *, if_not_exists: bool = True) -> Table:
        if isinstance(schema, dict):
            schema = Schema.from_dict(schema)
        return self.catalog.create_table(name, schema, if_not_exists=if_not_exists)

    def create_partitioned_table(
        self,
        name: str,
        schema: Dict[str, str] | Schema,
        *,
        partition_key: str,
        if_not_exists: bool = True,
    ) -> PartitionedTable:
        """Create a value-partitioned table with per-partition zone maps."""
        if isinstance(schema, dict):
            schema = Schema.from_dict(schema)
        return self.catalog.create_partitioned_table(
            name, schema, partition_key=partition_key, if_not_exists=if_not_exists
        )

    def load_records(self, name: str, records: Iterable[Dict[str, Any]]) -> int:
        """Bulk-load dictionaries into ``name`` (table must exist or is inferred)."""
        records = list(records)
        if not records:
            return 0
        if not self.catalog.has_table(name):
            self.catalog.register(table_from_records(name, records))
            return len(records)
        return self.catalog.insert_rows(name, records)

    def get_table(self, name: str) -> Table:
        return self.catalog.get_table(name)

    def list_tables(self) -> List[str]:
        return self.catalog.list_tables()

    # ------------------------------------------------------------------
    # Job submission
    # ------------------------------------------------------------------
    def submit_sql(
        self,
        sql: str,
        *,
        result_table: Optional[str] = None,
        prune_partitions: bool = True,
    ) -> JobResult:
        """Submit a SQL job and wait for it (the simulation is synchronous)."""

        def _run() -> Table:
            name = result_table or "query_result"
            return self._sql.execute(sql, result_name=name, prune_partitions=prune_partitions)

        instance = self.scheduler.submit("sql_query", "sql", [_run])
        self.scheduler.run_instance(instance.instance_id)
        record = self.scheduler.ots.get(instance.instance_id)
        result: Optional[Table] = None
        query_stats: Optional[QueryStats] = None
        if record.status is InstanceStatus.TERMINATED:
            result = instance.results()[0]
            query_stats = self._sql.last_stats
            if result_table is not None and result is not None:
                self.catalog.register(result)
        logger.debug("sql instance %s finished with %s", instance.instance_id, record.status)
        return JobResult(
            instance_id=instance.instance_id,
            status=record.status,
            result_table=result,
            query_stats=query_stats,
        )

    def submit_mapreduce(
        self,
        job: MapReduceJob,
        input_table: str,
        *,
        result_table: Optional[str] = None,
    ) -> JobResult:
        """Submit a MapReduce job over ``input_table`` and wait for it."""
        source = self.catalog.get_table(input_table)

        holder: Dict[str, Any] = {}

        def _run() -> Table:
            table, stats = run_mapreduce(job, source, result_name=result_table or None)
            holder["stats"] = stats
            return table

        instance = self.scheduler.submit(job.name, "mapreduce", [_run])
        self.scheduler.run_instance(instance.instance_id)
        record = self.scheduler.ots.get(instance.instance_id)
        result: Optional[Table] = None
        if record.status is InstanceStatus.TERMINATED:
            result = instance.results()[0]
            if result_table is not None and result is not None:
                self.catalog.register(result)
        return JobResult(
            instance_id=instance.instance_id,
            status=record.status,
            result_table=result,
            stats=holder.get("stats"),
        )

    # ------------------------------------------------------------------
    def instance_status(self, instance_id: str) -> InstanceStatus:
        return self.scheduler.ots.get(instance_id).status

    def job_summary(self) -> Dict[str, int]:
        """OTS status counts — the monitoring view a pipeline operator watches."""
        return self.scheduler.ots.summary()

    def store_artifact(self, name: str, records: List[Dict[str, Any]]) -> Table:
        """Persist a pipeline artefact (embeddings, model metadata) as a table."""
        if not records:
            raise StorageError("cannot store an empty artifact")
        table = table_from_records(name, records)
        self.catalog.register(table)
        return table
