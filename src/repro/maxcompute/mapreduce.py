"""MapReduce engine over MaxCompute tables.

MaxCompute recognises heterogeneous jobs — SQL and MapReduce — in its storage
& compute layer.  The offline TitAnt pipeline uses MapReduce-style jobs for
the parts that do not fit SQL, most importantly aggregating 90 days of
transaction records into the weighted transaction-network edge list.

A job is defined by a ``map`` function (row → iterable of (key, value) pairs)
and a ``reduce`` function ((key, list of values) → output row or rows).  The
engine splits the input table, runs mappers per split (optionally through the
Fuxi scheduler's subtask machinery), shuffles by key and reduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.exceptions import JobError
from repro.maxcompute.table import Table, table_from_records

MapFunction = Callable[[Dict[str, Any]], Iterable[Tuple[Any, Any]]]
ReduceFunction = Callable[[Any, List[Any]], Iterable[Dict[str, Any]]]
CombineFunction = Callable[[Any, List[Any]], List[Any]]


@dataclass
class MapReduceJob:
    """Definition of one MapReduce job."""

    name: str
    map_function: MapFunction
    reduce_function: ReduceFunction
    combine_function: Optional[CombineFunction] = None
    num_splits: int = 4

    def validate(self) -> None:
        if not self.name:
            raise JobError("MapReduce job needs a non-empty name")
        if self.num_splits < 1:
            raise JobError("num_splits must be at least 1")


@dataclass
class MapReduceStats:
    """Execution counters (exposed for tests and the scheduler's reporting)."""

    input_rows: int = 0
    map_output_pairs: int = 0
    distinct_keys: int = 0
    output_rows: int = 0
    num_splits: int = 0


def _map_split(
    job: MapReduceJob, rows: Iterable[Dict[str, Any]]
) -> Tuple[Dict[Any, List[Any]], int]:
    """Run the map function over one split, returning partial groups."""
    groups: Dict[Any, List[Any]] = {}
    pairs = 0
    for row in rows:
        for key, value in job.map_function(row):
            groups.setdefault(key, []).append(value)
            pairs += 1
    if job.combine_function is not None:
        groups = {key: job.combine_function(key, values) for key, values in groups.items()}
    return groups, pairs


def run_mapreduce(
    job: MapReduceJob,
    table: Table,
    *,
    result_name: Optional[str] = None,
) -> Tuple[Table, MapReduceStats]:
    """Execute ``job`` over ``table`` and return (result table, statistics)."""
    job.validate()
    stats = MapReduceStats(input_rows=table.num_rows)
    splits = table.partition_rows(job.num_splits) if table.num_rows else []
    stats.num_splits = len(splits)

    # Map phase (per split) + shuffle.
    shuffled: Dict[Any, List[Any]] = {}
    for split in splits:
        groups, pairs = _map_split(job, (table.row(i) for i in split))
        stats.map_output_pairs += pairs
        for key, values in groups.items():
            shuffled.setdefault(key, []).extend(values)
    stats.distinct_keys = len(shuffled)

    # Reduce phase, keys processed in sorted order for determinism.
    output_rows: List[Dict[str, Any]] = []
    for key in sorted(shuffled, key=repr):
        for row in job.reduce_function(key, shuffled[key]):
            output_rows.append(row)
    stats.output_rows = len(output_rows)

    name = result_name or f"{job.name}_output"
    if not output_rows:
        from repro.maxcompute.table import Schema

        return Table(name, Schema.from_dict({"key": "string"})), stats
    return table_from_records(name, output_rows), stats


# ---------------------------------------------------------------------------
# Ready-made jobs used by the TitAnt offline pipeline
# ---------------------------------------------------------------------------


def transaction_edge_job(*, num_splits: int = 4) -> MapReduceJob:
    """MapReduce job that aggregates transactions into weighted network edges."""

    def map_edges(row: Dict[str, Any]) -> Iterable[Tuple[Tuple[str, str], float]]:
        yield (row["payer_id"], row["payee_id"]), 1.0

    def reduce_edges(key: Tuple[str, str], values: List[float]) -> Iterable[Dict[str, Any]]:
        payer, payee = key
        yield {"payer_id": payer, "payee_id": payee, "weight": float(sum(values))}

    def combine_edges(key: Tuple[str, str], values: List[float]) -> List[float]:
        return [float(sum(values))]

    return MapReduceJob(
        name="transaction_edges",
        map_function=map_edges,
        reduce_function=reduce_edges,
        combine_function=combine_edges,
        num_splits=num_splits,
    )


def daily_fraud_rate_job(*, num_splits: int = 4) -> MapReduceJob:
    """MapReduce job computing the per-day fraud rate (a monitoring report)."""

    def map_day(row: Dict[str, Any]) -> Iterable[Tuple[int, Tuple[int, int]]]:
        yield int(row["day"]), (1, 1 if row["is_fraud"] else 0)

    def reduce_day(key: int, values: List[Tuple[int, int]]) -> Iterable[Dict[str, Any]]:
        total = sum(count for count, _ in values)
        frauds = sum(fraud for _, fraud in values)
        yield {
            "day": int(key),
            "num_transactions": total,
            "num_frauds": frauds,
            "fraud_rate": frauds / total if total else 0.0,
        }

    return MapReduceJob(
        name="daily_fraud_rate",
        map_function=map_day,
        reduce_function=reduce_day,
        num_splits=num_splits,
    )
