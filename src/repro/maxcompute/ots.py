"""Open Table Service (OTS): job-instance status tracking.

In MaxCompute, the scheduler registers every job instance in OTS via the SQL
planner, marks it "running", and the executor flips it to "terminated" when
all subtasks finish.  The simulation keeps the same lifecycle so that the
client can poll instance status exactly as a developer would from the web
console.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from repro.exceptions import JobNotFoundError


class InstanceStatus(str, Enum):
    """Lifecycle states of a job instance."""

    WAITING = "waiting"
    RUNNING = "running"
    TERMINATED = "terminated"
    FAILED = "failed"


@dataclass
class InstanceRecord:
    """One job instance registered in OTS."""

    instance_id: str
    job_name: str
    job_type: str
    status: InstanceStatus = InstanceStatus.WAITING
    progress: float = 0.0
    message: str = ""
    history: List[InstanceStatus] = field(default_factory=list)

    def transition(self, status: InstanceStatus, *, message: str = "") -> None:
        self.history.append(self.status)
        self.status = status
        if message:
            self.message = message


class OpenTableService:
    """In-memory instance-status registry."""

    def __init__(self) -> None:
        self._instances: Dict[str, InstanceRecord] = {}
        self._counter = itertools.count(1)

    # ------------------------------------------------------------------
    def register(self, job_name: str, job_type: str) -> InstanceRecord:
        """Register a new instance and return its record (status WAITING)."""
        instance_id = f"inst_{next(self._counter):08d}"
        record = InstanceRecord(instance_id=instance_id, job_name=job_name, job_type=job_type)
        self._instances[instance_id] = record
        return record

    def get(self, instance_id: str) -> InstanceRecord:
        try:
            return self._instances[instance_id]
        except KeyError as exc:
            raise JobNotFoundError(f"unknown instance {instance_id!r}") from exc

    def set_status(
        self,
        instance_id: str,
        status: InstanceStatus,
        *,
        progress: Optional[float] = None,
        message: str = "",
    ) -> None:
        record = self.get(instance_id)
        record.transition(status, message=message)
        if progress is not None:
            record.progress = float(progress)

    def update_progress(self, instance_id: str, progress: float) -> None:
        self.get(instance_id).progress = float(progress)

    # ------------------------------------------------------------------
    def list_instances(self, *, status: Optional[InstanceStatus] = None) -> List[InstanceRecord]:
        records = list(self._instances.values())
        if status is not None:
            records = [record for record in records if record.status == status]
        return records

    def running_count(self) -> int:
        return len(self.list_instances(status=InstanceStatus.RUNNING))

    def summary(self) -> Dict[str, int]:
        """Count of instances per status (the web console's overview widget)."""
        counts: Dict[str, int] = {status.value: 0 for status in InstanceStatus}
        for record in self._instances.values():
            counts[record.status.value] += 1
        return counts
