"""Value-partitioned tables with per-partition zone maps.

The paper's backfill scans a transactions table partitioned by day; MaxCompute
prunes partitions whose metadata proves no row can match the query predicate
(the "Provenance-based Data Skipping" shape from PAPERS.md).  This module
reproduces that storage layer: :class:`PartitionedTable` routes every appended
row into a partition keyed by one column's value and maintains a
:class:`ZoneMap` (per-column min / max / null count) per partition.  The SQL
executor consults :func:`condition_may_match` to skip partitions and reports
the decision in its query stats.

Pruning is *conservative*: a partition is skipped only when the zone map
proves no row in it can satisfy the WHERE condition under the executor's
collapsed three-valued logic (comparisons against NULL are False, so NULL
rows *do* satisfy ``NOT (col = v)``).  Unknown shapes and mixed-type
comparisons fall back to "may match" — correctness never depends on pruning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional, Tuple

from repro.exceptions import SchemaError
from repro.maxcompute.table import Schema, Table

if TYPE_CHECKING:  # pragma: no cover - import cycle: sql.executor needs this module
    from repro.maxcompute.sql.parser import Condition


@dataclass
class ColumnZone:
    """Min / max / null statistics for one column within one partition."""

    min_value: Any = None
    max_value: Any = None
    null_count: int = 0
    value_count: int = 0
    bounds_valid: bool = True

    def observe(self, value: Any) -> None:
        """Fold one stored (already coerced) value into the statistics."""
        if value is None:
            self.null_count += 1
            return
        if self.value_count == 0:
            self.min_value = value
            self.max_value = value
        elif self.bounds_valid:
            try:
                if value < self.min_value:
                    self.min_value = value
                elif value > self.max_value:
                    self.max_value = value
            except TypeError:
                # Mixed un-orderable values (should not happen post-coercion);
                # widen to "unknown" so pruning stays conservative.
                self.min_value = None
                self.max_value = None
                self.bounds_valid = False
        self.value_count += 1

    @property
    def bounds(self) -> Optional[Tuple[Any, Any]]:
        """``(min, max)`` over non-NULL values, or ``None`` when there are none."""
        if self.value_count == 0 or not self.bounds_valid:
            return None
        return (self.min_value, self.max_value)


@dataclass
class ZoneMap:
    """Per-column :class:`ColumnZone` statistics for one partition."""

    columns: Dict[str, ColumnZone] = field(default_factory=dict)
    row_count: int = 0

    def observe_row(self, row: Dict[str, Any]) -> None:
        """Fold one stored row into every column's statistics."""
        for name, value in row.items():
            self.columns.setdefault(name, ColumnZone()).observe(value)
        self.row_count += 1

    def zone(self, column: str) -> Optional[ColumnZone]:
        """The named column's statistics, or ``None`` if never observed."""
        return self.columns.get(column)


def _comparison_may_hold(zone: ColumnZone, operator: str, value: Any) -> bool:
    """Can any non-NULL value in ``zone``'s range satisfy ``x <op> value``?"""
    if zone.value_count == 0:
        return False  # no non-NULL values at all (NULL cmp anything is False)
    bounds = zone.bounds
    if bounds is None:
        return True  # values exist but their range is unknown: never prune
    low, high = bounds
    try:
        if operator == "=":
            return low <= value <= high
        if operator == "!=":
            return not (low == high == value)
        if operator == "<":
            return low < value
        if operator == "<=":
            return low <= value
        if operator == ">":
            return high > value
        if operator == ">=":
            return high >= value
    except TypeError:
        return True  # mixed types: let the executor surface the real error
    return True  # unknown operator: never prune on it


def _comparison_negation_may_hold(zone: ColumnZone, operator: str, value: Any) -> bool:
    """Can any value in ``zone`` *fail* ``x <op> value`` (NULLs always fail)?"""
    if zone.null_count > 0:
        return True  # NULL cmp anything is False, so NOT(cmp) holds
    if zone.value_count == 0:
        return False  # no rows with this column at all
    bounds = zone.bounds
    if bounds is None:
        return True  # values exist but their range is unknown: never prune
    low, high = bounds
    try:
        if operator == "=":
            return not (low == high == value)
        if operator == "!=":
            return low <= value <= high
        if operator == "<":
            return high >= value
        if operator == "<=":
            return high > value
        if operator == ">":
            return low <= value
        if operator == ">=":
            return low < value
    except TypeError:
        return True
    return True


def _may_match(condition: "Condition", zone_map: ZoneMap, negated: bool) -> bool:
    """Polarity-aware recursion: may any row (fail to) satisfy ``condition``?"""
    # Imported lazily: the sql package's executor imports this module, so a
    # module-level parser import would close a cycle through sql/__init__.
    from repro.maxcompute.sql.parser import BooleanOp, Comparison, InList, Not

    if isinstance(condition, Comparison):
        zone = zone_map.zone(condition.column)
        if zone is None:
            return True  # unseen column: never prune (executor validates it)
        if condition.value is None:
            # cmp against NULL is always False under the collapsed logic.
            return negated
        if negated:
            return _comparison_negation_may_hold(zone, condition.operator, condition.value)
        return _comparison_may_hold(zone, condition.operator, condition.value)
    if isinstance(condition, InList):
        zone = zone_map.zone(condition.column)
        if zone is None:
            return True
        if negated:
            # A NULL is not in the list; a range wider than one point may
            # contain an excluded value.  Only a constant column whose single
            # value is listed provably has no failing row.
            if zone.null_count > 0:
                return True
            if zone.value_count == 0:
                return False
            bounds = zone.bounds
            if bounds is None:
                return True
            low, high = bounds
            if low == high:
                return low not in condition.values
            return True
        return any(
            _comparison_may_hold(zone, "=", value)
            for value in condition.values
            if value is not None
        )
    if isinstance(condition, Not):
        return _may_match(condition.operand, zone_map, not negated)
    if isinstance(condition, BooleanOp):
        operands = condition.operands
        # De Morgan under negation: NOT(a AND b) == NOT a OR NOT b.
        is_and = (condition.operator == "and") != negated
        if is_and:
            return all(_may_match(op, zone_map, negated) for op in operands)
        return any(_may_match(op, zone_map, negated) for op in operands)
    return True  # unknown node: never prune


def condition_may_match(condition: "Condition", zone_map: ZoneMap) -> bool:
    """True unless ``zone_map`` proves no row can satisfy ``condition``.

    Mirrors the executor's collapsed three-valued logic: a comparison whose
    operand is NULL evaluates to False, hence NULL rows satisfy ``NOT (cmp)``.
    Returns True (scan the partition) in every uncertain case.
    """
    if zone_map.row_count == 0:
        return False
    return _may_match(condition, zone_map, negated=False)


class PartitionedTable(Table):
    """A :class:`Table` whose rows are routed into partitions by a key column.

    Storage stays columnar in the base table (so every :class:`Table` API —
    ``rows``, ``column``, ``select_rows`` — keeps working); the partition
    layer adds per-key row-index lists plus a :class:`ZoneMap` per partition.
    Iteration order over partitions is sorted by key for determinism, with
    insertion order preserved within a partition.
    """

    def __init__(self, name: str, schema: Schema, *, partition_key: str, comment: str = ""):
        if partition_key not in schema:
            raise SchemaError(
                f"partition key {partition_key!r} is not a column of table {name!r}"
            )
        super().__init__(name, schema, comment=comment)
        self.partition_key = partition_key
        self._partition_indices: Dict[Any, List[int]] = {}
        self._zone_maps: Dict[Any, ZoneMap] = {}

    # ------------------------------------------------------------------
    def append(self, row: Dict[str, Any]) -> None:
        """Append one row, routing it into its partition and zone map."""
        super().append(row)
        index = self._num_rows - 1
        stored = {name: values[index] for name, values in self._columns.items()}
        key = stored[self.partition_key]
        if key is None:
            raise SchemaError(
                f"partition key {self.partition_key!r} must be non-NULL in table {self.name!r}"
            )
        self._partition_indices.setdefault(key, []).append(index)
        self._zone_maps.setdefault(key, ZoneMap()).observe_row(stored)

    # ------------------------------------------------------------------
    @property
    def num_partitions(self) -> int:
        """Number of distinct partition-key values seen so far."""
        return len(self._partition_indices)

    def partition_keys(self) -> List[Any]:
        """All partition-key values, sorted for deterministic iteration."""
        return sorted(self._partition_indices)

    def partition_indices(self, key: Any) -> List[int]:
        """Row indices of one partition in insertion order."""
        if key not in self._partition_indices:
            raise SchemaError(f"unknown partition {key!r} in table {self.name!r}")
        return list(self._partition_indices[key])

    def zone_map(self, key: Any) -> ZoneMap:
        """The zone map of one partition."""
        if key not in self._zone_maps:
            raise SchemaError(f"unknown partition {key!r} in table {self.name!r}")
        return self._zone_maps[key]

    def iter_partitions(self) -> Iterator[Tuple[Any, List[int], ZoneMap]]:
        """Yield ``(key, row_indices, zone_map)`` in sorted key order."""
        for key in self.partition_keys():
            yield key, self._partition_indices[key], self._zone_maps[key]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PartitionedTable(name={self.name!r}, rows={self._num_rows}, "
            f"partitions={self.num_partitions}, key={self.partition_key!r})"
        )
