"""Fuxi-like job scheduling.

The MaxCompute server layer splits a job instance into subtasks, queues them
in priority order, waits for compute resources and dispatches them to
executors; when every subtask finishes the executor marks the instance
"terminated" in OTS.  The simulation reproduces that control flow with a slot
pool standing in for Fuxi's cluster resources: it is deliberately synchronous
(a subtask "runs" by calling its Python callable) but preserves the queueing,
priority, resource accounting and status transitions.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.exceptions import JobError, ResourceExhaustedError
from repro.logging_utils import get_logger
from repro.maxcompute.ots import InstanceStatus, OpenTableService

logger = get_logger("maxcompute.scheduler")


@dataclass
class SubTask:
    """One schedulable unit of work."""

    task_id: str
    instance_id: str
    callable: Callable[[], Any]
    priority: int = 10
    slots_required: int = 1
    result: Any = None
    completed: bool = False
    error: Optional[str] = None


@dataclass
class JobInstance:
    """A job instance: a set of subtasks tracked in OTS."""

    instance_id: str
    job_name: str
    job_type: str
    subtasks: List[SubTask] = field(default_factory=list)

    @property
    def completed(self) -> bool:
        return all(task.completed for task in self.subtasks)

    @property
    def failed(self) -> bool:
        return any(task.error is not None for task in self.subtasks)

    def results(self) -> List[Any]:
        return [task.result for task in self.subtasks]


class FuxiScheduler:
    """Priority task pool with a fixed number of resource slots."""

    def __init__(
        self,
        ots: Optional[OpenTableService] = None,
        *,
        total_slots: int = 8,
    ) -> None:
        if total_slots < 1:
            raise JobError("total_slots must be at least 1")
        self.ots = ots or OpenTableService()
        self.total_slots = total_slots
        self._task_counter = itertools.count(1)
        self._queue: List[tuple[int, int, SubTask]] = []
        self._instances: Dict[str, JobInstance] = {}
        self._slots_in_use = 0
        self.completed_tasks = 0

    # ------------------------------------------------------------------
    def submit(
        self,
        job_name: str,
        job_type: str,
        callables: List[Callable[[], Any]],
        *,
        priority: int = 10,
        slots_per_task: int = 1,
    ) -> JobInstance:
        """Register a job instance and enqueue one subtask per callable."""
        if not callables:
            raise JobError("a job needs at least one subtask")
        if slots_per_task > self.total_slots:
            raise ResourceExhaustedError(
                f"a subtask requires {slots_per_task} slots but only "
                f"{self.total_slots} exist in the cluster"
            )
        record = self.ots.register(job_name, job_type)
        instance = JobInstance(
            instance_id=record.instance_id, job_name=job_name, job_type=job_type
        )
        for callable_ in callables:
            task = SubTask(
                task_id=f"task_{next(self._task_counter):08d}",
                instance_id=record.instance_id,
                callable=callable_,
                priority=priority,
                slots_required=slots_per_task,
            )
            instance.subtasks.append(task)
            heapq.heappush(self._queue, (priority, next(self._task_counter), task))
        self._instances[record.instance_id] = instance
        self.ots.set_status(record.instance_id, InstanceStatus.RUNNING, progress=0.0)
        logger.debug("submitted %s with %d subtasks", job_name, len(callables))
        return instance

    # ------------------------------------------------------------------
    def run_pending(self) -> int:
        """Drain the task queue; returns the number of subtasks executed."""
        executed = 0
        while self._queue:
            _, _, task = heapq.heappop(self._queue)
            self._execute(task)
            executed += 1
        return executed

    def run_instance(self, instance_id: str) -> JobInstance:
        """Run every queued subtask, then return the (finished) instance."""
        if instance_id not in self._instances:
            raise JobError(f"unknown instance {instance_id!r}")
        self.run_pending()
        return self._instances[instance_id]

    # ------------------------------------------------------------------
    def _execute(self, task: SubTask) -> None:
        if self._slots_in_use + task.slots_required > self.total_slots:
            # Synchronous simulation: resources always free up between tasks,
            # so exceeding the pool here means a single task is too large.
            raise ResourceExhaustedError(
                f"subtask {task.task_id} needs {task.slots_required} slots, "
                f"{self.total_slots - self._slots_in_use} available"
            )
        self._slots_in_use += task.slots_required
        try:
            task.result = task.callable()
        except Exception as exc:  # noqa: BLE001 - propagate via instance status
            task.error = str(exc)
            logger.warning("subtask %s failed: %s", task.task_id, exc)
        finally:
            task.completed = True
            self._slots_in_use -= task.slots_required
            self.completed_tasks += 1
            self._refresh_instance(task.instance_id)

    def _refresh_instance(self, instance_id: str) -> None:
        instance = self._instances[instance_id]
        done = sum(1 for task in instance.subtasks if task.completed)
        progress = done / len(instance.subtasks)
        if instance.failed and instance.completed:
            self.ots.set_status(
                instance_id,
                InstanceStatus.FAILED,
                progress=progress,
                message="; ".join(t.error for t in instance.subtasks if t.error),
            )
        elif instance.completed:
            self.ots.set_status(instance_id, InstanceStatus.TERMINATED, progress=1.0)
        else:
            self.ots.update_progress(instance_id, progress)

    # ------------------------------------------------------------------
    def instance(self, instance_id: str) -> JobInstance:
        if instance_id not in self._instances:
            raise JobError(f"unknown instance {instance_id!r}")
        return self._instances[instance_id]

    def queue_depth(self) -> int:
        return len(self._queue)
