"""Mini SQL engine over MaxCompute tables.

Supports the subset the offline feature/label extraction jobs of the paper
need: ``SELECT`` projections and aggregates, ``WHERE`` filters with boolean
logic, ``GROUP BY``, ``ORDER BY`` and ``LIMIT``.  Statements are parsed into a
small AST (:mod:`repro.maxcompute.sql.parser`), planned and executed against
the columnar tables (:mod:`repro.maxcompute.sql.executor`).
"""

from repro.maxcompute.sql.parser import (
    parse_sql,
    SelectStatement,
    WindowAggregate,
    WindowFrame,
)
from repro.maxcompute.sql.executor import QueryStats, SQLExecutor

__all__ = [
    "parse_sql",
    "SelectStatement",
    "WindowAggregate",
    "WindowFrame",
    "QueryStats",
    "SQLExecutor",
]
