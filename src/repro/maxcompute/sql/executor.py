"""SQL execution over columnar tables.

The executor evaluates a parsed :class:`~repro.maxcompute.sql.parser.SelectStatement`
against the catalog: scan (with zone-map partition pruning on
:class:`~repro.maxcompute.partitioned.PartitionedTable` sources) → filter
(WHERE) → group / aggregate (GROUP BY) or windowed aggregation (OVER) →
project → sort (ORDER BY) → truncate (LIMIT).  Results are returned as new
in-memory :class:`~repro.maxcompute.table.Table` objects so downstream jobs
can consume them like any other table.

Window frames are *left-open / right-closed* over the ordering column —
``(current - preceding, current]`` — matching the feature layer's
``AggregationWindowSpec`` rather than the SQL-standard closed interval, and
are evaluated in a single pass per partition with two monotone pointers.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import SQLPlanError
from repro.maxcompute.catalog import TableCatalog
from repro.maxcompute.partitioned import PartitionedTable, condition_may_match
from repro.maxcompute.sql.parser import (
    Aggregate,
    BooleanOp,
    ColumnRef,
    Comparison,
    Condition,
    InList,
    Not,
    SelectStatement,
    WindowAggregate,
    parse_sql,
)
from repro.maxcompute.table import Column, ColumnType, Schema, Table


def _compare(left: Any, operator: str, right: Any) -> bool:
    if left is None or right is None:
        # SQL three-valued logic collapsed to False for simplicity.
        return False
    if operator == "=":
        return left == right
    if operator == "!=":
        return left != right
    try:
        if operator == "<":
            return left < right
        if operator == "<=":
            return left <= right
        if operator == ">":
            return left > right
        if operator == ">=":
            return left >= right
    except TypeError as exc:
        raise SQLPlanError(f"cannot compare {left!r} and {right!r}") from exc
    raise SQLPlanError(f"unknown operator {operator!r}")


def evaluate_condition(condition: Condition, row: Dict[str, Any]) -> bool:
    """Evaluate a WHERE condition against one row."""
    if isinstance(condition, Comparison):
        if condition.column not in row:
            raise SQLPlanError(f"unknown column {condition.column!r} in WHERE clause")
        return _compare(row[condition.column], condition.operator, condition.value)
    if isinstance(condition, InList):
        if condition.column not in row:
            raise SQLPlanError(f"unknown column {condition.column!r} in WHERE clause")
        return row[condition.column] in condition.values
    if isinstance(condition, Not):
        return not evaluate_condition(condition.operand, row)
    if isinstance(condition, BooleanOp):
        if condition.operator == "and":
            return all(evaluate_condition(op, row) for op in condition.operands)
        return any(evaluate_condition(op, row) for op in condition.operands)
    raise SQLPlanError(f"unsupported condition node {condition!r}")


def _condition_columns(condition: Condition) -> Iterator[str]:
    """Yield every column name referenced anywhere in a condition tree."""
    if isinstance(condition, (Comparison, InList)):
        yield condition.column
    elif isinstance(condition, Not):
        yield from _condition_columns(condition.operand)
    elif isinstance(condition, BooleanOp):
        for operand in condition.operands:
            yield from _condition_columns(operand)


def _aggregate_value(aggregate: Aggregate, rows: Sequence[Dict[str, Any]]) -> Any:
    if aggregate.function == "count":
        if aggregate.column is None:
            return len(rows)
        if aggregate.distinct:
            return len(
                {row[aggregate.column] for row in rows if row.get(aggregate.column) is not None}
            )
        return sum(1 for row in rows if row.get(aggregate.column) is not None)
    if aggregate.column is None:
        raise SQLPlanError(f"{aggregate.function.upper()} requires a column")
    values = [row[aggregate.column] for row in rows if row.get(aggregate.column) is not None]
    if not values:
        return None
    if aggregate.function == "sum":
        return sum(values)
    if aggregate.function == "avg":
        return sum(values) / len(values)
    if aggregate.function == "min":
        return min(values)
    if aggregate.function == "max":
        return max(values)
    raise SQLPlanError(f"unknown aggregate {aggregate.function!r}")


def _window_values(aggregate: WindowAggregate, rows: Sequence[Dict[str, Any]]) -> List[Any]:
    """Evaluate one windowed aggregate for every input row (single pass).

    Rows are bucketed by the partition column, sorted by the ordering column
    (ties broken by input position), and swept once with two monotone
    pointers bounding the ``(t - preceding, t]`` frame.  count/sum/avg keep
    running accumulators, min/max a monotonic deque, COUNT(DISTINCT) a
    multiset — every row costs amortised O(1).
    """
    function = aggregate.function
    if function != "count" and aggregate.column is None:
        raise SQLPlanError(f"{function.upper()} requires a column")
    partitions: Dict[Any, List[int]] = {}
    for index, row in enumerate(rows):
        partitions.setdefault(row[aggregate.partition_by], []).append(index)
    results: List[Any] = [None] * len(rows)
    width = aggregate.frame.preceding
    for key in partitions:
        indices = partitions[key]
        for index in indices:
            if rows[index][aggregate.order_by] is None:
                raise SQLPlanError(
                    f"window ORDER BY column {aggregate.order_by!r} must be non-NULL"
                )
        try:
            order = sorted(indices, key=lambda i: (rows[i][aggregate.order_by], i))
        except TypeError as exc:
            raise SQLPlanError(
                f"window ORDER BY column {aggregate.order_by!r} mixes incomparable values"
            ) from exc
        times = [rows[i][aggregate.order_by] for i in order]
        values: Optional[List[Any]] = None
        if aggregate.column is not None:
            values = [rows[i][aggregate.column] for i in order]
        start = end = 0
        count_nonnull = 0
        running_sum: Any = 0
        distinct_counts: Dict[Any, int] = {}
        extrema: deque = deque()  # positions into `order`, values monotone
        is_min = function == "min"
        for position, index in enumerate(order):
            current_time = times[position]
            while end < len(order) and times[end] <= current_time:
                value = None if values is None else values[end]
                if value is not None:
                    if aggregate.distinct:
                        distinct_counts[value] = distinct_counts.get(value, 0) + 1
                    elif function in ("sum", "avg"):
                        running_sum += value
                        count_nonnull += 1
                    elif function in ("min", "max"):
                        while extrema and (
                            values[extrema[-1]] >= value
                            if is_min
                            else values[extrema[-1]] <= value
                        ):
                            extrema.pop()
                        extrema.append(end)
                    else:  # count(col)
                        count_nonnull += 1
                end += 1
            while times[start] <= current_time - width:
                value = None if values is None else values[start]
                if value is not None:
                    if aggregate.distinct:
                        distinct_counts[value] -= 1
                        if distinct_counts[value] == 0:
                            del distinct_counts[value]
                    elif function in ("sum", "avg"):
                        running_sum -= value
                        count_nonnull -= 1
                    elif function in ("min", "max"):
                        if extrema and extrema[0] == start:
                            extrema.popleft()
                    else:
                        count_nonnull -= 1
                start += 1
            if function == "count":
                if aggregate.column is None:
                    results[index] = end - start
                elif aggregate.distinct:
                    results[index] = len(distinct_counts)
                else:
                    results[index] = count_nonnull
            elif function == "sum":
                results[index] = running_sum if count_nonnull else None
            elif function == "avg":
                results[index] = running_sum / count_nonnull if count_nonnull else None
            elif function in ("min", "max"):
                results[index] = values[extrema[0]] if extrema else None
            else:
                raise SQLPlanError(f"unknown window aggregate {function!r}")
    return results


@dataclass
class QueryStats:
    """Scan accounting for one executed statement.

    ``partitions_*`` describe zone-map pruning on partitioned sources (a
    plain table counts as one partition, always scanned); ``rows_scanned``
    is the number of rows actually read and ``rows_matched`` the number
    surviving the WHERE filter.
    """

    partitions_total: int = 1
    partitions_scanned: int = 1
    partitions_skipped: int = 0
    rows_scanned: int = 0
    rows_matched: int = 0
    pruning_enabled: bool = False


class SQLExecutor:
    """Plans and executes SELECT statements against a :class:`TableCatalog`."""

    def __init__(self, catalog: TableCatalog):
        self.catalog = catalog
        #: Scan statistics of the most recent :meth:`execute` call.
        self.last_stats: Optional[QueryStats] = None

    # ------------------------------------------------------------------
    def execute(
        self,
        sql: str | SelectStatement,
        *,
        result_name: str = "query_result",
        prune_partitions: bool = True,
    ) -> Table:
        """Run one SELECT and return its result as a new in-memory table.

        On :class:`PartitionedTable` sources, partitions whose zone map
        proves the WHERE condition unsatisfiable are skipped (disable with
        ``prune_partitions=False``); the decision is reported in
        :attr:`last_stats`.  The result schema is always derived from the
        source schema plus aggregate typing rules, so empty results keep
        their column types.
        """
        statement = parse_sql(sql) if isinstance(sql, str) else sql
        source = self.catalog.get_table(statement.table)
        self._validate_columns(statement, source)
        stats = QueryStats(pruning_enabled=prune_partitions)

        rows = self._scan(statement, source, stats, prune_partitions)
        stats.rows_matched = len(rows)

        if statement.has_window_functions:
            if statement.group_by or statement.has_aggregates:
                raise SQLPlanError(
                    "window functions cannot be combined with GROUP BY or plain aggregates"
                )
            output_rows = self._window(statement, rows)
        elif statement.group_by or statement.has_aggregates:
            output_rows = self._aggregate(statement, rows)
        else:
            output_rows = self._project(statement, rows)

        schema = self._output_schema(statement, source)
        if statement.order_by is not None:
            if statement.order_by not in schema:
                raise SQLPlanError(f"ORDER BY column {statement.order_by!r} not in result")
            output_rows.sort(
                key=lambda row: (row[statement.order_by] is None, row[statement.order_by]),
                reverse=statement.order_desc,
            )
        if statement.limit is not None:
            output_rows = output_rows[: statement.limit]

        result = Table(result_name, schema)
        result.extend(output_rows)
        self.last_stats = stats
        return result

    # ------------------------------------------------------------------
    def _scan(
        self,
        statement: SelectStatement,
        source: Table,
        stats: QueryStats,
        prune_partitions: bool,
    ) -> List[Dict[str, Any]]:
        """Read matching rows, skipping provably non-matching partitions.

        On a partitioned source, rows come out in sorted-partition-key order
        (insertion order within a partition); on a plain table, in insertion
        order.
        """
        if isinstance(source, PartitionedTable):
            stats.partitions_total = source.num_partitions
            stats.partitions_scanned = 0
            kept: List[Dict[str, Any]] = []
            for _, indices, zone_map in source.iter_partitions():
                if (
                    prune_partitions
                    and statement.where is not None
                    and not condition_may_match(statement.where, zone_map)
                ):
                    stats.partitions_skipped += 1
                    continue
                stats.partitions_scanned += 1
                stats.rows_scanned += len(indices)
                for index in indices:
                    row = source.row(index)
                    if self._keep(statement, row):
                        kept.append(row)
            return kept
        stats.rows_scanned = source.num_rows
        return [row for row in source.rows() if self._keep(statement, row)]

    def _keep(self, statement: SelectStatement, row: Dict[str, Any]) -> bool:
        if statement.where is None:
            return True
        return evaluate_condition(statement.where, row)

    def _validate_columns(self, statement: SelectStatement, source: Table) -> None:
        for item in statement.items:
            column = item.name if isinstance(item, ColumnRef) else item.column
            if column is not None and column not in source.schema:
                raise SQLPlanError(
                    f"unknown column {column!r} in table {statement.table!r}"
                )
            if isinstance(item, WindowAggregate):
                for referenced in (item.partition_by, item.order_by):
                    if referenced not in source.schema:
                        raise SQLPlanError(
                            f"unknown column {referenced!r} in OVER clause"
                        )
        for column in statement.group_by:
            if column not in source.schema:
                raise SQLPlanError(f"unknown GROUP BY column {column!r}")
        if statement.where is not None:
            for column in _condition_columns(statement.where):
                if column not in source.schema:
                    raise SQLPlanError(f"unknown column {column!r} in WHERE clause")

    def _output_columns(self, statement: SelectStatement, source: Table) -> List[str]:
        if statement.select_all:
            return source.schema.names()
        names = list(statement.group_by)
        for item in statement.items:
            output = item.output_name
            if output not in names:
                names.append(output)
        return names

    def _aggregate_type(self, item: Aggregate | WindowAggregate, source: Table) -> ColumnType:
        """Result type of an aggregate: COUNT→bigint, AVG→double, else source."""
        if item.function == "count":
            return ColumnType.BIGINT
        if item.function == "avg":
            return ColumnType.DOUBLE
        if item.column is None:
            raise SQLPlanError(f"{item.function.upper()} requires a column")
        source_type = source.schema.column(item.column).type
        if item.function == "sum" and source_type in (ColumnType.BIGINT, ColumnType.BOOLEAN):
            return ColumnType.BIGINT
        return source_type

    def _output_schema(self, statement: SelectStatement, source: Table) -> Schema:
        """Derive the typed result schema (also the empty-result schema)."""
        if statement.select_all:
            return Schema(columns=list(source.schema.columns))
        columns: List[Column] = []
        seen: set = set()
        for name in statement.group_by:
            columns.append(Column(name, source.schema.column(name).type))
            seen.add(name)
        for item in statement.items:
            output = item.output_name
            if output in seen:
                continue
            seen.add(output)
            if isinstance(item, ColumnRef):
                columns.append(Column(output, source.schema.column(item.name).type))
            else:
                columns.append(Column(output, self._aggregate_type(item, source)))
        return Schema(columns=columns)

    def _project(
        self, statement: SelectStatement, rows: List[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        if statement.select_all:
            return rows
        projected = []
        for row in rows:
            projected.append(
                {item.output_name: row[item.name] for item in statement.items}  # type: ignore[union-attr]
            )
        return projected

    def _window(
        self, statement: SelectStatement, rows: List[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """Project plain columns and windowed aggregates, one output per input row."""
        values_by_item: List[Optional[List[Any]]] = []
        for item in statement.items:
            if isinstance(item, WindowAggregate):
                values_by_item.append(_window_values(item, rows))
            else:
                values_by_item.append(None)
        output: List[Dict[str, Any]] = []
        for index, row in enumerate(rows):
            record: Dict[str, Any] = {}
            for item, values in zip(statement.items, values_by_item):
                if values is not None:
                    record[item.output_name] = values[index]
                else:
                    record[item.output_name] = row[item.name]  # type: ignore[union-attr]
            output.append(record)
        return output

    def _aggregate(
        self, statement: SelectStatement, rows: List[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        aggregates = [item for item in statement.items if isinstance(item, Aggregate)]
        plain = [item for item in statement.items if isinstance(item, ColumnRef)]
        for item in plain:
            if item.name not in statement.group_by:
                raise SQLPlanError(
                    f"column {item.name!r} must appear in GROUP BY or inside an aggregate"
                )

        groups: Dict[Tuple[Any, ...], List[Dict[str, Any]]] = {}
        if statement.group_by:
            for row in rows:
                key = tuple(row[column] for column in statement.group_by)
                groups.setdefault(key, []).append(row)
        else:
            groups[()] = rows

        output: List[Dict[str, Any]] = []
        for key, group_rows in groups.items():
            record: Dict[str, Any] = {
                column: value for column, value in zip(statement.group_by, key)
            }
            for item in plain:
                record[item.output_name] = record.get(item.name)
            for aggregate in aggregates:
                record[aggregate.output_name] = _aggregate_value(aggregate, group_rows)
            output.append(record)
        return output
