"""SQL execution over columnar tables.

The executor evaluates a parsed :class:`~repro.maxcompute.sql.parser.SelectStatement`
against the catalog: filter (WHERE) → group / aggregate (GROUP BY) → project →
sort (ORDER BY) → truncate (LIMIT).  Results are returned as new in-memory
:class:`~repro.maxcompute.table.Table` objects so downstream jobs can consume
them like any other table.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import SQLPlanError
from repro.maxcompute.catalog import TableCatalog
from repro.maxcompute.sql.parser import (
    Aggregate,
    BooleanOp,
    ColumnRef,
    Comparison,
    Condition,
    InList,
    Not,
    SelectStatement,
    parse_sql,
)
from repro.maxcompute.table import Schema, Table, table_from_records


def _compare(left: Any, operator: str, right: Any) -> bool:
    if left is None or right is None:
        # SQL three-valued logic collapsed to False for simplicity.
        return False
    if operator == "=":
        return left == right
    if operator == "!=":
        return left != right
    try:
        if operator == "<":
            return left < right
        if operator == "<=":
            return left <= right
        if operator == ">":
            return left > right
        if operator == ">=":
            return left >= right
    except TypeError as exc:
        raise SQLPlanError(f"cannot compare {left!r} and {right!r}") from exc
    raise SQLPlanError(f"unknown operator {operator!r}")


def evaluate_condition(condition: Condition, row: Dict[str, Any]) -> bool:
    """Evaluate a WHERE condition against one row."""
    if isinstance(condition, Comparison):
        if condition.column not in row:
            raise SQLPlanError(f"unknown column {condition.column!r} in WHERE clause")
        return _compare(row[condition.column], condition.operator, condition.value)
    if isinstance(condition, InList):
        if condition.column not in row:
            raise SQLPlanError(f"unknown column {condition.column!r} in WHERE clause")
        return row[condition.column] in condition.values
    if isinstance(condition, Not):
        return not evaluate_condition(condition.operand, row)
    if isinstance(condition, BooleanOp):
        if condition.operator == "and":
            return all(evaluate_condition(op, row) for op in condition.operands)
        return any(evaluate_condition(op, row) for op in condition.operands)
    raise SQLPlanError(f"unsupported condition node {condition!r}")


def _aggregate_value(aggregate: Aggregate, rows: Sequence[Dict[str, Any]]) -> Any:
    if aggregate.function == "count":
        if aggregate.column is None:
            return len(rows)
        return sum(1 for row in rows if row.get(aggregate.column) is not None)
    if aggregate.column is None:
        raise SQLPlanError(f"{aggregate.function.upper()} requires a column")
    values = [row[aggregate.column] for row in rows if row.get(aggregate.column) is not None]
    if not values:
        return None
    if aggregate.function == "sum":
        return sum(values)
    if aggregate.function == "avg":
        return sum(values) / len(values)
    if aggregate.function == "min":
        return min(values)
    if aggregate.function == "max":
        return max(values)
    raise SQLPlanError(f"unknown aggregate {aggregate.function!r}")


class SQLExecutor:
    """Plans and executes SELECT statements against a :class:`TableCatalog`."""

    def __init__(self, catalog: TableCatalog):
        self.catalog = catalog

    # ------------------------------------------------------------------
    def execute(self, sql: str | SelectStatement, *, result_name: str = "query_result") -> Table:
        statement = parse_sql(sql) if isinstance(sql, str) else sql
        source = self.catalog.get_table(statement.table)
        self._validate_columns(statement, source)

        rows = [row for row in source.rows() if self._keep(statement, row)]

        if statement.group_by or statement.has_aggregates:
            output_rows = self._aggregate(statement, rows)
        else:
            output_rows = self._project(statement, rows)

        if statement.order_by is not None:
            if output_rows and statement.order_by not in output_rows[0]:
                raise SQLPlanError(f"ORDER BY column {statement.order_by!r} not in result")
            output_rows.sort(
                key=lambda row: (row[statement.order_by] is None, row[statement.order_by]),
                reverse=statement.order_desc,
            )
        if statement.limit is not None:
            output_rows = output_rows[: statement.limit]

        if not output_rows:
            # Preserve the output schema even for empty results.
            names = self._output_columns(statement, source)
            return Table(result_name, Schema.from_dict({name: "string" for name in names}))
        return table_from_records(result_name, output_rows)

    # ------------------------------------------------------------------
    def _keep(self, statement: SelectStatement, row: Dict[str, Any]) -> bool:
        if statement.where is None:
            return True
        return evaluate_condition(statement.where, row)

    def _validate_columns(self, statement: SelectStatement, source: Table) -> None:
        for item in statement.items:
            column = item.name if isinstance(item, ColumnRef) else item.column
            if column is not None and column not in source.schema:
                raise SQLPlanError(
                    f"unknown column {column!r} in table {statement.table!r}"
                )
        for column in statement.group_by:
            if column not in source.schema:
                raise SQLPlanError(f"unknown GROUP BY column {column!r}")

    def _output_columns(self, statement: SelectStatement, source: Table) -> List[str]:
        if statement.select_all:
            return source.schema.names()
        names = list(statement.group_by)
        for item in statement.items:
            output = item.output_name
            if output not in names:
                names.append(output)
        return names

    def _project(
        self, statement: SelectStatement, rows: List[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        if statement.select_all:
            return rows
        projected = []
        for row in rows:
            projected.append(
                {item.output_name: row[item.name] for item in statement.items}  # type: ignore[union-attr]
            )
        return projected

    def _aggregate(
        self, statement: SelectStatement, rows: List[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        aggregates = [item for item in statement.items if isinstance(item, Aggregate)]
        plain = [item for item in statement.items if isinstance(item, ColumnRef)]
        for item in plain:
            if item.name not in statement.group_by:
                raise SQLPlanError(
                    f"column {item.name!r} must appear in GROUP BY or inside an aggregate"
                )

        groups: Dict[Tuple[Any, ...], List[Dict[str, Any]]] = {}
        if statement.group_by:
            for row in rows:
                key = tuple(row[column] for column in statement.group_by)
                groups.setdefault(key, []).append(row)
        else:
            groups[()] = rows

        output: List[Dict[str, Any]] = []
        for key, group_rows in groups.items():
            record: Dict[str, Any] = {
                column: value for column, value in zip(statement.group_by, key)
            }
            for item in plain:
                record[item.output_name] = record.get(item.name)
            for aggregate in aggregates:
                record[aggregate.output_name] = _aggregate_value(aggregate, group_rows)
            output.append(record)
        return output
