"""SQL tokenizer and recursive-descent parser.

Grammar (case-insensitive keywords)::

    statement   := SELECT select_list FROM identifier
                   [WHERE condition]
                   [GROUP BY identifier ("," identifier)*]
                   [ORDER BY identifier [ASC|DESC]]
                   [LIMIT non_negative_integer]
    select_list := "*" | select_item ("," select_item)*
    select_item := (window_agg | aggregate | identifier) [AS identifier]
    aggregate   := (COUNT|SUM|AVG|MIN|MAX) "(" ("*" | [DISTINCT] identifier) ")"
    window_agg  := aggregate OVER "(" PARTITION BY identifier
                   ORDER BY identifier [ASC]
                   RANGE BETWEEN number PRECEDING AND CURRENT ROW ")"
    condition   := or_expr
    or_expr     := and_expr (OR and_expr)*
    and_expr    := unary (AND unary)*
    unary       := [NOT] primary
    primary     := "(" condition ")" | comparison
    comparison  := identifier op literal | identifier IN "(" literal ("," literal)* ")"
    op          := "=" | "!=" | "<>" | "<" | "<=" | ">" | ">="
    literal     := number | string | TRUE | FALSE | NULL
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.exceptions import SQLParseError

_KEYWORDS = {
    "select",
    "from",
    "where",
    "group",
    "order",
    "by",
    "limit",
    "and",
    "or",
    "not",
    "as",
    "in",
    "asc",
    "desc",
    "true",
    "false",
    "null",
    "count",
    "sum",
    "avg",
    "min",
    "max",
    "distinct",
    "over",
    "partition",
    "range",
    "between",
    "preceding",
    "current",
    "row",
}

_TOKEN_PATTERN = re.compile(
    r"\s*(?:"
    r"(?P<number>-?\d+\.\d+|-?\d+)"
    r"|(?P<string>'(?:[^']|'')*')"
    r"|(?P<identifier>[A-Za-z_][A-Za-z_0-9\.]*)"
    r"|(?P<op><>|!=|<=|>=|=|<|>|\(|\)|,|\*)"
    r")"
)


@dataclass
class Token:
    kind: str  # "number" | "string" | "identifier" | "keyword" | "op"
    value: str


def tokenize(sql: str) -> List[Token]:
    """Split a SQL string into tokens, raising on unknown characters."""
    tokens: List[Token] = []
    position = 0
    while position < len(sql):
        match = _TOKEN_PATTERN.match(sql, position)
        if match is None:
            remainder = sql[position:].strip()
            if not remainder:
                break
            raise SQLParseError(f"unexpected character near {remainder[:20]!r}")
        position = match.end()
        if match.lastgroup == "number":
            tokens.append(Token("number", match.group("number")))
        elif match.lastgroup == "string":
            raw = match.group("string")[1:-1].replace("''", "'")
            tokens.append(Token("string", raw))
        elif match.lastgroup == "identifier":
            text = match.group("identifier")
            kind = "keyword" if text.lower() in _KEYWORDS else "identifier"
            tokens.append(Token(kind, text.lower() if kind == "keyword" else text))
        else:
            tokens.append(Token("op", match.group("op")))
    return tokens


# ---------------------------------------------------------------------------
# AST nodes
# ---------------------------------------------------------------------------

Literal = Union[int, float, str, bool, None]


@dataclass
class ColumnRef:
    name: str
    alias: Optional[str] = None

    @property
    def output_name(self) -> str:
        return self.alias or self.name


@dataclass
class Aggregate:
    function: str  # count | sum | avg | min | max
    column: Optional[str]  # None for COUNT(*)
    alias: Optional[str] = None
    distinct: bool = False  # COUNT(DISTINCT col) only

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        target = self.column or "*"
        if self.distinct:
            target = f"distinct {target}"
        return f"{self.function}({target})"


@dataclass
class WindowFrame:
    """``RANGE BETWEEN <preceding> PRECEDING AND CURRENT ROW`` frame bounds.

    The executor interprets the frame as *left-open / right-closed* over the
    ordering column's values — ``(current - preceding, current]`` — matching
    ``AggregationWindowSpec`` rather than the SQL-standard closed interval.
    """

    preceding: float  # window width in ordering-column units


@dataclass
class WindowAggregate:
    """An aggregate with an ``OVER (PARTITION BY ... ORDER BY ... RANGE ...)`` clause.

    Evaluated per input row over the sliding event-time frame within the
    row's partition; unlike :class:`Aggregate` it does not collapse rows.
    """

    function: str  # count | sum | avg | min | max
    column: Optional[str]  # None for COUNT(*)
    partition_by: str
    order_by: str
    frame: WindowFrame
    alias: Optional[str] = None
    distinct: bool = False  # COUNT(DISTINCT col) only

    @property
    def output_name(self) -> str:
        """Result-column name: the alias, or a rendering of the call."""
        if self.alias:
            return self.alias
        target = self.column or "*"
        if self.distinct:
            target = f"distinct {target}"
        return f"{self.function}({target}) over ({self.partition_by})"


@dataclass
class Comparison:
    column: str
    operator: str
    value: Literal


@dataclass
class InList:
    column: str
    values: List[Literal]


@dataclass
class Not:
    operand: "Condition"


@dataclass
class BooleanOp:
    operator: str  # "and" | "or"
    operands: List["Condition"]


Condition = Union[Comparison, InList, Not, BooleanOp]
SelectItem = Union[ColumnRef, Aggregate, WindowAggregate]


@dataclass
class SelectStatement:
    table: str
    select_all: bool = False
    items: List[SelectItem] = field(default_factory=list)
    where: Optional[Condition] = None
    group_by: List[str] = field(default_factory=list)
    order_by: Optional[str] = None
    order_desc: bool = False
    limit: Optional[int] = None

    @property
    def has_aggregates(self) -> bool:
        """True when any select item is a plain (row-collapsing) aggregate."""
        return any(isinstance(item, Aggregate) for item in self.items)

    @property
    def has_window_functions(self) -> bool:
        """True when any select item is a windowed (per-row) aggregate."""
        return any(isinstance(item, WindowAggregate) for item in self.items)


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._position = 0

    # -- token helpers --------------------------------------------------
    def _peek(self) -> Optional[Token]:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def _advance(self) -> Token:
        token = self._peek()
        if token is None:
            raise SQLParseError("unexpected end of statement")
        self._position += 1
        return token

    def _expect_keyword(self, keyword: str) -> None:
        token = self._advance()
        if token.kind != "keyword" or token.value != keyword:
            raise SQLParseError(f"expected {keyword.upper()}, found {token.value!r}")

    def _match_keyword(self, keyword: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == "keyword" and token.value == keyword:
            self._position += 1
            return True
        return False

    def _match_op(self, op: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == "op" and token.value == op:
            self._position += 1
            return True
        return False

    def _expect_op(self, op: str) -> None:
        token = self._advance()
        if token.kind != "op" or token.value != op:
            raise SQLParseError(f"expected {op!r}, found {token.value!r}")

    def _expect_identifier(self) -> str:
        token = self._advance()
        if token.kind != "identifier":
            raise SQLParseError(f"expected identifier, found {token.value!r}")
        return token.value

    # -- grammar ---------------------------------------------------------
    def parse(self) -> SelectStatement:
        self._expect_keyword("select")
        select_all, items = self._parse_select_list()
        self._expect_keyword("from")
        table = self._expect_identifier()
        statement = SelectStatement(table=table, select_all=select_all, items=items)
        if self._match_keyword("where"):
            statement.where = self._parse_condition()
        if self._match_keyword("group"):
            self._expect_keyword("by")
            statement.group_by.append(self._expect_identifier())
            while self._match_op(","):
                statement.group_by.append(self._expect_identifier())
        if self._match_keyword("order"):
            self._expect_keyword("by")
            statement.order_by = self._expect_identifier()
            if self._match_keyword("desc"):
                statement.order_desc = True
            else:
                self._match_keyword("asc")
        if self._match_keyword("limit"):
            token = self._advance()
            if token.kind != "number":
                raise SQLParseError(f"LIMIT expects a number, found {token.value!r}")
            limit = int(float(token.value))
            if limit < 0:
                raise SQLParseError(f"LIMIT must be non-negative, got {limit}")
            statement.limit = limit
        if self._peek() is not None:
            raise SQLParseError(f"unexpected trailing token {self._peek().value!r}")
        return statement

    def _parse_select_list(self) -> tuple[bool, List[SelectItem]]:
        if self._match_op("*"):
            return True, []
        items = [self._parse_select_item()]
        while self._match_op(","):
            items.append(self._parse_select_item())
        return False, items

    def _parse_select_item(self) -> SelectItem:
        token = self._peek()
        if token is None:
            raise SQLParseError("unexpected end of select list")
        if token.kind == "keyword" and token.value in ("count", "sum", "avg", "min", "max"):
            self._advance()
            self._expect_op("(")
            distinct = self._match_keyword("distinct")
            if distinct and token.value != "count":
                raise SQLParseError(
                    f"DISTINCT is only supported inside COUNT, not {token.value.upper()}"
                )
            if self._match_op("*"):
                if distinct:
                    raise SQLParseError("COUNT(DISTINCT *) is not supported")
                column: Optional[str] = None
            else:
                column = self._expect_identifier()
            self._expect_op(")")
            if self._match_keyword("over"):
                partition_by, order_by, frame = self._parse_over_clause()
                alias = self._expect_identifier() if self._match_keyword("as") else None
                return WindowAggregate(
                    function=token.value,
                    column=column,
                    partition_by=partition_by,
                    order_by=order_by,
                    frame=frame,
                    alias=alias,
                    distinct=distinct,
                )
            alias = self._expect_identifier() if self._match_keyword("as") else None
            return Aggregate(function=token.value, column=column, alias=alias, distinct=distinct)
        name = self._expect_identifier()
        alias = self._expect_identifier() if self._match_keyword("as") else None
        return ColumnRef(name=name, alias=alias)

    def _parse_over_clause(self) -> tuple[str, str, WindowFrame]:
        self._expect_op("(")
        self._expect_keyword("partition")
        self._expect_keyword("by")
        partition_by = self._expect_identifier()
        self._expect_keyword("order")
        self._expect_keyword("by")
        order_by = self._expect_identifier()
        if self._match_keyword("desc"):
            raise SQLParseError("window ORDER BY only supports ascending order")
        self._match_keyword("asc")
        self._expect_keyword("range")
        self._expect_keyword("between")
        token = self._advance()
        if token.kind != "number":
            raise SQLParseError(f"RANGE BETWEEN expects a number, found {token.value!r}")
        preceding = float(token.value)
        if preceding < 0:
            raise SQLParseError(f"RANGE frame width must be non-negative, got {token.value}")
        self._expect_keyword("preceding")
        self._expect_keyword("and")
        self._expect_keyword("current")
        self._expect_keyword("row")
        self._expect_op(")")
        return partition_by, order_by, WindowFrame(preceding=preceding)

    # -- conditions -------------------------------------------------------
    def _parse_condition(self) -> Condition:
        return self._parse_or()

    def _parse_or(self) -> Condition:
        operands = [self._parse_and()]
        while self._match_keyword("or"):
            operands.append(self._parse_and())
        if len(operands) == 1:
            return operands[0]
        return BooleanOp(operator="or", operands=operands)

    def _parse_and(self) -> Condition:
        operands = [self._parse_unary()]
        while self._match_keyword("and"):
            operands.append(self._parse_unary())
        if len(operands) == 1:
            return operands[0]
        return BooleanOp(operator="and", operands=operands)

    def _parse_unary(self) -> Condition:
        if self._match_keyword("not"):
            return Not(operand=self._parse_unary())
        if self._match_op("("):
            condition = self._parse_condition()
            self._expect_op(")")
            return condition
        return self._parse_comparison()

    def _parse_comparison(self) -> Condition:
        column = self._expect_identifier()
        if self._match_keyword("in"):
            self._expect_op("(")
            values = [self._parse_literal()]
            while self._match_op(","):
                values.append(self._parse_literal())
            self._expect_op(")")
            return InList(column=column, values=values)
        token = self._advance()
        if token.kind != "op" or token.value not in ("=", "!=", "<>", "<", "<=", ">", ">="):
            raise SQLParseError(f"expected a comparison operator, found {token.value!r}")
        operator = "!=" if token.value == "<>" else token.value
        return Comparison(column=column, operator=operator, value=self._parse_literal())

    def _parse_literal(self) -> Literal:
        token = self._advance()
        if token.kind == "number":
            return float(token.value) if "." in token.value else int(token.value)
        if token.kind == "string":
            return token.value
        if token.kind == "keyword" and token.value in ("true", "false"):
            return token.value == "true"
        if token.kind == "keyword" and token.value == "null":
            return None
        raise SQLParseError(f"expected a literal, found {token.value!r}")


def parse_sql(sql: str) -> SelectStatement:
    """Parse a SELECT statement into an AST."""
    tokens = tokenize(sql)
    if not tokens:
        raise SQLParseError("empty SQL statement")
    return _Parser(tokens).parse()
