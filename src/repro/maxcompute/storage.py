"""Pangu-like storage layer.

Pangu is MaxCompute's distributed disk-storage module; results of finished
jobs are persisted there.  The simulation keeps tables in memory, tracks
simple storage statistics, and can snapshot tables to JSON files when a
directory is configured — enough to exercise the store/load code path the
offline pipeline depends on.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

from repro.exceptions import StorageError, TableNotFoundError
from repro.maxcompute.table import Schema, Table, table_from_records


class PanguStorage:
    """In-memory table store with optional JSON persistence."""

    def __init__(self, *, root_directory: Optional[str | Path] = None):
        self._tables: Dict[str, Table] = {}
        self._root = Path(root_directory) if root_directory is not None else None
        if self._root is not None:
            self._root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def put(self, table: Table, *, overwrite: bool = True) -> None:
        if not overwrite and table.name in self._tables:
            raise StorageError(f"table {table.name!r} already stored")
        self._tables[table.name] = table

    def get(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError as exc:
            raise TableNotFoundError(f"table {name!r} is not stored in Pangu") from exc

    def delete(self, name: str) -> None:
        if name not in self._tables:
            raise TableNotFoundError(f"table {name!r} is not stored in Pangu")
        del self._tables[name]

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def list_tables(self) -> List[str]:
        return sorted(self._tables)

    # ------------------------------------------------------------------
    def storage_report(self) -> Dict[str, int]:
        """Rows stored per table (a stand-in for Pangu's capacity accounting)."""
        return {name: table.num_rows for name, table in sorted(self._tables.items())}

    def total_rows(self) -> int:
        return sum(table.num_rows for table in self._tables.values())

    # ------------------------------------------------------------------
    def snapshot(self, name: str) -> Path:
        """Persist one table to ``<root>/<name>.json``."""
        if self._root is None:
            raise StorageError("PanguStorage was created without a root directory")
        table = self.get(name)
        path = self._root / f"{name}.json"
        payload = {
            "name": table.name,
            "schema": {column.name: column.type.value for column in table.schema.columns},
            "rows": table.to_records(),
        }
        path.write_text(json.dumps(payload))
        return path

    def restore(self, name: str) -> Table:
        """Load a previously snapshotted table back into the store."""
        if self._root is None:
            raise StorageError("PanguStorage was created without a root directory")
        path = self._root / f"{name}.json"
        if not path.exists():
            raise TableNotFoundError(f"no snapshot for table {name!r} at {path}")
        payload = json.loads(path.read_text())
        schema = Schema.from_dict(payload["schema"])
        table = table_from_records(payload["name"], payload["rows"], schema=schema)
        self.put(table)
        return table
