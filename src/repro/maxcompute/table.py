"""Columnar tables.

Tables store data column-wise (lists per column) with a typed schema, the
storage layout a MaxCompute-like warehouse would use for scan-heavy analytical
jobs.  Rows are plain dictionaries at the API boundary so that the data
generator's records load directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.exceptions import SchemaError


class ColumnType(str, Enum):
    """Supported column types."""

    STRING = "string"
    BIGINT = "bigint"
    DOUBLE = "double"
    BOOLEAN = "boolean"

    def coerce(self, value: Any) -> Any:
        """Coerce ``value`` to this type; raises :class:`SchemaError` if impossible."""
        if value is None:
            return None
        try:
            if self is ColumnType.STRING:
                return str(value)
            if self is ColumnType.BIGINT:
                return int(value)
            if self is ColumnType.DOUBLE:
                return float(value)
            if self is ColumnType.BOOLEAN:
                if isinstance(value, str):
                    return value.lower() in ("true", "1", "yes")
                return bool(value)
        except (TypeError, ValueError) as exc:
            raise SchemaError(f"cannot coerce {value!r} to {self.value}") from exc
        raise SchemaError(f"unsupported column type {self!r}")  # pragma: no cover


@dataclass(frozen=True)
class Column:
    """One column of a table schema."""

    name: str
    type: ColumnType
    comment: str = ""


@dataclass
class Schema:
    """Ordered collection of columns."""

    columns: List[Column] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [column.name for column in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError("duplicate column names in schema")

    def names(self) -> List[str]:
        return [column.name for column in self.columns]

    def column(self, name: str) -> Column:
        for column in self.columns:
            if column.name == name:
                return column
        raise SchemaError(f"unknown column {name!r}")

    def __contains__(self, name: str) -> bool:
        return any(column.name == name for column in self.columns)

    def __len__(self) -> int:
        return len(self.columns)

    @classmethod
    def from_dict(cls, spec: Dict[str, str]) -> "Schema":
        """Build a schema from ``{"name": "type"}`` pairs."""
        return cls(columns=[Column(name, ColumnType(type_)) for name, type_ in spec.items()])

    @classmethod
    def infer(cls, rows: Sequence[Dict[str, Any]]) -> "Schema":
        """Infer a schema by scanning *all* rows (bool before int: bool is an int subclass).

        Mixed bigint/double columns widen to DOUBLE instead of truncating the
        floats, NULLs defer to the first non-NULL value, and a column that is
        NULL in every row raises :class:`SchemaError` — there is no value to
        type it from, and silently picking STRING corrupts later appends.
        """
        if not rows:
            raise SchemaError("cannot infer a schema from zero rows")
        types: Dict[str, Optional[ColumnType]] = {name: None for name in rows[0]}
        for row in rows:
            if set(row) != set(types):
                raise SchemaError(
                    f"inconsistent row keys: expected {sorted(types)}, got {sorted(row)}"
                )
            for name, value in row.items():
                if value is None:
                    continue
                if isinstance(value, bool):
                    observed = ColumnType.BOOLEAN
                elif isinstance(value, int):
                    observed = ColumnType.BIGINT
                elif isinstance(value, float):
                    observed = ColumnType.DOUBLE
                else:
                    observed = ColumnType.STRING
                current = types[name]
                if current is None or current == observed:
                    types[name] = observed
                elif {current, observed} == {ColumnType.BIGINT, ColumnType.DOUBLE}:
                    types[name] = ColumnType.DOUBLE
                else:
                    raise SchemaError(
                        f"column {name!r} mixes {current.value} and {observed.value} values"
                    )
        null_only = sorted(name for name, type_ in types.items() if type_ is None)
        if null_only:
            raise SchemaError(f"columns {null_only} are NULL in every row; cannot infer a type")
        columns = [Column(name, type_) for name, type_ in types.items() if type_ is not None]
        return cls(columns=columns)


class Table:
    """A named columnar table."""

    def __init__(self, name: str, schema: Schema, *, comment: str = ""):
        if not name:
            raise SchemaError("table name must be non-empty")
        self.name = name
        self.schema = schema
        self.comment = comment
        self._columns: Dict[str, List[Any]] = {c: [] for c in schema.names()}
        self._num_rows = 0

    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return self._num_rows

    def __len__(self) -> int:
        return self._num_rows

    def append(self, row: Dict[str, Any]) -> None:
        """Append one row (missing columns become NULL, extras are rejected)."""
        unknown = set(row) - set(self._columns)
        if unknown:
            raise SchemaError(f"row contains unknown columns {sorted(unknown)}")
        for column in self.schema.columns:
            value = row.get(column.name)
            self._columns[column.name].append(column.type.coerce(value))
        self._num_rows += 1

    def extend(self, rows: Iterable[Dict[str, Any]]) -> None:
        for row in rows:
            self.append(row)

    # ------------------------------------------------------------------
    def column(self, name: str) -> List[Any]:
        """Raw column values (reference; treat as read-only)."""
        if name not in self._columns:
            raise SchemaError(f"unknown column {name!r} in table {self.name!r}")
        return self._columns[name]

    def row(self, index: int) -> Dict[str, Any]:
        if not 0 <= index < self._num_rows:
            raise SchemaError(f"row index {index} out of range for table {self.name!r}")
        return {name: values[index] for name, values in self._columns.items()}

    def rows(self) -> Iterator[Dict[str, Any]]:
        for index in range(self._num_rows):
            yield self.row(index)

    def to_records(self) -> List[Dict[str, Any]]:
        return list(self.rows())

    def head(self, limit: int = 5) -> List[Dict[str, Any]]:
        return [self.row(i) for i in range(min(limit, self._num_rows))]

    # ------------------------------------------------------------------
    def select_rows(self, indices: Sequence[int]) -> "Table":
        """New table containing only ``indices`` (used by the SQL executor)."""
        result = Table(self.name, self.schema, comment=self.comment)
        for index in indices:
            result.append(self.row(index))
        return result

    def partition_rows(self, num_splits: int) -> List[List[int]]:
        """Split row indices into ``num_splits`` contiguous chunks (for subtasks).

        Previously misnamed ``partition_column(name, num_splits)`` — the
        ``name`` argument was ignored entirely, so the signature promised
        value-based partitioning it never did.  Value-based partitioning
        lives in :class:`repro.maxcompute.partitioned.PartitionedTable`.
        """
        if num_splits <= 0:
            raise SchemaError("num_splits must be positive")
        indices = list(range(self._num_rows))
        chunk = max(1, (self._num_rows + num_splits - 1) // num_splits)
        return [indices[i : i + chunk] for i in range(0, self._num_rows, chunk)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Table(name={self.name!r}, rows={self._num_rows}, columns={len(self.schema)})"


def table_from_records(
    name: str, records: Sequence[Dict[str, Any]], *, schema: Optional[Schema] = None
) -> Table:
    """Build a table from dict records, inferring the schema when not given."""
    if schema is None:
        schema = Schema.infer(records)
    table = Table(name, schema)
    table.extend(records)
    return table
