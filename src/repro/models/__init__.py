"""Detection methods.

The paper "extensively investigates and validates rule-based methods, anomaly
detection approaches and classification models":

* rule-based: ID3 and C5.0 decision trees operating on discretised
  features-as-rules (:mod:`repro.models.tree`),
* anomaly detection: Isolation Forest, which needs no labels
  (:mod:`repro.models.isolation_forest`),
* classification: Logistic Regression with feature discretisation and L1
  regularisation, and Gradient Boosting Decision Trees
  (:mod:`repro.models.logistic_regression`, :mod:`repro.models.gbdt`).

All models are implemented from scratch on NumPy and share the
:class:`~repro.models.base.BaseDetector` interface (``fit`` / ``predict_proba``
/ ``predict``), so the experiment harness can swap them freely.  The
parameter-server training drivers used for Figure 10 live in
:mod:`repro.models.distributed`.
"""

from repro.models.base import BaseDetector, DetectionResult
from repro.models.tree.id3 import ID3Classifier
from repro.models.tree.c45 import C45Classifier
from repro.models.tree.cart import RegressionTree
from repro.models.isolation_forest import IsolationForest
from repro.models.logistic_regression import LogisticRegression
from repro.models.gbdt import GradientBoostingClassifier
from repro.models.rules import Rule, RuleSet, extract_rules

__all__ = [
    "BaseDetector",
    "DetectionResult",
    "ID3Classifier",
    "C45Classifier",
    "RegressionTree",
    "IsolationForest",
    "LogisticRegression",
    "GradientBoostingClassifier",
    "Rule",
    "RuleSet",
    "extract_rules",
]
