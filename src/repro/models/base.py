"""Common interface of all detection methods."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.exceptions import ModelError, NotFittedError


def validate_training_inputs(
    features: np.ndarray, labels: Optional[np.ndarray] = None
) -> tuple[np.ndarray, Optional[np.ndarray]]:
    """Coerce and validate (features, labels) for ``fit``.

    Raises :class:`ModelError` on shape mismatches, empty inputs or non-binary
    labels — fail fast rather than producing a silently broken model.
    """
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2:
        raise ModelError("features must be a 2-dimensional array")
    if features.shape[0] == 0:
        raise ModelError("cannot fit on an empty feature matrix")
    if not np.isfinite(features).all():
        raise ModelError("features contain NaN or infinite values")
    if labels is None:
        return features, None
    labels = np.asarray(labels, dtype=np.float64).ravel()
    if labels.shape[0] != features.shape[0]:
        raise ModelError(
            f"{labels.shape[0]} labels do not match {features.shape[0]} feature rows"
        )
    unique = np.unique(labels)
    if not np.all(np.isin(unique, [0.0, 1.0])):
        raise ModelError(f"labels must be binary (0/1), found values {unique[:5]}")
    return features, labels


@dataclass
class DetectionResult:
    """Scored transactions: fraud probabilities plus the decision threshold."""

    probabilities: np.ndarray
    threshold: float = 0.5
    model_name: str = ""
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def predictions(self) -> np.ndarray:
        """Binary fraud decisions at ``threshold``."""
        return (self.probabilities >= self.threshold).astype(np.int64)

    def top_fraction(self, fraction: float) -> np.ndarray:
        """Indices of the most suspicious ``fraction`` of transactions.

        Used by the rec@top-k% metric of Figure 9.
        """
        if not 0.0 < fraction <= 1.0:
            raise ModelError("fraction must be in (0, 1]")
        count = max(1, int(round(fraction * self.probabilities.shape[0])))
        return np.argsort(-self.probabilities)[:count]


class BaseDetector(ABC):
    """Base class of every detection method (rule-based, anomaly, classifier)."""

    #: Human-readable name used in experiment reports (Table 1 rows).
    name: str = "detector"

    def __init__(self) -> None:
        self._fitted = False

    # ------------------------------------------------------------------
    @abstractmethod
    def fit(self, features: np.ndarray, labels: Optional[np.ndarray] = None) -> "BaseDetector":
        """Train the detector.  Unsupervised methods ignore ``labels``."""

    @abstractmethod
    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Fraud probability (or anomaly score in [0, 1]) per row."""

    # ------------------------------------------------------------------
    def predict(self, features: np.ndarray, *, threshold: float = 0.5) -> np.ndarray:
        """Binary fraud decision per row."""
        return (self.predict_proba(features) >= threshold).astype(np.int64)

    def detect(self, features: np.ndarray, *, threshold: float = 0.5) -> DetectionResult:
        """Score a batch and wrap the output in a :class:`DetectionResult`."""
        return DetectionResult(
            probabilities=self.predict_proba(features),
            threshold=threshold,
            model_name=self.name,
        )

    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} must be fitted before prediction")

    def _check_predict_inputs(self, features: np.ndarray) -> np.ndarray:
        self._check_fitted()
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features.reshape(1, -1)
        if features.ndim != 2:
            raise ModelError("features must be a 2-dimensional array")
        return features

    def get_params(self) -> Dict[str, object]:
        """Hyperparameters of the detector (for logging and model registry)."""
        return {
            key: value
            for key, value in vars(self).items()
            if not key.startswith("_") and not isinstance(value, np.ndarray)
        }
