"""Parameter-server training drivers for the classification models.

The paper reimplements the classification detectors (LR, GBDT) on KunPeng for
better performance — rule-based and anomaly-detection methods stay
single-machine (footnote 7).  This module mirrors that split:

* :class:`DistributedLogisticRegression` keeps the weight vector on the
  parameter servers; workers compute mini-batch gradients on their data
  partitions and push them back (classic PS data parallelism),
* :class:`DistributedGBDT` parallelises the per-round gradient/hessian
  computation across workers while the driver fits each regression tree on
  the gathered (subsampled) statistics — the structure of a distributed
  histogram-style GBDT collapsed to a single process.

Both record their cluster workload so the Figure 10 benchmark can report how
training time scales with the number of machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import ModelError
from repro.kunpeng.cluster import ClusterConfig, KunPengCluster
from repro.kunpeng.cost_model import ClusterCostModel, TrainingTimeEstimate
from repro.kunpeng.failover import FailureInjector
from repro.models.base import BaseDetector, validate_training_inputs
from repro.models.gbdt import GradientBoostingClassifier
from repro.models.tree.cart import RegressionTree
from repro.rng import SeedLike, ensure_rng, spawn_child


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


@dataclass
class DistributedTrainingStats:
    """Bookkeeping common to both distributed drivers."""

    rounds: int = 0
    worker_failures: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {"rounds": float(self.rounds), "worker_failures": float(self.worker_failures)}


class DistributedLogisticRegression(BaseDetector):
    """L2-regularised logistic regression trained with PS data parallelism."""

    name = "logistic_regression_distributed"

    def __init__(
        self,
        *,
        cluster: Optional[ClusterConfig] = None,
        iterations: int = 100,
        learning_rate: float = 0.5,
        l2: float = 1e-4,
        failure_probability: float = 0.0,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        if iterations < 1:
            raise ModelError("iterations must be at least 1")
        if learning_rate <= 0:
            raise ModelError("learning_rate must be positive")
        self.cluster_config = cluster or ClusterConfig(num_machines=4)
        self.iterations = iterations
        self.learning_rate = learning_rate
        self.l2 = l2
        self.failure_probability = failure_probability
        self.seed = seed
        self._rng = ensure_rng(seed)
        self.cluster = KunPengCluster(self.cluster_config)
        self.failure_injector = FailureInjector(
            self.cluster,
            failure_probability=failure_probability,
            rng=spawn_child(self._rng, salt=7),
        )
        self.stats = DistributedTrainingStats()
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0

    # ------------------------------------------------------------------
    def fit(self, features: np.ndarray, labels: Optional[np.ndarray] = None) -> "DistributedLogisticRegression":
        features, labels = validate_training_inputs(features, labels)
        if labels is None:
            raise ModelError("DistributedLogisticRegression requires labels")
        self._mean = features.mean(axis=0)
        std = features.std(axis=0)
        self._std = np.where(std == 0.0, 1.0, std)
        design = (features - self._mean) / self._std
        num_features = design.shape[1]

        # Weight vector (plus intercept) lives on the servers as a 1-row matrix.
        self.cluster.create_parameter("weights", np.zeros((1, num_features + 1)))

        # Scatter row indices across workers.
        indices = np.arange(design.shape[0])
        self.cluster.scatter_data(indices.tolist())

        positives = labels.sum()
        negatives = labels.shape[0] - positives
        positive_weight = (negatives / positives) if positives and negatives else 1.0
        sample_weights = np.where(labels > 0.5, positive_weight, 1.0)

        for iteration in range(self.iterations):
            self.failure_injector.maybe_fail(iteration)
            self.failure_injector.heal()
            step = self.learning_rate / (1.0 + 0.01 * iteration)
            current = self.cluster.pull_matrix("weights")[0]
            weights, intercept = current[:-1], current[-1]
            gradient_sum = np.zeros(num_features + 1)
            total_rows = 0
            for worker in self.cluster.alive_workers():
                rows = np.array(worker.partition, dtype=np.int64)
                if rows.size == 0:
                    continue

                def _step(_worker, rows=rows, weights=weights, intercept=intercept):
                    local = design[rows]
                    local_labels = labels[rows]
                    local_sample_weights = sample_weights[rows]
                    scores = local @ weights + intercept
                    residual = local_sample_weights * (_sigmoid(scores) - local_labels)
                    gradient = np.concatenate(
                        [local.T @ residual, np.array([residual.sum()])]
                    )
                    return gradient, rows.size

                gradient, count = worker.run(_step, compute_units=float(rows.size))
                gradient_sum += gradient
                total_rows += count
            if total_rows == 0:
                continue
            gradient_mean = gradient_sum / total_rows
            gradient_mean[:-1] += self.l2 * weights
            self.cluster.push_gradients(
                "weights", {0: step * gradient_mean}, learning_rate=1.0
            )
            self.stats.rounds += 1

        final = self.cluster.pull_matrix("weights")[0]
        self.coef_, self.intercept_ = final[:-1], float(final[-1])
        self.stats.worker_failures = self.failure_injector.total_failures
        self._fitted = True
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        features = self._check_predict_inputs(features)
        assert self.coef_ is not None and self._mean is not None and self._std is not None
        design = (features - self._mean) / self._std
        return _sigmoid(design @ self.coef_ + self.intercept_)

    def estimate_time(self, cost_model: ClusterCostModel | None = None) -> TrainingTimeEstimate:
        summary = self.cluster.workload_summary()
        model = cost_model or ClusterCostModel()
        return model.estimate(
            total_compute_units=summary["worker_compute_units"],
            comm_values_per_round=summary["values_transferred"] / max(self.stats.rounds, 1),
            num_rounds=max(self.stats.rounds, 1),
            cluster=self.cluster_config,
        )


class DistributedGBDT(BaseDetector):
    """GBDT with worker-parallel gradient computation on the PS cluster."""

    name = "gbdt_distributed"

    def __init__(
        self,
        *,
        cluster: Optional[ClusterConfig] = None,
        num_trees: int = 100,
        max_depth: int = 3,
        learning_rate: float = 0.1,
        subsample_rows: float = 0.4,
        subsample_features: float = 0.4,
        failure_probability: float = 0.0,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        self.cluster_config = cluster or ClusterConfig(num_machines=4)
        self.num_trees = num_trees
        self.max_depth = max_depth
        self.learning_rate = learning_rate
        self.subsample_rows = subsample_rows
        self.subsample_features = subsample_features
        self.failure_probability = failure_probability
        self.seed = seed
        self._rng = ensure_rng(seed)
        self.cluster = KunPengCluster(self.cluster_config)
        self.failure_injector = FailureInjector(
            self.cluster,
            failure_probability=failure_probability,
            rng=spawn_child(self._rng, salt=11),
        )
        self.stats = DistributedTrainingStats()
        self._trees: List[RegressionTree] = []
        self._initial_score: float = 0.0
        # Reuse the single-machine implementation's hyperparameter validation.
        GradientBoostingClassifier(
            num_trees=num_trees,
            max_depth=max_depth,
            learning_rate=learning_rate,
            subsample_rows=subsample_rows,
            subsample_features=subsample_features,
        )

    # ------------------------------------------------------------------
    def fit(self, features: np.ndarray, labels: Optional[np.ndarray] = None) -> "DistributedGBDT":
        features, labels = validate_training_inputs(features, labels)
        if labels is None:
            raise ModelError("DistributedGBDT requires labels")
        num_rows, num_features = features.shape
        positives = labels.sum()
        negatives = num_rows - positives
        positive_weight = (negatives / positives) if positives and negatives else 1.0
        weights = np.where(labels > 0.5, positive_weight, 1.0)

        mean = float(np.average(labels, weights=weights))
        mean = min(max(mean, 1e-6), 1.0 - 1e-6)
        self._initial_score = float(np.log(mean / (1.0 - mean)))
        scores = np.full(num_rows, self._initial_score)

        indices = np.arange(num_rows)
        self.cluster.scatter_data(indices.tolist())
        rows_per_tree = max(10, int(round(self.subsample_rows * num_rows)))
        features_per_tree = max(1, int(round(self.subsample_features * num_features)))

        for round_index in range(self.num_trees):
            self.failure_injector.maybe_fail(round_index)
            self.failure_injector.heal()
            gradients = np.zeros(num_rows)
            hessians = np.ones(num_rows)
            for worker in self.cluster.alive_workers():
                rows = np.array(worker.partition, dtype=np.int64)
                if rows.size == 0:
                    continue

                def _step(_worker, rows=rows):
                    probabilities = _sigmoid(scores[rows])
                    grad = weights[rows] * (labels[rows] - probabilities)
                    hess = np.maximum(weights[rows] * probabilities * (1 - probabilities), 1e-6)
                    return grad, hess

                grad, hess = worker.run(_step, compute_units=float(rows.size))
                gradients[rows] = grad
                hessians[rows] = hess
                self.cluster.communication.record_push(int(rows.size) * 2)

            row_sample = self._rng.choice(num_rows, size=min(rows_per_tree, num_rows), replace=False)
            feature_sample = self._rng.choice(num_features, size=features_per_tree, replace=False)
            tree = RegressionTree(
                max_depth=self.max_depth,
                min_samples_leaf=5,
                feature_indices=feature_sample,
            )
            tree.fit(features[row_sample], gradients[row_sample], hessians[row_sample])
            scores += self.learning_rate * tree.predict(features)
            self._trees.append(tree)
            self.stats.rounds += 1

        self.stats.worker_failures = self.failure_injector.total_failures
        self._fitted = True
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        features = self._check_predict_inputs(features)
        scores = np.full(features.shape[0], self._initial_score)
        for tree in self._trees:
            scores += self.learning_rate * tree.predict(features)
        return _sigmoid(scores)

    def estimate_time(self, cost_model: ClusterCostModel | None = None) -> TrainingTimeEstimate:
        summary = self.cluster.workload_summary()
        model = cost_model or ClusterCostModel()
        return model.estimate(
            total_compute_units=summary["worker_compute_units"],
            comm_values_per_round=summary["values_transferred"] / max(self.stats.rounds, 1),
            num_rounds=max(self.stats.rounds, 1),
            cluster=self.cluster_config,
        )
