"""Parameter-server training drivers for the classification models.

The paper reimplements the classification detectors (LR, GBDT) on KunPeng for
better performance — rule-based and anomaly-detection methods stay
single-machine (footnote 7).  This module mirrors that split:

* :class:`DistributedLogisticRegression` keeps the weight vector on the
  parameter servers; workers compute mini-batch gradients on their data
  partitions and push them back (classic PS data parallelism),
* :class:`DistributedGBDT` with ``tree_method="hist"`` (default) is a
  KunPeng-style histogram GBDT: every worker bins its partition once, builds
  local per-node (gradient, hessian, count) histograms each tree level and
  pushes them to the parameter servers, which sum them; the driver pulls one
  merged fixed-size histogram block and finds the splits.  Per-round
  communication therefore scales with ``bins x features``, not with the row
  count.  ``tree_method="exact"`` keeps the legacy driver-side sorted split
  search (per-row gradient gathering) for A/B comparison.

Both record their cluster workload per round so the Figure 10 benchmark and
the cost model can report how training time scales with the number of
machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import ModelError
from repro.kunpeng.cluster import ClusterConfig, KunPengCluster
from repro.kunpeng.cost_model import ClusterCostModel, TrainingTimeEstimate
from repro.kunpeng.failover import FailureInjector
from repro.models.base import BaseDetector, validate_training_inputs
from repro.models.gbdt import BoostedTree, GradientBoostingClassifier
from repro.models.tree.cart import RegressionTree
from repro.models.tree.histogram import (
    HistogramBinner,
    HistogramTree,
    build_histograms,
    realize_split,
)
from repro.models.tree.node import TreeNode
from repro.models.tree.splitter import best_histogram_split
from repro.rng import SeedLike, derive_seed, ensure_rng, spawn_child


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


@dataclass
class DistributedTrainingStats:
    """Bookkeeping common to both distributed drivers."""

    rounds: int = 0
    worker_failures: int = 0
    #: Rounds in which at least one worker was down and the driver recomputed
    #: the dead partitions' statistics instead of training on stale zeros.
    dead_partition_recoveries: int = 0
    #: Total rows whose gradient/histogram contribution was recomputed by the
    #: driver because their owning worker was down.
    driver_recovered_rows: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "rounds": float(self.rounds),
            "worker_failures": float(self.worker_failures),
            "dead_partition_recoveries": float(self.dead_partition_recoveries),
            "driver_recovered_rows": float(self.driver_recovered_rows),
        }


class DistributedLogisticRegression(BaseDetector):
    """L2-regularised logistic regression trained with PS data parallelism."""

    name = "logistic_regression_distributed"

    def __init__(
        self,
        *,
        cluster: Optional[ClusterConfig] = None,
        iterations: int = 100,
        learning_rate: float = 0.5,
        l2: float = 1e-4,
        failure_probability: float = 0.0,
        backend: str = "inline",
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        if iterations < 1:
            raise ModelError("iterations must be at least 1")
        if learning_rate <= 0:
            raise ModelError("learning_rate must be positive")
        self.cluster_config = cluster or ClusterConfig(num_machines=4)
        self.iterations = iterations
        self.learning_rate = learning_rate
        self.l2 = l2
        self.failure_probability = failure_probability
        self.seed = seed
        self._rng = ensure_rng(seed)
        self.cluster = KunPengCluster(self.cluster_config, backend=backend)
        self.failure_injector = FailureInjector(
            self.cluster,
            failure_probability=failure_probability,
            rng=spawn_child(self._rng, salt=7),
        )
        self.stats = DistributedTrainingStats()
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0

    # ------------------------------------------------------------------
    def fit(self, features: np.ndarray, labels: Optional[np.ndarray] = None) -> "DistributedLogisticRegression":
        features, labels = validate_training_inputs(features, labels)
        if labels is None:
            raise ModelError("DistributedLogisticRegression requires labels")
        self._mean = features.mean(axis=0)
        std = features.std(axis=0)
        self._std = np.where(std == 0.0, 1.0, std)
        design = (features - self._mean) / self._std
        num_features = design.shape[1]

        # Weight vector (plus intercept) lives on the servers as a 1-row matrix.
        self.cluster.create_parameter("weights", np.zeros((1, num_features + 1)))

        # Scatter row indices across workers.
        indices = np.arange(design.shape[0])
        self.cluster.scatter_data(indices.tolist())

        positives = labels.sum()
        negatives = labels.shape[0] - positives
        positive_weight = (negatives / positives) if positives and negatives else 1.0
        sample_weights = np.where(labels > 0.5, positive_weight, 1.0)

        for iteration in range(self.iterations):
            self.failure_injector.maybe_fail(iteration)
            self.failure_injector.heal()
            self.cluster.begin_round()
            step = self.learning_rate / (1.0 + 0.01 * iteration)
            current = self.cluster.pull_matrix("weights")[0]
            weights, intercept = current[:-1], current[-1]
            gradient_sum = np.zeros(num_features + 1)
            total_rows = 0
            for worker in self.cluster.alive_workers():
                rows = np.array(worker.partition, dtype=np.int64)
                if rows.size == 0:
                    continue

                def _step(_worker, rows=rows, weights=weights, intercept=intercept):
                    local = design[rows]
                    local_labels = labels[rows]
                    local_sample_weights = sample_weights[rows]
                    scores = local @ weights + intercept
                    residual = local_sample_weights * (_sigmoid(scores) - local_labels)
                    gradient = np.concatenate(
                        [local.T @ residual, np.array([residual.sum()])]
                    )
                    return gradient, rows.size

                gradient, count = worker.run(_step, compute_units=float(rows.size))
                gradient_sum += gradient
                total_rows += count
            if total_rows == 0:
                self.cluster.end_round()
                continue
            gradient_mean = gradient_sum / total_rows
            gradient_mean[:-1] += self.l2 * weights
            self.cluster.push_gradients(
                "weights", {0: step * gradient_mean}, learning_rate=1.0
            )
            self.stats.rounds += 1
            self.cluster.end_round()

        final = self.cluster.pull_matrix("weights")[0]
        self.coef_, self.intercept_ = final[:-1], float(final[-1])
        self.stats.worker_failures = self.failure_injector.total_failures
        self._fitted = True
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        features = self._check_predict_inputs(features)
        assert self.coef_ is not None and self._mean is not None and self._std is not None
        design = (features - self._mean) / self._std
        return _sigmoid(design @ self.coef_ + self.intercept_)

    def estimate_time(self, cost_model: ClusterCostModel | None = None) -> TrainingTimeEstimate:
        return _estimate_from_rounds(self.cluster, self.stats, self.cluster_config, cost_model)

    def close(self) -> None:
        """Release the cluster backend (shard processes, shared memory)."""
        self.cluster.close()


def _estimate_from_rounds(
    cluster: KunPengCluster,
    stats: DistributedTrainingStats,
    config: ClusterConfig,
    cost_model: ClusterCostModel | None,
) -> TrainingTimeEstimate:
    """Cost-model estimate fed with *measured* per-round communication.

    Rounds are recorded through ``CommunicationLog.begin_round``/``end_round``
    windows, so checkpoint downloads and other out-of-round transfers do not
    inflate the per-round volume (the old lifetime-total / round-count
    quotient did).
    """
    summary = cluster.workload_summary()
    model = cost_model or ClusterCostModel()
    num_rounds = max(stats.rounds, 1)
    if summary["rounds_recorded"] > 0:
        comm_values_per_round = summary["values_per_round"]
    else:  # no windows recorded (e.g. model never fitted) — fall back
        comm_values_per_round = summary["values_transferred"] / num_rounds
    return model.estimate(
        total_compute_units=summary["worker_compute_units"],
        comm_values_per_round=comm_values_per_round,
        num_rounds=num_rounds,
        cluster=config,
    )


class DistributedGBDT(BaseDetector):
    """GBDT trained on the PS cluster, histogram-aggregated by default.

    ``tree_method="hist"``: each worker keeps its binned partition, builds
    per-node (gradient, hessian, count) histograms every tree level and
    accumulates them into a fixed-size parameter block on the servers; the
    driver pulls the merged block, finds the splits and broadcasts them.
    Per-round traffic is bounded by ``levels x nodes x features x bins`` —
    independent of the row count.

    ``tree_method="exact"``: the legacy driver — workers push per-row
    gradient/hessian pairs (2 values per row per round) and the driver fits a
    :class:`RegressionTree` on the gathered statistics.

    Tree hyperparameters (``min_samples_leaf``, ``reg_lambda``,
    ``objective``, ``class_weight``) mirror
    :class:`~repro.models.gbdt.GradientBoostingClassifier` exactly, so a
    same-seed single-machine and distributed run grow identical trees.
    """

    name = "gbdt_distributed"

    #: Parameter-server name of the per-level histogram accumulator block.
    HIST_PARAMETER = "gbdt_histograms"

    def __init__(
        self,
        *,
        cluster: Optional[ClusterConfig] = None,
        num_trees: int = 100,
        max_depth: int = 3,
        learning_rate: float = 0.1,
        subsample_rows: float = 0.4,
        subsample_features: float = 0.4,
        min_samples_leaf: int = 5,
        reg_lambda: float = 1.0,
        objective: str = "logistic",
        class_weight: Optional[str] = "balanced",
        tree_method: str = "hist",
        num_bins: int = 64,
        failure_probability: float = 0.0,
        backend: str = "inline",
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        self.cluster_config = cluster or ClusterConfig(num_machines=4)
        self.num_trees = num_trees
        self.max_depth = max_depth
        self.learning_rate = learning_rate
        self.subsample_rows = subsample_rows
        self.subsample_features = subsample_features
        self.min_samples_leaf = min_samples_leaf
        self.reg_lambda = reg_lambda
        self.objective = objective
        self.class_weight = class_weight
        self.tree_method = tree_method
        self.num_bins = num_bins
        self.failure_probability = failure_probability
        self.seed = seed
        # Subsampling consumes this stream in exactly the same order as the
        # single-machine fit; the failure injector gets an independently
        # derived stream so injecting failures never shifts the subsamples.
        self._rng = ensure_rng(seed)
        self.cluster = KunPengCluster(self.cluster_config, backend=backend)
        self.failure_injector = FailureInjector(
            self.cluster,
            failure_probability=failure_probability,
            rng=derive_seed(seed, "distributed-gbdt-failover"),
        )
        self.stats = DistributedTrainingStats()
        self._trees: List[BoostedTree] = []
        self._binner: Optional[HistogramBinner] = None
        self._initial_score: float = 0.0
        # Reuse the single-machine implementation's hyperparameter validation.
        GradientBoostingClassifier(
            num_trees=num_trees,
            max_depth=max_depth,
            learning_rate=learning_rate,
            subsample_rows=subsample_rows,
            subsample_features=subsample_features,
            min_samples_leaf=min_samples_leaf,
            reg_lambda=reg_lambda,
            objective=objective,  # type: ignore[arg-type]
            class_weight=class_weight,
            tree_method=tree_method,  # type: ignore[arg-type]
            num_bins=num_bins,
        )

    # ------------------------------------------------------------------
    def fit(self, features: np.ndarray, labels: Optional[np.ndarray] = None) -> "DistributedGBDT":
        """Train the boosted ensemble over row-partitioned workers on the PS."""
        features, labels = validate_training_inputs(features, labels)
        if labels is None:
            raise ModelError("DistributedGBDT requires labels")
        num_rows, num_features = features.shape
        weights = self._sample_weights(labels)

        mean = float(np.average(labels, weights=weights))
        mean = min(max(mean, 1e-6), 1.0 - 1e-6)
        if self.objective == "logistic":
            self._initial_score = float(np.log(mean / (1.0 - mean)))
        else:
            self._initial_score = mean
        scores = np.full(num_rows, self._initial_score)

        self.cluster.scatter_data(np.arange(num_rows).tolist())
        rows_per_tree = max(
            2 * self.min_samples_leaf, int(round(self.subsample_rows * num_rows))
        )
        features_per_tree = max(1, int(round(self.subsample_features * num_features)))

        binned: Optional[np.ndarray] = None
        if self.tree_method == "hist":
            # One binning pass over the training matrix (in production this
            # is a MaxCompute pre-pass); workers keep only integer bins.
            self._binner = HistogramBinner(num_bins=self.num_bins).fit(features)
            binned = self._binner.transform(features)
            node_slots = 2 ** max(0, self.max_depth - 1)
            self.cluster.create_parameter(
                self.HIST_PARAMETER,
                np.zeros((node_slots * features_per_tree * self.num_bins, 3)),
            )

        for round_index in range(self.num_trees):
            self.cluster.begin_round()
            self.failure_injector.maybe_fail(round_index)
            gradients, hessians = self._compute_gradients(labels, scores, weights)
            row_sample = self._rng.choice(
                num_rows, size=min(rows_per_tree, num_rows), replace=False
            )
            feature_sample = self._rng.choice(
                num_features, size=features_per_tree, replace=False
            )
            tree: BoostedTree
            if binned is not None:
                tree = self._fit_histogram_tree(
                    binned, gradients, hessians, row_sample, feature_sample
                )
                scores = scores + self.learning_rate * tree.predict_binned(binned)
            else:
                tree = RegressionTree(
                    max_depth=self.max_depth,
                    min_samples_leaf=self.min_samples_leaf,
                    reg_lambda=self.reg_lambda,
                    feature_indices=feature_sample,
                )
                tree.fit(features[row_sample], gradients[row_sample], hessians[row_sample])
                scores = scores + self.learning_rate * tree.predict(features)
            self._trees.append(tree)
            self.stats.rounds += 1
            # Automatic recovery: dead workers restart (with their partition
            # re-read) before the next round, per the PS failover story.
            self.failure_injector.heal()
            self.cluster.end_round()

        self.stats.worker_failures = self.failure_injector.total_failures
        self._fitted = True
        return self

    # ------------------------------------------------------------------
    def _sample_weights(self, labels: np.ndarray) -> np.ndarray:
        if self.class_weight != "balanced":
            return np.ones_like(labels)
        positives = labels.sum()
        negatives = labels.shape[0] - positives
        if positives == 0 or negatives == 0:
            return np.ones_like(labels)
        return np.where(labels > 0.5, negatives / positives, 1.0)

    def _gradient_statistics(
        self, labels: np.ndarray, scores: np.ndarray, weights: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-row (negative gradient, hessian) of the boosting objective."""
        if self.objective == "logistic":
            probabilities = _sigmoid(scores)
            grad = weights * (labels - probabilities)
            hess = np.maximum(weights * probabilities * (1.0 - probabilities), 1e-6)
            return grad, hess
        return weights * (labels - scores), weights.copy()

    def _compute_gradients(
        self, labels: np.ndarray, scores: np.ndarray, weights: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Worker-parallel gradient/hessian computation with failure recovery.

        Rows owned by a dead worker are recomputed by the driver instead of
        silently keeping the round-initialisation values (gradient 0, hessian
        1) that would fit trees against fabricated statistics; each such
        round is counted in :class:`DistributedTrainingStats`.
        """
        num_rows = scores.shape[0]
        gradients = np.zeros(num_rows)
        hessians = np.ones(num_rows)
        covered = np.zeros(num_rows, dtype=bool)
        for worker in self.cluster.alive_workers():
            rows = np.array(worker.partition, dtype=np.int64)
            if rows.size == 0:
                continue

            def _step(_worker, rows=rows):
                return self._gradient_statistics(labels[rows], scores[rows], weights[rows])

            grad, hess = worker.run(_step, compute_units=float(rows.size))
            gradients[rows] = grad
            hessians[rows] = hess
            covered[rows] = True
            if self.tree_method == "exact":
                # Exact mode gathers per-row statistics at the driver: 2
                # values (gradient, hessian) per row per round.  Histogram
                # mode keeps them worker-local and ships histograms instead.
                self.cluster.communication.record_push(int(rows.size) * 2)

        missing = np.nonzero(~covered)[0]
        if missing.size:
            gradients[missing], hessians[missing] = self._gradient_statistics(
                labels[missing], scores[missing], weights[missing]
            )
            self.stats.dead_partition_recoveries += 1
            self.stats.driver_recovered_rows += int(missing.size)
        return gradients, hessians

    # ------------------------------------------------------------------
    def _fit_histogram_tree(
        self,
        binned: np.ndarray,
        gradients: np.ndarray,
        hessians: np.ndarray,
        row_sample: np.ndarray,
        feature_sample: np.ndarray,
    ) -> HistogramTree:
        """Grow one tree with PS-side histogram aggregation.

        Per level: every alive worker builds local per-node histograms over
        its slice of the row subsample and accumulates only the non-empty
        (node, feature, bin) rows into the servers' histogram block; the
        driver pulls the merged block once, chooses the splits and tells the
        workers how to reroute their rows.  Rows of dead workers are
        histogrammed by the driver (counted as a recovery).
        """
        assert self._binner is not None
        num_bins = self.num_bins
        num_features = feature_sample.shape[0]
        sub = np.ascontiguousarray(binned[:, feature_sample])

        sampled = np.zeros(binned.shape[0], dtype=bool)
        sampled[row_sample] = True
        # Worker-local views of the subsample: (worker, rows, node assignment).
        shards: List[Tuple[object, np.ndarray, np.ndarray]] = []
        covered = np.zeros(binned.shape[0], dtype=bool)
        for worker in self.cluster.alive_workers():
            rows = np.array(worker.partition, dtype=np.int64)
            rows = rows[sampled[rows]] if rows.size else rows
            covered[rows] = True
            shards.append((worker, rows, np.zeros(rows.shape[0], dtype=np.int64)))
        # Rows of dead workers (already counted as a recovery by the gradient
        # phase this round) are histogrammed by the driver below.
        driver_rows = np.nonzero(sampled & ~covered)[0]
        driver_assign = np.zeros(driver_rows.shape[0], dtype=np.int64)

        total_gradient = float(gradients[row_sample].sum())
        total_hessian = float(hessians[row_sample].sum())
        root_value = total_gradient / (total_hessian + self.reg_lambda)
        root = TreeNode(
            is_leaf=True,
            value=root_value,
            num_samples=int(row_sample.shape[0]),
            fallback_value=root_value,
        )
        active = [(root, total_gradient, total_hessian, int(row_sample.shape[0]))]

        for _depth in range(self.max_depth):
            if not active:
                break
            num_active = len(active)
            block_rows = num_active * num_features * num_bins
            self.cluster.reset_parameter(self.HIST_PARAMETER)
            for worker, rows, assign in shards:
                if rows.size == 0:
                    continue

                def _local_histograms(_worker, rows=rows, assign=assign):
                    grad_hist, hess_hist, count_hist = build_histograms(
                        sub[rows],
                        gradients[rows],
                        hessians[rows],
                        num_bins=num_bins,
                        node_ids=assign,
                        num_nodes=num_active,
                    )
                    stacked = np.stack(
                        [grad_hist.ravel(), hess_hist.ravel(), count_hist.ravel()],
                        axis=1,
                    )
                    nonzero = np.nonzero(count_hist.ravel() > 0)[0]
                    return nonzero, stacked[nonzero]

                nonzero, values = worker.run(
                    _local_histograms, compute_units=float(rows.size)
                )
                if nonzero.size:
                    self.cluster.accumulate_row_block(
                        self.HIST_PARAMETER, nonzero, values
                    )

            merged = self.cluster.pull_row_block(
                self.HIST_PARAMETER, np.arange(block_rows, dtype=np.int64)
            ).reshape(num_active, num_features, num_bins, 3)
            if driver_rows.size:
                grad_hist, hess_hist, count_hist = build_histograms(
                    sub[driver_rows],
                    gradients[driver_rows],
                    hessians[driver_rows],
                    num_bins=num_bins,
                    node_ids=driver_assign,
                    num_nodes=num_active,
                )
                merged = merged + np.stack([grad_hist, hess_hist, count_hist], axis=-1)

            decisions: List[Optional[Tuple[int, int, int]]] = []
            next_active: List[Tuple[TreeNode, float, float, int]] = []
            for slot, (node, _grad, _hess, count) in enumerate(active):
                split = None
                if count >= 2 * self.min_samples_leaf:
                    split = best_histogram_split(
                        merged[slot, :, :, 0],
                        merged[slot, :, :, 1],
                        merged[slot, :, :, 2],
                        min_leaf=self.min_samples_leaf,
                        reg_lambda=self.reg_lambda,
                    )
                if split is None:
                    decisions.append(None)
                    continue
                left, right = realize_split(
                    node,
                    split,
                    int(feature_sample[split.feature_slot]),
                    self._binner,
                    reg_lambda=self.reg_lambda,
                )
                left_slot = len(next_active)
                decisions.append((split.feature_slot, split.bin_index, left_slot))
                next_active.append(
                    (left, split.left_gradient, split.left_hessian, split.left_count)
                )
                next_active.append(
                    (right, split.right_gradient, split.right_hessian, split.right_count)
                )

            # Broadcast the split decisions; each worker reroutes its own rows.
            new_shards = []
            for worker, rows, assign in shards:
                if rows.size == 0:
                    new_shards.append((worker, rows, assign))
                    continue

                def _reroute(_worker, rows=rows, assign=assign):
                    return _apply_decisions(sub, rows, assign, decisions)

                rows, assign = worker.run(_reroute, compute_units=float(rows.size))
                new_shards.append((worker, rows, assign))
            shards = new_shards
            driver_rows, driver_assign = _apply_decisions(
                sub, driver_rows, driver_assign, decisions
            )
            active = next_active

        return HistogramTree(root, feature_indices=feature_sample)

    # ------------------------------------------------------------------
    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Fraud probabilities from the trained ensemble (driver-side, exact)."""
        features = self._check_predict_inputs(features)
        scores = np.full(features.shape[0], self._initial_score)
        for tree in self._trees:
            scores += self.learning_rate * tree.predict(features)
        if self.objective == "logistic":
            return _sigmoid(scores)
        return np.clip(scores, 0.0, 1.0)

    def estimate_time(self, cost_model: ClusterCostModel | None = None) -> TrainingTimeEstimate:
        """Analytic wall-clock estimate fed by the measured per-round volumes."""
        return _estimate_from_rounds(self.cluster, self.stats, self.cluster_config, cost_model)

    def close(self) -> None:
        """Release the cluster backend (shard processes, shared memory)."""
        self.cluster.close()


def _apply_decisions(
    sub: np.ndarray,
    rows: np.ndarray,
    assign: np.ndarray,
    decisions: List[Optional[Tuple[int, int, int]]],
) -> Tuple[np.ndarray, np.ndarray]:
    """Reroute ``rows`` to next-level node slots given the split decisions.

    ``decisions[slot]`` is ``None`` when the node became a leaf (its rows
    retire) or ``(feature_slot, bin_index, left_slot)`` with the right child
    at ``left_slot + 1``.
    """
    if rows.size == 0:
        return rows, assign
    new_assign = np.full(rows.shape[0], -1, dtype=np.int64)
    for slot, decision in enumerate(decisions):
        if decision is None:
            continue
        feature_slot, bin_index, left_slot = decision
        members = assign == slot
        goes_left = sub[rows[members], feature_slot] <= bin_index
        slot_ids = np.where(goes_left, left_slot, left_slot + 1)
        new_assign[members] = slot_ids
    keep = new_assign >= 0
    return rows[keep], new_assign[keep]
