"""Gradient Boosting Decision Trees.

The paper's strongest detector: 400 trees of depth 3, row and feature
subsampling of 0.4 to prevent overfitting.  We implement standard gradient
boosting with depth-limited regression trees
(:class:`~repro.models.tree.cart.RegressionTree`) as weak learners and two
objectives:

* ``"logistic"`` — binomial deviance with Newton leaf values (default),
* ``"squared"`` — least-squares boosting on the 0/1 labels, matching the
  paper's statement that root mean square error is used as the objective.

Both produce scores mapped to [0, 1] by :meth:`predict_proba`, so the
evaluation layer treats GBDT exactly like every other detector.
"""

from __future__ import annotations

from typing import List, Literal, Optional, Union

import numpy as np

from repro.exceptions import ModelError
from repro.models.base import BaseDetector, validate_training_inputs
from repro.models.tree.cart import RegressionTree
from repro.models.tree.histogram import HistogramBinner, HistogramTree, HistogramTreeBuilder
from repro.rng import SeedLike, ensure_rng

Objective = Literal["logistic", "squared"]
TreeMethod = Literal["hist", "exact"]

#: Weak learners produced by the two tree methods; both expose ``predict``
#: (raw features) and ``tree_`` (the underlying :class:`TreeNode`).
BoostedTree = Union[RegressionTree, HistogramTree]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


class GradientBoostingClassifier(BaseDetector):
    """Gradient boosting with regression-tree weak learners.

    Parameters
    ----------
    num_trees:
        Number of boosting rounds (paper: 400).
    max_depth:
        Depth of each tree (paper: 3).
    learning_rate:
        Shrinkage applied to each tree's contribution.
    subsample_rows, subsample_features:
        Row / feature subsampling rates per tree (paper: 0.4 each).
    objective:
        ``"logistic"`` (binomial deviance) or ``"squared"`` (RMSE objective,
        as stated in the paper).
    class_weight:
        ``"balanced"`` up-weights fraud rows by the inverse class frequency.
    tree_method:
        ``"hist"`` (default) bins the training matrix once with
        :class:`~repro.models.tree.histogram.HistogramBinner` and grows trees
        from gradient/hessian histograms; ``"exact"`` keeps the sorted split
        search of :class:`~repro.models.tree.cart.RegressionTree`.
    num_bins:
        Histogram resolution of the ``"hist"`` method (ignored by ``"exact"``).
    """

    name = "gbdt"

    def __init__(
        self,
        *,
        num_trees: int = 400,
        max_depth: int = 3,
        learning_rate: float = 0.1,
        subsample_rows: float = 0.4,
        subsample_features: float = 0.4,
        min_samples_leaf: int = 5,
        reg_lambda: float = 1.0,
        objective: Objective = "logistic",
        class_weight: Optional[str] = "balanced",
        tree_method: TreeMethod = "hist",
        num_bins: int = 64,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        if num_trees < 1:
            raise ModelError("num_trees must be at least 1")
        if max_depth < 1:
            raise ModelError("max_depth must be at least 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ModelError("learning_rate must be in (0, 1]")
        if not 0.0 < subsample_rows <= 1.0:
            raise ModelError("subsample_rows must be in (0, 1]")
        if not 0.0 < subsample_features <= 1.0:
            raise ModelError("subsample_features must be in (0, 1]")
        if min_samples_leaf < 1:
            raise ModelError("min_samples_leaf must be at least 1")
        if reg_lambda < 0.0:
            raise ModelError("reg_lambda must be non-negative")
        if objective not in ("logistic", "squared"):
            raise ModelError(f"unknown objective {objective!r}")
        if class_weight not in (None, "balanced"):
            raise ModelError("class_weight must be None or 'balanced'")
        if tree_method not in ("hist", "exact"):
            raise ModelError(f"unknown tree_method {tree_method!r}")
        if not 2 <= num_bins <= 65536:
            raise ModelError("num_bins must be in [2, 65536]")
        self.num_trees = num_trees
        self.max_depth = max_depth
        self.learning_rate = learning_rate
        self.subsample_rows = subsample_rows
        self.subsample_features = subsample_features
        self.min_samples_leaf = min_samples_leaf
        self.reg_lambda = reg_lambda
        self.objective = objective
        self.class_weight = class_weight
        self.tree_method = tree_method
        self.num_bins = num_bins
        self.seed = seed
        self._rng = ensure_rng(seed)
        self._trees: List[BoostedTree] = []
        self._binner: Optional[HistogramBinner] = None
        self._initial_score: float = 0.0
        self.train_loss_: List[float] = []

    # ------------------------------------------------------------------
    def fit(self, features: np.ndarray, labels: Optional[np.ndarray] = None) -> "GradientBoostingClassifier":
        features, labels = validate_training_inputs(features, labels)
        if labels is None:
            raise ModelError("GradientBoostingClassifier is supervised and requires labels")
        weights = self._sample_weights(labels)

        self._initial_score = self._initial_prediction(labels, weights)
        scores = np.full(labels.shape[0], self._initial_score)
        self._trees = []
        self.train_loss_ = []

        num_rows, num_features = features.shape
        rows_per_tree = max(2 * self.min_samples_leaf, int(round(self.subsample_rows * num_rows)))
        features_per_tree = max(1, int(round(self.subsample_features * num_features)))

        binned: Optional[np.ndarray] = None
        if self.tree_method == "hist":
            # Bin the full matrix once; every tree after this touches only
            # the compact integer matrix.
            self._binner = HistogramBinner(num_bins=self.num_bins).fit(features)
            binned = self._binner.transform(features)

        for _ in range(self.num_trees):
            gradients, hessians = self._gradients(labels, scores, weights)
            row_indices = self._rng.choice(num_rows, size=min(rows_per_tree, num_rows), replace=False)
            feature_indices = self._rng.choice(
                num_features, size=features_per_tree, replace=False
            )
            tree: BoostedTree
            if binned is not None:
                assert self._binner is not None
                builder = HistogramTreeBuilder(
                    self._binner,
                    max_depth=self.max_depth,
                    min_samples_leaf=self.min_samples_leaf,
                    reg_lambda=self.reg_lambda,
                    feature_indices=feature_indices,
                )
                tree = builder.build(
                    binned[row_indices], gradients[row_indices], hessians[row_indices]
                )
                update = tree.predict_binned(binned)
            else:
                tree = RegressionTree(
                    max_depth=self.max_depth,
                    min_samples_leaf=self.min_samples_leaf,
                    reg_lambda=self.reg_lambda,
                    feature_indices=feature_indices,
                )
                tree.fit(
                    features[row_indices],
                    gradients[row_indices],
                    hessians[row_indices],
                )
                update = tree.predict(features)
            scores += self.learning_rate * update
            self._trees.append(tree)
            self.train_loss_.append(self._loss(labels, scores, weights))

        self._fitted = True
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        # decision_function validates the inputs; validating here too would
        # coerce and shape-check the matrix twice per call.
        scores = self.decision_function(features)
        if self.objective == "logistic":
            return _sigmoid(scores)
        return np.clip(scores, 0.0, 1.0)

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Raw additive score before the probability mapping."""
        features = self._check_predict_inputs(features)
        return self._accumulate_scores(features)

    def _accumulate_scores(self, features: np.ndarray) -> np.ndarray:
        """Sum the ensemble over an already-validated feature matrix."""
        scores = np.full(features.shape[0], self._initial_score)
        for tree in self._trees:
            scores += self.learning_rate * tree.predict(features)
        return scores

    def staged_predict_proba(self, features: np.ndarray, *, every: int = 1):
        """Yield (num_trees_used, probabilities) as trees are added.

        Used by the Figure 12 benchmark to evaluate 100/200/400/800 trees from
        a single fitted 800-tree model instead of refitting four times.
        """
        features = self._check_predict_inputs(features)
        scores = np.full(features.shape[0], self._initial_score)
        for index, tree in enumerate(self._trees, start=1):
            scores += self.learning_rate * tree.predict(features)
            if index % every == 0 or index == len(self._trees):
                if self.objective == "logistic":
                    yield index, _sigmoid(scores)
                else:
                    yield index, np.clip(scores, 0.0, 1.0)

    @property
    def num_fitted_trees(self) -> int:
        return len(self._trees)

    def feature_importances(self, num_features: int) -> np.ndarray:
        """Split-count feature importances (normalised to sum to 1)."""
        self._check_fitted()
        counts = np.zeros(num_features)

        def _walk(node) -> None:
            if node.is_leaf:
                return
            counts[node.feature_index] += 1.0
            for child in node.iter_children():
                _walk(child)

        for tree in self._trees:
            _walk(tree.tree_)
        total = counts.sum()
        return counts / total if total > 0 else counts

    # ------------------------------------------------------------------
    def _sample_weights(self, labels: np.ndarray) -> np.ndarray:
        if self.class_weight != "balanced":
            return np.ones_like(labels)
        positives = labels.sum()
        negatives = labels.shape[0] - positives
        if positives == 0 or negatives == 0:
            return np.ones_like(labels)
        positive_weight = negatives / positives
        return np.where(labels > 0.5, positive_weight, 1.0)

    def _initial_prediction(self, labels: np.ndarray, weights: np.ndarray) -> float:
        mean = float(np.average(labels, weights=weights))
        mean = min(max(mean, 1e-6), 1.0 - 1e-6)
        if self.objective == "logistic":
            return float(np.log(mean / (1.0 - mean)))
        return mean

    def _gradients(
        self, labels: np.ndarray, scores: np.ndarray, weights: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Negative gradients and hessians of the objective at ``scores``."""
        if self.objective == "logistic":
            probabilities = _sigmoid(scores)
            gradients = weights * (labels - probabilities)
            hessians = weights * probabilities * (1.0 - probabilities)
            return gradients, np.maximum(hessians, 1e-6)
        residuals = weights * (labels - scores)
        return residuals, weights.copy()

    def _loss(self, labels: np.ndarray, scores: np.ndarray, weights: np.ndarray) -> float:
        if self.objective == "logistic":
            probabilities = _sigmoid(scores)
            eps = 1e-10
            return float(
                -np.average(
                    labels * np.log(probabilities + eps)
                    + (1 - labels) * np.log(1 - probabilities + eps),
                    weights=weights,
                )
            )
        return float(np.sqrt(np.average((labels - scores) ** 2, weights=weights)))
