"""Isolation Forest (Liu, Ting and Zhou, 2008).

The paper's anomaly-detection baseline: features are treated as attributes and
fraud is predicted directly from the anomaly score without any labels.  The
paper configures 100 trees on the raw basic features and finds it performs the
worst of the five detection methods — outliers are often unusual for reasons
other than fraud — which our benchmarks reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.exceptions import ModelError
from repro.models.base import BaseDetector, validate_training_inputs
from repro.rng import SeedLike, ensure_rng


def average_path_length(num_samples: float) -> float:
    """Expected path length c(n) of an unsuccessful BST search (the paper's normaliser)."""
    if num_samples <= 1:
        return 0.0
    if num_samples == 2:
        return 1.0
    harmonic = np.log(num_samples - 1.0) + np.euler_gamma
    return float(2.0 * harmonic - 2.0 * (num_samples - 1.0) / num_samples)


@dataclass
class _IsolationNode:
    """Node of an isolation tree."""

    size: int
    feature_index: int = -1
    threshold: float = 0.0
    left: Optional["_IsolationNode"] = None
    right: Optional["_IsolationNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None


class IsolationForest(BaseDetector):
    """Unsupervised anomaly detector based on random isolation trees.

    Parameters
    ----------
    num_trees:
        Number of isolation trees (the paper uses 100).
    subsample_size:
        Rows drawn (without replacement) per tree; 256 as in the original paper.
    seed:
        Seed of the random splits.
    """

    name = "isolation_forest"

    def __init__(
        self,
        *,
        num_trees: int = 100,
        subsample_size: int = 256,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        if num_trees < 1:
            raise ModelError("num_trees must be at least 1")
        if subsample_size < 2:
            raise ModelError("subsample_size must be at least 2")
        self.num_trees = num_trees
        self.subsample_size = subsample_size
        self.seed = seed
        self._trees: List[_IsolationNode] = []
        self._rng = ensure_rng(seed)
        self._normalizer: float = 1.0

    # ------------------------------------------------------------------
    def fit(self, features: np.ndarray, labels: Optional[np.ndarray] = None) -> "IsolationForest":
        """Build the forest.  ``labels`` are ignored (unsupervised)."""
        features, _ = validate_training_inputs(features, None)
        sample_size = min(self.subsample_size, features.shape[0])
        height_limit = int(np.ceil(np.log2(max(sample_size, 2))))
        self._trees = []
        for _ in range(self.num_trees):
            indices = self._rng.choice(features.shape[0], size=sample_size, replace=False)
            self._trees.append(self._build_tree(features[indices], 0, height_limit))
        self._normalizer = average_path_length(float(sample_size))
        self._fitted = True
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Anomaly score in (0, 1): higher means more isolated (more suspicious)."""
        features = self._check_predict_inputs(features)
        depths = np.zeros(features.shape[0])
        for tree in self._trees:
            depths += np.array([self._path_length(row, tree, 0) for row in features])
        mean_depth = depths / len(self._trees)
        normalizer = self._normalizer if self._normalizer > 0 else 1.0
        return np.power(2.0, -mean_depth / normalizer)

    def decision_scores(self, features: np.ndarray) -> np.ndarray:
        """Alias of :meth:`predict_proba` kept for anomaly-detection vocabulary."""
        return self.predict_proba(features)

    # ------------------------------------------------------------------
    def _build_tree(
        self, features: np.ndarray, depth: int, height_limit: int
    ) -> _IsolationNode:
        num_rows = features.shape[0]
        if depth >= height_limit or num_rows <= 1:
            return _IsolationNode(size=num_rows)
        # Pick a random feature with non-constant values, if any exists.
        candidate_order = self._rng.permutation(features.shape[1])
        for feature_index in candidate_order:
            column = features[:, feature_index]
            low, high = column.min(), column.max()
            if high > low:
                threshold = float(self._rng.uniform(low, high))
                mask = column < threshold
                return _IsolationNode(
                    size=num_rows,
                    feature_index=int(feature_index),
                    threshold=threshold,
                    left=self._build_tree(features[mask], depth + 1, height_limit),
                    right=self._build_tree(features[~mask], depth + 1, height_limit),
                )
        return _IsolationNode(size=num_rows)

    def _path_length(self, row: np.ndarray, node: _IsolationNode, depth: int) -> float:
        while not node.is_leaf:
            if row[node.feature_index] < node.threshold:
                node = node.left  # type: ignore[assignment]
            else:
                node = node.right  # type: ignore[assignment]
            depth += 1
        return depth + average_path_length(float(node.size))
