"""Logistic Regression with L1 regularisation and feature discretisation.

Section 5.1 of the paper: LR is trained with L1 regularisation (weight 0.1),
300 iterations as the stopping criterion, and feature discretisation
pre-processing ("which tremendously improves performance"); the best reported
discretisation bin size is 200.  We implement proximal gradient descent
(ISTA with a soft-thresholding step) on the logistic loss, with the optional
quantile discretisation + one-hot expansion applied inside the model so that
callers can hand it the same raw feature matrix every other detector receives.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ModelError
from repro.features.discretization import Discretizer, DiscretizerConfig
from repro.features.matrix import FeatureMatrix
from repro.models.base import BaseDetector, validate_training_inputs


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


def soft_threshold(values: np.ndarray, amount: float) -> np.ndarray:
    """Soft-thresholding operator used by the L1 proximal step."""
    return np.sign(values) * np.maximum(np.abs(values) - amount, 0.0)


class LogisticRegression(BaseDetector):
    """L1-regularised logistic regression trained with proximal gradient descent.

    Parameters
    ----------
    l1:
        L1 penalty weight (paper: 0.1).
    iterations:
        Number of full-batch proximal gradient steps (paper: 300).
    learning_rate:
        Step size; decayed harmonically over iterations.
    discretize_bins:
        When positive, continuous columns are quantile-binned into this many
        bins and one-hot encoded before fitting (paper's best: 200).  Zero
        disables discretisation and fits on standardised raw features.
    class_weight:
        ``"balanced"`` re-weights the minority class by the inverse class
        frequency (important under the extreme fraud imbalance); ``None``
        uses plain unweighted loss.
    """

    name = "logistic_regression"

    def __init__(
        self,
        *,
        l1: float = 0.1,
        iterations: int = 300,
        learning_rate: float = 0.5,
        discretize_bins: int = 200,
        class_weight: Optional[str] = "balanced",
        fit_intercept: bool = True,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        if l1 < 0:
            raise ModelError("l1 must be non-negative")
        if iterations < 1:
            raise ModelError("iterations must be at least 1")
        if learning_rate <= 0:
            raise ModelError("learning_rate must be positive")
        if class_weight not in (None, "balanced"):
            raise ModelError("class_weight must be None or 'balanced'")
        self.l1 = l1
        self.iterations = iterations
        self.learning_rate = learning_rate
        self.discretize_bins = discretize_bins
        self.class_weight = class_weight
        self.fit_intercept = fit_intercept
        self.seed = seed
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0
        self.loss_history_: list[float] = []
        self._discretizer: Optional[Discretizer] = None
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def fit(self, features: np.ndarray, labels: Optional[np.ndarray] = None) -> "LogisticRegression":
        features, labels = validate_training_inputs(features, labels)
        if labels is None:
            raise ModelError("LogisticRegression is supervised and requires labels")
        design = self._fit_preprocess(features)
        weights = self._sample_weights(labels)

        num_features = design.shape[1]
        coef = np.zeros(num_features)
        intercept = 0.0
        self.loss_history_ = []
        for iteration in range(self.iterations):
            step = self.learning_rate / (1.0 + 0.01 * iteration)
            scores = design @ coef + intercept
            probabilities = _sigmoid(scores)
            residual = weights * (probabilities - labels)
            gradient = design.T @ residual / design.shape[0]
            coef = soft_threshold(coef - step * gradient, step * self.l1 / design.shape[0])
            if self.fit_intercept:
                intercept -= step * float(residual.mean())
            eps = 1e-10
            loss = float(
                -np.mean(
                    weights
                    * (labels * np.log(probabilities + eps) + (1 - labels) * np.log(1 - probabilities + eps))
                )
                + self.l1 * np.abs(coef).sum() / design.shape[0]
            )
            self.loss_history_.append(loss)

        self.coef_ = coef
        self.intercept_ = intercept
        self._fitted = True
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        features = self._check_predict_inputs(features)
        design = self._apply_preprocess(features)
        assert self.coef_ is not None
        return _sigmoid(design @ self.coef_ + self.intercept_)

    @property
    def nonzero_coefficients(self) -> int:
        """Number of non-zero weights after L1 shrinkage (sparsity diagnostic)."""
        if self.coef_ is None:
            raise ModelError("model has not been fitted")
        return int(np.count_nonzero(self.coef_))

    # ------------------------------------------------------------------
    def _sample_weights(self, labels: np.ndarray) -> np.ndarray:
        if self.class_weight != "balanced":
            return np.ones_like(labels)
        positives = labels.sum()
        negatives = labels.shape[0] - positives
        if positives == 0 or negatives == 0:
            return np.ones_like(labels)
        positive_weight = negatives / positives
        return np.where(labels > 0.5, positive_weight, 1.0)

    def _fit_preprocess(self, features: np.ndarray) -> np.ndarray:
        if self.discretize_bins and self.discretize_bins > 1:
            matrix = FeatureMatrix(
                feature_names=[f"f{i}" for i in range(features.shape[1])],
                values=features,
            )
            self._discretizer = Discretizer(
                DiscretizerConfig(num_bins=self.discretize_bins, kind="quantile", one_hot=True)
            )
            transformed = self._discretizer.fit_transform(matrix).values
            self._mean = None
            self._std = None
            return transformed
        self._discretizer = None
        self._mean = features.mean(axis=0)
        std = features.std(axis=0)
        self._std = np.where(std == 0.0, 1.0, std)
        return (features - self._mean) / self._std

    def _apply_preprocess(self, features: np.ndarray) -> np.ndarray:
        if self._discretizer is not None:
            matrix = FeatureMatrix(
                feature_names=[f"f{i}" for i in range(features.shape[1])],
                values=features,
            )
            return self._discretizer.transform(matrix).values
        assert self._mean is not None and self._std is not None
        return (features - self._mean) / self._std
