"""Rule extraction from decision trees.

The paper frames ID3/C5.0 as "rule-based methods" where "features are regarded
as rules and label information is utilized to do fine-tune".  This module
turns a fitted tree into an explicit IF/THEN rule set — the form a risk-policy
team would review — and can score transactions with it, which also provides a
readable audit trail for alerts raised by the tree-based detectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import ModelError
from repro.models.tree.node import TreeNode


@dataclass(frozen=True)
class Condition:
    """One atomic condition ``feature <op> value``."""

    feature_index: int
    operator: str  # "<=", ">", "=="
    value: float

    def evaluate(self, row: np.ndarray) -> bool:
        feature_value = row[self.feature_index]
        if self.operator == "<=":
            return bool(feature_value <= self.value)
        if self.operator == ">":
            return bool(feature_value > self.value)
        if self.operator == "==":
            return bool(feature_value == self.value)
        raise ModelError(f"unknown operator {self.operator!r}")

    def describe(self, feature_names: Optional[Sequence[str]] = None) -> str:
        name = (
            feature_names[self.feature_index]
            if feature_names is not None
            else f"f{self.feature_index}"
        )
        return f"{name} {self.operator} {self.value:g}"


@dataclass
class Rule:
    """IF all conditions THEN fraud probability ``value``."""

    conditions: List[Condition]
    value: float
    num_samples: int = 0

    def matches(self, row: np.ndarray) -> bool:
        return all(condition.evaluate(row) for condition in self.conditions)

    def describe(self, feature_names: Optional[Sequence[str]] = None) -> str:
        if not self.conditions:
            return f"IF (always) THEN fraud_probability={self.value:.4f}"
        clauses = " AND ".join(c.describe(feature_names) for c in self.conditions)
        return f"IF {clauses} THEN fraud_probability={self.value:.4f} [n={self.num_samples}]"


@dataclass
class RuleSet:
    """An ordered collection of rules extracted from one tree."""

    rules: List[Rule] = field(default_factory=list)
    default_value: float = 0.0

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self):
        return iter(self.rules)

    def predict_row(self, row: np.ndarray) -> float:
        for rule in self.rules:
            if rule.matches(row):
                return rule.value
        return self.default_value

    def predict(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features.reshape(1, -1)
        return np.array([self.predict_row(row) for row in features])

    def high_risk_rules(self, *, min_probability: float = 0.5) -> List[Rule]:
        """Rules whose consequent marks the transaction as likely fraud."""
        return [rule for rule in self.rules if rule.value >= min_probability]

    def describe(self, feature_names: Optional[Sequence[str]] = None) -> str:
        lines = [rule.describe(feature_names) for rule in self.rules]
        lines.append(f"ELSE fraud_probability={self.default_value:.4f}")
        return "\n".join(lines)


def extract_rules(root: TreeNode) -> RuleSet:
    """Extract one rule per leaf of ``root`` (leaf value becomes the consequent)."""
    rules: List[Rule] = []

    def _walk(node: TreeNode, conditions: List[Condition]) -> None:
        if node.is_leaf:
            rules.append(
                Rule(conditions=list(conditions), value=node.value, num_samples=node.num_samples)
            )
            return
        if node.threshold is not None:
            if node.left is not None:
                _walk(
                    node.left,
                    conditions + [Condition(node.feature_index or 0, "<=", node.threshold)],
                )
            if node.right is not None:
                _walk(
                    node.right,
                    conditions + [Condition(node.feature_index or 0, ">", node.threshold)],
                )
        else:
            for category, child in node.children.items():
                _walk(
                    child,
                    conditions + [Condition(node.feature_index or 0, "==", category)],
                )

    _walk(root, [])
    default = root.value if root.is_leaf else root.fallback_value
    return RuleSet(rules=rules, default_value=default)
