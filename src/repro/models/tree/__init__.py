"""Decision-tree infrastructure.

Shared by the rule-based detectors (ID3, C5.0-style C4.5) and by GBDT's
regression trees:

* :mod:`repro.models.tree.splitter` — impurity criteria (entropy, information
  gain, gain ratio, variance reduction) and vectorised best-split search,
* :mod:`repro.models.tree.node` — the tree node structure and traversal,
* :mod:`repro.models.tree.id3` — ID3 with multiway categorical splits,
* :mod:`repro.models.tree.c45` — C4.5/C5.0-style trees (gain ratio, binary
  threshold splits on continuous attributes, pessimistic pruning),
* :mod:`repro.models.tree.cart` — regression trees used as GBDT weak learners,
* :mod:`repro.models.tree.histogram` — quantile binning and histogram-based
  tree growth (GBDT's ``tree_method="hist"`` fast path).
"""

from repro.models.tree.node import TreeNode
from repro.models.tree.splitter import (
    entropy,
    gini_impurity,
    information_gain,
    gain_ratio,
    best_numeric_split,
    best_categorical_split,
    best_histogram_split,
)
from repro.models.tree.id3 import ID3Classifier
from repro.models.tree.c45 import C45Classifier
from repro.models.tree.cart import RegressionTree
from repro.models.tree.histogram import (
    HistogramBinner,
    HistogramTree,
    HistogramTreeBuilder,
    build_histograms,
)

__all__ = [
    "TreeNode",
    "entropy",
    "gini_impurity",
    "information_gain",
    "gain_ratio",
    "best_numeric_split",
    "best_categorical_split",
    "best_histogram_split",
    "ID3Classifier",
    "C45Classifier",
    "RegressionTree",
    "HistogramBinner",
    "HistogramTree",
    "HistogramTreeBuilder",
    "build_histograms",
]
