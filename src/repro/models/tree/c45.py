"""C4.5 / C5.0-style decision-tree classifier.

The paper's second rule-based baseline is C5.0, the commercial successor of
C4.5.  Relative to ID3 it (a) ranks splits by gain ratio rather than raw
information gain, (b) handles continuous attributes natively through binary
threshold splits, and (c) prunes the grown tree.  The paper attributes C5.0's
6.9 % average improvement over ID3 to its "better data discretization and
segmentation mechanisms such as Gain Ratio" — which is exactly the part this
implementation reproduces, together with pessimistic error pruning.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.exceptions import ModelError
from repro.models.base import BaseDetector, validate_training_inputs
from repro.models.tree.node import TreeNode
from repro.models.tree.splitter import best_categorical_split, best_numeric_split


class C45Classifier(BaseDetector):
    """C4.5/C5.0-style tree: gain ratio, threshold splits, pessimistic pruning.

    Parameters
    ----------
    max_depth, min_samples_split, min_samples_leaf:
        Pre-pruning controls.
    prune:
        When True (default), applies pessimistic error pruning after growth:
        a subtree is collapsed into a leaf whenever the leaf's pessimistic
        error estimate does not exceed the subtree's.
    categorical_max_unique:
        Columns with at most this many distinct training values are treated as
        categorical attributes (multiway splits); all other columns use binary
        threshold splits.
    """

    name = "c50"

    def __init__(
        self,
        *,
        max_depth: int = 8,
        min_samples_split: int = 20,
        min_samples_leaf: int = 5,
        prune: bool = True,
        pruning_confidence: float = 0.25,
        categorical_max_unique: int = 8,
    ) -> None:
        super().__init__()
        if max_depth < 1:
            raise ModelError("max_depth must be at least 1")
        if not 0.0 < pruning_confidence < 1.0:
            raise ModelError("pruning_confidence must be in (0, 1)")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.prune = prune
        self.pruning_confidence = pruning_confidence
        self.categorical_max_unique = categorical_max_unique
        self._root: Optional[TreeNode] = None
        self._categorical: Optional[List[bool]] = None

    # ------------------------------------------------------------------
    def fit(self, features: np.ndarray, labels: Optional[np.ndarray] = None) -> "C45Classifier":
        features, labels = validate_training_inputs(features, labels)
        if labels is None:
            raise ModelError(f"{type(self).__name__} is supervised and requires labels")
        self._categorical = [
            np.unique(features[:, i]).size <= self.categorical_max_unique
            for i in range(features.shape[1])
        ]
        self._root = self._build(features, labels, depth=0)
        if self.prune:
            self._prune_node(self._root)
        self._fitted = True
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        features = self._check_predict_inputs(features)
        assert self._root is not None
        return self._root.predict(features)

    @property
    def tree_(self) -> TreeNode:
        if self._root is None:
            raise ModelError("tree has not been fitted")
        return self._root

    # ------------------------------------------------------------------
    def _build(self, features: np.ndarray, labels: np.ndarray, *, depth: int) -> TreeNode:
        positive_rate = float(labels.mean()) if labels.size else 0.0
        node = TreeNode(
            is_leaf=True,
            value=positive_rate,
            num_samples=int(labels.size),
            fallback_value=positive_rate,
        )
        if (
            depth >= self.max_depth
            or labels.size < self.min_samples_split
            or positive_rate in (0.0, 1.0)
        ):
            return node

        assert self._categorical is not None
        best_score = 0.0
        best_feature: Optional[int] = None
        best_numeric = None
        best_categorical = None
        for feature_index in range(features.shape[1]):
            column = features[:, feature_index]
            if self._categorical[feature_index]:
                split = best_categorical_split(
                    column, labels, criterion="gain_ratio", min_leaf=self.min_samples_leaf
                )
                if split is not None and split.score > best_score:
                    best_score = split.score
                    best_feature = feature_index
                    best_categorical, best_numeric = split, None
            else:
                split = best_numeric_split(
                    column, labels, criterion="gain_ratio", min_leaf=self.min_samples_leaf
                )
                if split is not None and split.score > best_score:
                    best_score = split.score
                    best_feature = feature_index
                    best_numeric, best_categorical = split, None

        if best_feature is None:
            return node

        node.is_leaf = False
        node.feature_index = best_feature
        if best_numeric is not None:
            node.threshold = best_numeric.threshold
            mask = features[:, best_feature] <= best_numeric.threshold
            node.left = self._build(features[mask], labels[mask], depth=depth + 1)
            node.right = self._build(features[~mask], labels[~mask], depth=depth + 1)
        else:
            assert best_categorical is not None
            node.threshold = None
            for category in best_categorical.categories:
                mask = features[:, best_feature] == category
                node.children[float(category)] = self._build(
                    features[mask], labels[mask], depth=depth + 1
                )
        return node

    # ------------------------------------------------------------------
    # Pessimistic error pruning (C4.5 style, simplified)
    # ------------------------------------------------------------------
    def _pessimistic_errors(self, node: TreeNode) -> float:
        """Upper-bound error estimate of treating ``node`` as a leaf."""
        n = max(node.num_samples, 1)
        error_rate = min(node.value, 1.0 - node.value)
        errors = error_rate * n
        # Continuity correction plus a confidence-scaled penalty per leaf,
        # following the spirit of C4.5's pessimistic estimate.
        return errors + 0.5 + self.pruning_confidence * np.sqrt(errors + 0.5)

    def _subtree_errors(self, node: TreeNode) -> float:
        if node.is_leaf:
            return self._pessimistic_errors(node)
        return sum(self._subtree_errors(child) for child in node.iter_children())

    def _prune_node(self, node: TreeNode) -> None:
        if node.is_leaf:
            return
        for child in node.iter_children():
            self._prune_node(child)
        leaf_errors = self._pessimistic_errors(node)
        subtree_errors = self._subtree_errors(node)
        if leaf_errors <= subtree_errors:
            node.is_leaf = True
            node.left = None
            node.right = None
            node.children = {}
            node.feature_index = None
            node.threshold = None
