"""Regression trees (CART style) — the weak learners inside GBDT.

Each tree fits the negative gradients of the boosting objective with binary
threshold splits chosen by the second-order gain, and stores per-leaf Newton
step values.  The paper's GBDT uses trees of depth 3 with row/column
subsampling of 0.4; subsampling is handled by the boosting driver, the tree
only sees the (sub)sample it is given.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ModelError, NotFittedError
from repro.models.tree.node import TreeNode
from repro.models.tree.splitter import best_regression_split


class RegressionTree:
    """Depth-limited regression tree with optional per-row hessians.

    Parameters
    ----------
    max_depth:
        Maximum depth (the paper uses 3 for GBDT).
    min_samples_leaf:
        Minimum rows per leaf.
    reg_lambda:
        L2 regularisation added to the hessian sum in leaf values and gains.
    feature_indices:
        Optional array of column indices this tree is allowed to split on
        (set by GBDT's feature subsampling); leaf predictions still consume
        the full feature vector.
    """

    def __init__(
        self,
        *,
        max_depth: int = 3,
        min_samples_leaf: int = 5,
        reg_lambda: float = 1.0,
        feature_indices: Optional[np.ndarray] = None,
    ) -> None:
        if max_depth < 1:
            raise ModelError("max_depth must be at least 1")
        if min_samples_leaf < 1:
            raise ModelError("min_samples_leaf must be at least 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.reg_lambda = reg_lambda
        self.feature_indices = feature_indices
        self._root: Optional[TreeNode] = None

    # ------------------------------------------------------------------
    def fit(
        self,
        features: np.ndarray,
        gradients: np.ndarray,
        hessians: Optional[np.ndarray] = None,
    ) -> "RegressionTree":
        """Fit the tree to (negative) gradients with optional hessians."""
        features = np.asarray(features, dtype=np.float64)
        gradients = np.asarray(gradients, dtype=np.float64).ravel()
        if features.ndim != 2:
            raise ModelError("features must be a 2-dimensional array")
        if gradients.shape[0] != features.shape[0]:
            raise ModelError("gradients length does not match the number of rows")
        if hessians is None:
            hessians = np.ones_like(gradients)
        else:
            hessians = np.asarray(hessians, dtype=np.float64).ravel()
            if hessians.shape[0] != features.shape[0]:
                raise ModelError("hessians length does not match the number of rows")
        self._root = self._build(features, gradients, hessians, depth=0)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise NotFittedError("RegressionTree must be fitted before prediction")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features.reshape(1, -1)
        return self._root.predict(features)

    @property
    def tree_(self) -> TreeNode:
        if self._root is None:
            raise NotFittedError("RegressionTree must be fitted before inspection")
        return self._root

    # ------------------------------------------------------------------
    def _leaf_value(self, gradients: np.ndarray, hessians: np.ndarray) -> float:
        return float(gradients.sum() / (hessians.sum() + self.reg_lambda))

    def _build(
        self,
        features: np.ndarray,
        gradients: np.ndarray,
        hessians: np.ndarray,
        *,
        depth: int,
    ) -> TreeNode:
        value = self._leaf_value(gradients, hessians)
        node = TreeNode(
            is_leaf=True,
            value=value,
            num_samples=int(gradients.shape[0]),
            fallback_value=value,
        )
        if depth >= self.max_depth or gradients.shape[0] < 2 * self.min_samples_leaf:
            return node

        candidate_columns = (
            self.feature_indices
            if self.feature_indices is not None
            else np.arange(features.shape[1])
        )
        best_gain = 0.0
        best_feature: Optional[int] = None
        best_threshold = 0.0
        for feature_index in candidate_columns:
            split = best_regression_split(
                features[:, feature_index],
                gradients,
                hessians=hessians,
                min_leaf=self.min_samples_leaf,
                reg_lambda=self.reg_lambda,
            )
            if split is not None and split.score > best_gain:
                best_gain = split.score
                best_feature = int(feature_index)
                best_threshold = split.threshold
        if best_feature is None:
            return node

        mask = features[:, best_feature] <= best_threshold
        node.is_leaf = False
        node.feature_index = best_feature
        node.threshold = best_threshold
        node.left = self._build(features[mask], gradients[mask], hessians[mask], depth=depth + 1)
        node.right = self._build(
            features[~mask], gradients[~mask], hessians[~mask], depth=depth + 1
        )
        return node
