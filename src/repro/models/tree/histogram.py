"""Histogram-binned regression-tree growth — the fast path inside GBDT.

Exact split search sorts every node's rows for every candidate feature, so
fitting 400 boosted trees rescans the raw matrix thousands of times.  The
histogram engine follows the design of production boosted-tree systems
(XGBoost/LightGBM and the paper's KunPeng training platform):

* :class:`HistogramBinner` quantile-bins the full training matrix **once**
  into compact ``uint8``/``uint16`` bin indices (reusing the same quantile
  cut points as :func:`repro.features.discretization.quantile_edges`),
* :func:`build_histograms` accumulates per-node (gradient, hessian, count)
  histograms with a single ``np.bincount`` sweep per statistic,
* :class:`HistogramTreeBuilder` grows a depth-limited tree level by level,
  scanning bin boundaries with prefix sums
  (:func:`repro.models.tree.splitter.best_histogram_split`).

Because a node's histogram is a fixed ``features x bins`` block regardless of
how many rows it holds, the distributed driver can aggregate worker-local
histograms through the parameter servers with communication volume
independent of the row count — see :class:`repro.models.distributed.DistributedGBDT`.

The produced trees carry both a raw-feature ``threshold`` (so serving-time
prediction sees ordinary :class:`~repro.models.tree.node.TreeNode` trees) and
the originating ``bin_threshold`` (so the boosting loop can route pre-binned
rows without touching floats).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import ModelError, NotFittedError
from repro.features.discretization import quantile_edges
from repro.models.tree.node import TreeNode
from repro.models.tree.splitter import best_histogram_split


class HistogramBinner:
    """Per-column quantile binning of a training matrix into bin indices.

    Parameters
    ----------
    num_bins:
        Maximum bins per feature.  Columns with fewer distinct values use
        fewer bins (duplicate quantile edges collapse, exactly as in
        :class:`~repro.features.discretization.QuantileBinner`).
    """

    def __init__(self, *, num_bins: int = 64) -> None:
        if not 2 <= num_bins <= 65536:
            raise ModelError("num_bins must be in [2, 65536]")
        self.num_bins = num_bins
        self.edges_: Optional[List[np.ndarray]] = None

    # ------------------------------------------------------------------
    def fit(self, features: np.ndarray) -> "HistogramBinner":
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ModelError("features must be a 2-dimensional array")
        if features.shape[0] == 0:
            raise ModelError("cannot fit a binner on an empty matrix")
        self.edges_ = [
            quantile_edges(features[:, column], self.num_bins)
            for column in range(features.shape[1])
        ]
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Bin a matrix into ``uint8``/``uint16`` bin indices, column by column."""
        if self.edges_ is None:
            raise NotFittedError("HistogramBinner must be fitted before transform")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[1] != len(self.edges_):
            raise ModelError(
                f"expected a 2-d matrix with {len(self.edges_)} columns to bin"
            )
        dtype = np.uint8 if self.num_bins <= 256 else np.uint16
        binned = np.empty(features.shape, dtype=dtype)
        for column, edges in enumerate(self.edges_):
            bins = np.searchsorted(edges, features[:, column], side="right")
            binned[:, column] = np.clip(bins, 0, self.num_bins - 1)
        return binned

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)

    # ------------------------------------------------------------------
    @property
    def num_features(self) -> int:
        if self.edges_ is None:
            raise NotFittedError("HistogramBinner must be fitted first")
        return len(self.edges_)

    def threshold(self, feature_index: int, bin_index: int) -> float:
        """Raw-feature threshold equivalent to the binned split ``bin <= bin_index``.

        ``transform`` sends ``value`` to a bin ``<= bin_index`` exactly when
        ``value < edges[bin_index]``; tree traversal tests ``value <=
        threshold``, so the threshold is the largest float *below* that edge.
        """
        if self.edges_ is None:
            raise NotFittedError("HistogramBinner must be fitted first")
        edges = self.edges_[feature_index]
        if not 0 <= bin_index < edges.shape[0]:
            raise ModelError(
                f"bin {bin_index} of feature {feature_index} has no upper edge"
            )
        return float(np.nextafter(edges[bin_index], -np.inf))


# ---------------------------------------------------------------------------
# Histogram accumulation
# ---------------------------------------------------------------------------


def build_histograms(
    binned: np.ndarray,
    gradients: np.ndarray,
    hessians: np.ndarray,
    *,
    num_bins: int,
    node_ids: Optional[np.ndarray] = None,
    num_nodes: int = 1,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-node (gradient, hessian, count) histograms of a binned matrix.

    Returns three ``(num_nodes, num_features, num_bins)`` arrays accumulated
    with one ``np.bincount`` sweep per statistic.  ``node_ids`` assigns each
    row to a node slot (all rows to slot 0 when omitted).  Addition is the
    only operation, so histograms over disjoint row partitions merge by
    summation — the property the distributed driver relies on when workers
    push local histograms to the parameter servers.
    """
    binned = np.asarray(binned)
    if binned.ndim != 2:
        raise ModelError("binned matrix must be 2-dimensional")
    num_rows, num_features = binned.shape
    gradients = np.asarray(gradients, dtype=np.float64).ravel()
    hessians = np.asarray(hessians, dtype=np.float64).ravel()
    if gradients.shape[0] != num_rows or hessians.shape[0] != num_rows:
        raise ModelError("gradients/hessians length does not match the binned rows")
    if node_ids is None:
        node_ids = np.zeros(num_rows, dtype=np.int64)
    else:
        node_ids = np.asarray(node_ids, dtype=np.int64).ravel()
        if node_ids.shape[0] != num_rows:
            raise ModelError("node_ids length does not match the binned rows")
    size = num_nodes * num_features * num_bins
    shape = (num_nodes, num_features, num_bins)
    if num_rows == 0:
        zeros = np.zeros(shape)
        return zeros, zeros.copy(), zeros.copy()
    # Flat (node, feature, bin) index per matrix cell, row-major over features.
    flat = (
        node_ids[:, None] * (num_features * num_bins)
        + np.arange(num_features, dtype=np.int64)[None, :] * num_bins
        + binned.astype(np.int64)
    ).ravel()
    grad_hist = np.bincount(flat, weights=np.repeat(gradients, num_features), minlength=size)
    hess_hist = np.bincount(flat, weights=np.repeat(hessians, num_features), minlength=size)
    count_hist = np.bincount(flat, minlength=size).astype(np.float64)
    return grad_hist.reshape(shape), hess_hist.reshape(shape), count_hist.reshape(shape)


# ---------------------------------------------------------------------------
# Vectorised traversal
# ---------------------------------------------------------------------------


def _fill_predictions(
    node: TreeNode, matrix: np.ndarray, indices: np.ndarray, out: np.ndarray, *, binned: bool
) -> None:
    if node.is_leaf:
        out[indices] = node.value
        return
    assert node.left is not None and node.right is not None
    if binned:
        goes_left = matrix[indices, node.feature_index] <= node.bin_threshold
    else:
        goes_left = matrix[indices, node.feature_index] <= node.threshold
    _fill_predictions(node.left, matrix, indices[goes_left], out, binned=binned)
    _fill_predictions(node.right, matrix, indices[~goes_left], out, binned=binned)


@dataclass
class _GrowingNode:
    """Bookkeeping for one node still eligible for splitting."""

    node: TreeNode
    gradient: float
    hessian: float
    count: int


def realize_split(
    node: TreeNode,
    split,
    feature_index: int,
    binner: HistogramBinner,
    *,
    reg_lambda: float,
) -> Tuple[TreeNode, TreeNode]:
    """Turn a leaf ``node`` into the internal node described by ``split``.

    Shared by the local :class:`HistogramTreeBuilder` and the distributed
    driver (:class:`repro.models.distributed.DistributedGBDT`) so the growth
    rules — Newton leaf values and the bin→raw threshold mapping — exist in
    exactly one place.  Returns the created ``(left, right)`` children.
    """
    node.is_leaf = False
    node.feature_index = int(feature_index)
    node.bin_threshold = int(split.bin_index)
    node.threshold = binner.threshold(int(feature_index), split.bin_index)
    left_value = split.left_gradient / (split.left_hessian + reg_lambda)
    right_value = split.right_gradient / (split.right_hessian + reg_lambda)
    node.left = TreeNode(
        is_leaf=True,
        value=left_value,
        num_samples=split.left_count,
        fallback_value=left_value,
    )
    node.right = TreeNode(
        is_leaf=True,
        value=right_value,
        num_samples=split.right_count,
        fallback_value=right_value,
    )
    return node.left, node.right


class HistogramTree:
    """A fitted histogram tree: raw-feature and binned-matrix prediction."""

    def __init__(self, root: TreeNode, *, feature_indices: Optional[np.ndarray] = None):
        self._root = root
        self.feature_indices = feature_indices

    @property
    def tree_(self) -> TreeNode:
        return self._root

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Leaf values for raw (float) feature rows, vectorised."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features.reshape(1, -1)
        out = np.empty(features.shape[0], dtype=np.float64)
        _fill_predictions(
            self._root, features, np.arange(features.shape[0]), out, binned=False
        )
        return out

    def predict_binned(self, binned: np.ndarray) -> np.ndarray:
        """Leaf values for pre-binned rows — the boosting-loop hot path."""
        binned = np.asarray(binned)
        out = np.empty(binned.shape[0], dtype=np.float64)
        _fill_predictions(self._root, binned, np.arange(binned.shape[0]), out, binned=True)
        return out


class HistogramTreeBuilder:
    """Grow a depth-limited regression tree from a pre-binned matrix.

    The builder mirrors :class:`~repro.models.tree.cart.RegressionTree`'s
    growth rules (second-order gain, ``min_samples_leaf`` on both children,
    strictly positive gain, candidate features scanned in the given order)
    but replaces per-node sorting with level-wise histogram accumulation.
    """

    def __init__(
        self,
        binner: HistogramBinner,
        *,
        max_depth: int = 3,
        min_samples_leaf: int = 5,
        reg_lambda: float = 1.0,
        feature_indices: Optional[np.ndarray] = None,
    ) -> None:
        if max_depth < 1:
            raise ModelError("max_depth must be at least 1")
        if min_samples_leaf < 1:
            raise ModelError("min_samples_leaf must be at least 1")
        self.binner = binner
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.reg_lambda = reg_lambda
        self.feature_indices = feature_indices

    # ------------------------------------------------------------------
    def _leaf_value(self, gradient: float, hessian: float) -> float:
        return gradient / (hessian + self.reg_lambda)

    def build(
        self,
        binned: np.ndarray,
        gradients: np.ndarray,
        hessians: np.ndarray,
    ) -> HistogramTree:
        """Fit a tree to (negative) gradients over pre-binned rows."""
        binned = np.asarray(binned)
        gradients = np.asarray(gradients, dtype=np.float64).ravel()
        hessians = np.asarray(hessians, dtype=np.float64).ravel()
        if binned.ndim != 2 or binned.shape[0] != gradients.shape[0]:
            raise ModelError("binned matrix and gradients disagree on the row count")
        columns = (
            np.asarray(self.feature_indices, dtype=np.int64)
            if self.feature_indices is not None
            else np.arange(binned.shape[1], dtype=np.int64)
        )
        sub = np.ascontiguousarray(binned[:, columns])
        num_rows = sub.shape[0]
        num_bins = self.binner.num_bins

        value = self._leaf_value(float(gradients.sum()), float(hessians.sum()))
        root = TreeNode(
            is_leaf=True, value=value, num_samples=num_rows, fallback_value=value
        )
        active: List[_GrowingNode] = [
            _GrowingNode(
                node=root,
                gradient=float(gradients.sum()),
                hessian=float(hessians.sum()),
                count=num_rows,
            )
        ]
        node_ids = np.zeros(num_rows, dtype=np.int64)
        live = np.ones(num_rows, dtype=bool)

        for _depth in range(self.max_depth):
            if not active:
                break
            grad_hist, hess_hist, count_hist = build_histograms(
                sub[live],
                gradients[live],
                hessians[live],
                num_bins=num_bins,
                node_ids=node_ids[live],
                num_nodes=len(active),
            )
            splits = []
            for slot, growing in enumerate(active):
                split = None
                if growing.count >= 2 * self.min_samples_leaf:
                    split = best_histogram_split(
                        grad_hist[slot],
                        hess_hist[slot],
                        count_hist[slot],
                        min_leaf=self.min_samples_leaf,
                        reg_lambda=self.reg_lambda,
                    )
                splits.append(split)
            active, node_ids, live = self._apply_splits(
                active, splits, columns, sub, node_ids, live
            )
        return HistogramTree(root, feature_indices=self.feature_indices)

    # ------------------------------------------------------------------
    def _apply_splits(
        self,
        active: List[_GrowingNode],
        splits: List[object],
        columns: np.ndarray,
        sub: np.ndarray,
        node_ids: np.ndarray,
        live: np.ndarray,
    ) -> Tuple[List[_GrowingNode], np.ndarray, np.ndarray]:
        """Realise the chosen splits and reassign rows to next-level slots."""
        next_active: List[_GrowingNode] = []
        new_ids = np.full(node_ids.shape[0], -1, dtype=np.int64)
        for slot, (growing, split) in enumerate(zip(active, splits)):
            if split is None:
                continue  # the node stays a leaf; its rows retire
            left, right = realize_split(
                growing.node,
                split,
                int(columns[split.feature_slot]),
                self.binner,
                reg_lambda=self.reg_lambda,
            )
            rows = np.nonzero(live & (node_ids == slot))[0]
            goes_left = sub[rows, split.feature_slot] <= split.bin_index
            left_slot = len(next_active)
            new_ids[rows[goes_left]] = left_slot
            new_ids[rows[~goes_left]] = left_slot + 1
            next_active.append(
                _GrowingNode(
                    node=left,
                    gradient=split.left_gradient,
                    hessian=split.left_hessian,
                    count=split.left_count,
                )
            )
            next_active.append(
                _GrowingNode(
                    node=right,
                    gradient=split.right_gradient,
                    hessian=split.right_hessian,
                    count=split.right_count,
                )
            )
        return next_active, new_ids, new_ids >= 0
