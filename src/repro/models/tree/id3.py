"""ID3 decision-tree classifier (Quinlan, 1986).

The paper's first rule-based baseline.  ID3 treats every feature as a
categorical attribute and splits multiway on the attribute with the highest
information gain.  Continuous basic features must therefore be discretised
first — the experiment harness bins them exactly as Section 5.1 describes
("we discretize the data into different bins").
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.exceptions import ModelError
from repro.features.discretization import discretize_array
from repro.models.base import BaseDetector, validate_training_inputs
from repro.models.tree.node import TreeNode
from repro.models.tree.splitter import best_categorical_split


class ID3Classifier(BaseDetector):
    """ID3 with multiway categorical splits and information gain.

    Parameters
    ----------
    max_depth:
        Maximum tree depth; ID3 has no pruning, so the depth cap is the only
        regularisation.
    min_samples_split:
        Minimum number of rows required to attempt a split.
    discretize_bins:
        When positive, continuous input columns are quantile-binned into this
        many bins at ``fit`` time (and the same binning is applied at
        prediction time through the stored bin edges of the training data).
    """

    name = "id3"

    def __init__(
        self,
        *,
        max_depth: int = 6,
        min_samples_split: int = 20,
        min_samples_leaf: int = 5,
        discretize_bins: int = 10,
    ) -> None:
        super().__init__()
        if max_depth < 1:
            raise ModelError("max_depth must be at least 1")
        if min_samples_split < 2:
            raise ModelError("min_samples_split must be at least 2")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.discretize_bins = discretize_bins
        self._root: Optional[TreeNode] = None
        self._bin_edges: Optional[List[Optional[np.ndarray]]] = None

    # ------------------------------------------------------------------
    criterion = "gain"

    def fit(self, features: np.ndarray, labels: Optional[np.ndarray] = None) -> "ID3Classifier":
        features, labels = validate_training_inputs(features, labels)
        if labels is None:
            raise ModelError(f"{type(self).__name__} is supervised and requires labels")
        encoded = self._fit_discretizer(features)
        self._root = self._build(encoded, labels, depth=0)
        self._fitted = True
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        features = self._check_predict_inputs(features)
        assert self._root is not None
        encoded = self._apply_discretizer(features)
        return self._root.predict(encoded)

    # ------------------------------------------------------------------
    @property
    def tree_(self) -> TreeNode:
        if self._root is None:
            raise ModelError("tree has not been fitted")
        return self._root

    # ------------------------------------------------------------------
    def _fit_discretizer(self, features: np.ndarray) -> np.ndarray:
        if self.discretize_bins <= 0:
            self._bin_edges = None
            return features
        edges: List[Optional[np.ndarray]] = []
        encoded = features.copy()
        for column_index in range(features.shape[1]):
            column = features[:, column_index]
            if np.unique(column).size <= self.discretize_bins:
                edges.append(None)
                continue
            quantiles = np.linspace(0.0, 1.0, self.discretize_bins + 1)[1:-1]
            column_edges = np.unique(np.quantile(column, quantiles))
            edges.append(column_edges)
            encoded[:, column_index] = np.searchsorted(column_edges, column, side="right")
        self._bin_edges = edges
        return encoded

    def _apply_discretizer(self, features: np.ndarray) -> np.ndarray:
        if self._bin_edges is None:
            return features
        encoded = features.copy()
        for column_index, column_edges in enumerate(self._bin_edges):
            if column_edges is None:
                continue
            encoded[:, column_index] = np.searchsorted(
                column_edges, features[:, column_index], side="right"
            )
        return encoded

    # ------------------------------------------------------------------
    def _build(self, features: np.ndarray, labels: np.ndarray, *, depth: int) -> TreeNode:
        positive_rate = float(labels.mean()) if labels.size else 0.0
        node = TreeNode(
            is_leaf=True,
            value=positive_rate,
            num_samples=int(labels.size),
            fallback_value=positive_rate,
        )
        if (
            depth >= self.max_depth
            or labels.size < self.min_samples_split
            or positive_rate in (0.0, 1.0)
        ):
            return node

        best_feature = None
        best_split = None
        for feature_index in range(features.shape[1]):
            split = best_categorical_split(
                features[:, feature_index],
                labels,
                criterion=self.criterion,
                min_leaf=self.min_samples_leaf,
            )
            if split is None:
                continue
            if best_split is None or split.score > best_split.score:
                best_split = split
                best_feature = feature_index
        if best_split is None or best_feature is None:
            return node

        node.is_leaf = False
        node.feature_index = best_feature
        node.threshold = None
        for category in best_split.categories:
            mask = features[:, best_feature] == category
            child = self._build(features[mask], labels[mask], depth=depth + 1)
            node.children[float(category)] = child
        return node
