"""Decision-tree node structure and traversal."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.exceptions import ModelError


@dataclass
class TreeNode:
    """One node of a decision tree.

    A node is either

    * a **leaf** (``is_leaf`` is True): ``value`` is the prediction (class
      probability for classification trees, regression value for CART),
    * a **numeric split**: ``feature_index`` and ``threshold`` are set and
      ``left`` / ``right`` are the ``<= threshold`` / ``> threshold`` children,
    * a **categorical split** (ID3 / C4.5 multiway): ``feature_index`` is set
      and ``children`` maps each category value to a child node.
    """

    is_leaf: bool = True
    value: float = 0.0
    num_samples: int = 0
    feature_index: Optional[int] = None
    threshold: Optional[float] = None
    left: Optional["TreeNode"] = None
    right: Optional["TreeNode"] = None
    children: Dict[float, "TreeNode"] = field(default_factory=dict)
    #: For histogram-built trees: last bin index routed left (``bin <=
    #: bin_threshold`` mirrors ``value <= threshold`` on the raw feature), so
    #: the boosting loop can traverse pre-binned matrices without touching
    #: the float features.
    bin_threshold: Optional[int] = None
    #: Majority/fallback prediction used when a categorical value was never
    #: seen during training.
    fallback_value: float = 0.0

    # ------------------------------------------------------------------
    def predict_row(self, row: np.ndarray) -> float:
        """Route one feature row to a leaf and return its value."""
        node = self
        while not node.is_leaf:
            if node.feature_index is None:
                raise ModelError("internal node without a feature index")
            feature_value = row[node.feature_index]
            if node.threshold is not None:
                node = node.left if feature_value <= node.threshold else node.right
                if node is None:
                    raise ModelError("numeric split node with a missing child")
            else:
                child = node.children.get(float(feature_value))
                if child is None:
                    return node.fallback_value
                node = child
        return node.value

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Vector of leaf values for a feature matrix."""
        features = np.asarray(features, dtype=np.float64)
        return np.array([self.predict_row(row) for row in features])

    # ------------------------------------------------------------------
    def depth(self) -> int:
        """Depth of the subtree rooted at this node (a leaf has depth 0)."""
        if self.is_leaf:
            return 0
        children = list(self.children.values())
        if self.left is not None:
            children.append(self.left)
        if self.right is not None:
            children.append(self.right)
        return 1 + max((child.depth() for child in children), default=0)

    def count_leaves(self) -> int:
        if self.is_leaf:
            return 1
        total = 0
        for child in self.iter_children():
            total += child.count_leaves()
        return total

    def count_nodes(self) -> int:
        return 1 + sum(child.count_nodes() for child in self.iter_children())

    def iter_children(self) -> Iterator["TreeNode"]:
        if self.left is not None:
            yield self.left
        if self.right is not None:
            yield self.right
        yield from self.children.values()

    # ------------------------------------------------------------------
    def describe(self, feature_names: Optional[List[str]] = None, *, indent: int = 0) -> str:
        """Human-readable rendering of the subtree (used by rule extraction demos)."""
        pad = "  " * indent
        if self.is_leaf:
            return f"{pad}leaf value={self.value:.4f} samples={self.num_samples}"
        name = (
            feature_names[self.feature_index]
            if feature_names is not None and self.feature_index is not None
            else f"f{self.feature_index}"
        )
        lines = []
        if self.threshold is not None:
            lines.append(f"{pad}if {name} <= {self.threshold:.4f}:")
            if self.left is not None:
                lines.append(self.left.describe(feature_names, indent=indent + 1))
            lines.append(f"{pad}else:")
            if self.right is not None:
                lines.append(self.right.describe(feature_names, indent=indent + 1))
        else:
            for category, child in sorted(self.children.items()):
                lines.append(f"{pad}if {name} == {category:g}:")
                lines.append(child.describe(feature_names, indent=indent + 1))
        return "\n".join(lines)
