"""Impurity criteria and best-split search.

Implements the classical measures the paper's rule-based methods rely on:
entropy and information gain for ID3, gain ratio (C4.5/C5.0's improvement,
which the paper credits for C5.0's better "data discretization and
segmentation"), Gini impurity, and variance reduction for the regression trees
inside GBDT.  The numeric split search is vectorised with prefix sums so that
fitting hundreds of boosted trees stays fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ModelError

_EPS = 1e-12


def entropy(labels: np.ndarray) -> float:
    """Shannon entropy (base 2) of a binary or categorical label vector."""
    labels = np.asarray(labels)
    if labels.size == 0:
        return 0.0
    _, counts = np.unique(labels, return_counts=True)
    probabilities = counts / counts.sum()
    value = float(-np.sum(probabilities * np.log2(probabilities + _EPS)))
    return max(value, 0.0)


def gini_impurity(labels: np.ndarray) -> float:
    """Gini impurity of a label vector."""
    labels = np.asarray(labels)
    if labels.size == 0:
        return 0.0
    _, counts = np.unique(labels, return_counts=True)
    probabilities = counts / counts.sum()
    return float(1.0 - np.sum(probabilities**2))


def information_gain(labels: np.ndarray, partitions: list[np.ndarray]) -> float:
    """Information gain of splitting ``labels`` into ``partitions``."""
    total = sum(part.size for part in partitions)
    if total == 0:
        return 0.0
    if total != np.asarray(labels).size:
        raise ModelError("partitions must cover exactly the parent labels")
    parent = entropy(labels)
    children = sum((part.size / total) * entropy(part) for part in partitions)
    return float(parent - children)


def split_information(partitions: list[np.ndarray]) -> float:
    """Split information (intrinsic value) term of the gain ratio."""
    total = sum(part.size for part in partitions)
    if total == 0:
        return 0.0
    value = 0.0
    for part in partitions:
        if part.size == 0:
            continue
        fraction = part.size / total
        value -= fraction * np.log2(fraction + _EPS)
    return float(value)


def gain_ratio(labels: np.ndarray, partitions: list[np.ndarray]) -> float:
    """C4.5's gain ratio: information gain normalised by split information."""
    gain = information_gain(labels, partitions)
    split_info = split_information(partitions)
    if split_info <= _EPS:
        return 0.0
    return float(gain / split_info)


# ---------------------------------------------------------------------------
# Vectorised split search
# ---------------------------------------------------------------------------


@dataclass
class NumericSplit:
    """Best binary split of one numeric feature."""

    threshold: float
    score: float
    left_count: int
    right_count: int


def _binary_entropy(positive: np.ndarray, total: np.ndarray) -> np.ndarray:
    """Vectorised binary entropy for ``positive`` successes out of ``total``."""
    total = np.maximum(total, _EPS)
    p = np.clip(positive / total, _EPS, 1.0 - _EPS)
    return -(p * np.log2(p) + (1.0 - p) * np.log2(1.0 - p))


def best_numeric_split(
    values: np.ndarray,
    labels: np.ndarray,
    *,
    criterion: str = "gain",
    min_leaf: int = 1,
) -> Optional[NumericSplit]:
    """Best threshold split ``values <= t`` for binary ``labels``.

    ``criterion`` is ``"gain"`` (information gain) or ``"gain_ratio"``.
    Returns ``None`` when no split satisfies ``min_leaf`` on both sides or the
    feature is constant.
    """
    values = np.asarray(values, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.float64)
    n = values.shape[0]
    if n < 2 * min_leaf:
        return None
    order = np.argsort(values, kind="mergesort")
    sorted_values = values[order]
    sorted_labels = labels[order]

    # Candidate split positions: between consecutive distinct values.
    distinct = np.nonzero(np.diff(sorted_values) > 0)[0]
    if distinct.size == 0:
        return None
    left_counts = distinct + 1
    right_counts = n - left_counts
    valid = (left_counts >= min_leaf) & (right_counts >= min_leaf)
    if not np.any(valid):
        return None

    positives = np.cumsum(sorted_labels)
    left_positives = positives[distinct]
    total_positives = positives[-1]
    right_positives = total_positives - left_positives

    parent_entropy = _binary_entropy(np.array([total_positives]), np.array([float(n)]))[0]
    left_entropy = _binary_entropy(left_positives, left_counts.astype(np.float64))
    right_entropy = _binary_entropy(right_positives, right_counts.astype(np.float64))
    weighted = (left_counts / n) * left_entropy + (right_counts / n) * right_entropy
    gains = parent_entropy - weighted

    if criterion == "gain_ratio":
        fractions = left_counts / n
        split_info = -(
            fractions * np.log2(fractions + _EPS)
            + (1.0 - fractions) * np.log2(1.0 - fractions + _EPS)
        )
        scores = np.where(split_info > _EPS, gains / split_info, 0.0)
    elif criterion == "gain":
        scores = gains
    else:
        raise ModelError(f"unknown criterion {criterion!r}")

    scores = np.where(valid, scores, -np.inf)
    best = int(np.argmax(scores))
    if not np.isfinite(scores[best]) or scores[best] <= 0.0:
        return None
    position = distinct[best]
    threshold = 0.5 * (sorted_values[position] + sorted_values[position + 1])
    return NumericSplit(
        threshold=float(threshold),
        score=float(scores[best]),
        left_count=int(left_counts[best]),
        right_count=int(right_counts[best]),
    )


@dataclass
class CategoricalSplit:
    """Multiway split of one categorical (discretised) feature."""

    categories: np.ndarray
    score: float


def best_categorical_split(
    values: np.ndarray,
    labels: np.ndarray,
    *,
    criterion: str = "gain",
    min_leaf: int = 1,
) -> Optional[CategoricalSplit]:
    """Score the multiway split of a categorical feature (ID3/C4.5 style)."""
    values = np.asarray(values)
    labels = np.asarray(labels)
    categories = np.unique(values)
    if categories.size < 2:
        return None
    partitions = [labels[values == category] for category in categories]
    if any(part.size < min_leaf for part in partitions):
        return None
    if criterion == "gain":
        score = information_gain(labels, partitions)
    elif criterion == "gain_ratio":
        score = gain_ratio(labels, partitions)
    else:
        raise ModelError(f"unknown criterion {criterion!r}")
    if score <= 0.0:
        return None
    return CategoricalSplit(categories=categories, score=float(score))


@dataclass
class RegressionSplit:
    """Best variance-reducing split for a regression target."""

    threshold: float
    score: float
    left_count: int
    right_count: int


@dataclass
class HistogramSplit:
    """Best bin-boundary split of one node's feature histograms.

    ``feature_slot`` indexes into the histogram's feature axis (the caller
    maps it back to a global column), ``bin_index`` is the last bin routed to
    the left child (``bin <= bin_index`` goes left).  The left/right gradient,
    hessian and count sums are returned so tree builders can derive the child
    totals without rescanning any rows.
    """

    feature_slot: int
    bin_index: int
    score: float
    left_gradient: float
    left_hessian: float
    left_count: int
    right_gradient: float
    right_hessian: float
    right_count: int


def best_histogram_split(
    grad_hist: np.ndarray,
    hess_hist: np.ndarray,
    count_hist: np.ndarray,
    *,
    min_leaf: int = 1,
    reg_lambda: float = 1.0,
) -> Optional[HistogramSplit]:
    """Best bin-boundary split over ``(num_features, num_bins)`` histograms.

    Scans every boundary of every feature with prefix sums and the same
    second-order gain as :func:`best_regression_split`; the boundaries are the
    at most ``num_bins - 1`` bin edges instead of the per-node sorted values,
    which is what makes histogram tree growth independent of the row count.
    Features are scanned in slot order and ties keep the first maximum, so a
    histogram with one bin per distinct value reproduces the exact search.
    """
    grad_hist = np.asarray(grad_hist, dtype=np.float64)
    hess_hist = np.asarray(hess_hist, dtype=np.float64)
    count_hist = np.asarray(count_hist, dtype=np.float64)
    if grad_hist.ndim != 2:
        raise ModelError("histogram arrays must be 2-dimensional (features, bins)")
    if grad_hist.shape != hess_hist.shape or grad_hist.shape != count_hist.shape:
        raise ModelError("histogram arrays must share one (features, bins) shape")
    num_bins = grad_hist.shape[1]
    if num_bins < 2:
        return None

    # Left sums for a split "bin <= b", b in [0, num_bins - 2].
    left_gradient = np.cumsum(grad_hist, axis=1)[:, :-1]
    left_hessian = np.cumsum(hess_hist, axis=1)[:, :-1]
    left_count = np.cumsum(count_hist, axis=1)[:, :-1]
    total_gradient = left_gradient[:, -1] + grad_hist[:, -1]
    total_hessian = left_hessian[:, -1] + hess_hist[:, -1]
    total_count = left_count[:, -1] + count_hist[:, -1]
    right_gradient = total_gradient[:, None] - left_gradient
    right_hessian = total_hessian[:, None] - left_hessian
    right_count = total_count[:, None] - left_count

    valid = (left_count >= min_leaf) & (right_count >= min_leaf)
    if not np.any(valid):
        return None
    parent_score = total_gradient**2 / (total_hessian + reg_lambda)
    gains = (
        left_gradient**2 / (left_hessian + reg_lambda)
        + right_gradient**2 / (right_hessian + reg_lambda)
        - parent_score[:, None]
    )
    gains = np.where(valid, gains, -np.inf)
    best = int(np.argmax(gains))
    feature_slot, bin_index = divmod(best, num_bins - 1)
    if not np.isfinite(gains[feature_slot, bin_index]) or gains[feature_slot, bin_index] <= 1e-12:
        return None
    return HistogramSplit(
        feature_slot=feature_slot,
        bin_index=bin_index,
        score=float(gains[feature_slot, bin_index]),
        left_gradient=float(left_gradient[feature_slot, bin_index]),
        left_hessian=float(left_hessian[feature_slot, bin_index]),
        left_count=int(left_count[feature_slot, bin_index]),
        right_gradient=float(right_gradient[feature_slot, bin_index]),
        right_hessian=float(right_hessian[feature_slot, bin_index]),
        right_count=int(right_count[feature_slot, bin_index]),
    )


def best_regression_split(
    values: np.ndarray,
    targets: np.ndarray,
    *,
    hessians: Optional[np.ndarray] = None,
    min_leaf: int = 1,
    reg_lambda: float = 1.0,
) -> Optional[RegressionSplit]:
    """Best threshold split maximising the boosting gain.

    Uses the standard second-order gain
    ``G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)`` where gradients are ``targets``
    and ``hessians`` default to 1 (plain variance reduction).
    """
    values = np.asarray(values, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    n = values.shape[0]
    if n < 2 * min_leaf:
        return None
    if hessians is None:
        hessians = np.ones_like(targets)
    order = np.argsort(values, kind="mergesort")
    sorted_values = values[order]
    sorted_targets = targets[order]
    sorted_hessians = hessians[order]

    distinct = np.nonzero(np.diff(sorted_values) > 0)[0]
    if distinct.size == 0:
        return None
    left_counts = distinct + 1
    right_counts = n - left_counts
    valid = (left_counts >= min_leaf) & (right_counts >= min_leaf)
    if not np.any(valid):
        return None

    gradient_prefix = np.cumsum(sorted_targets)
    hessian_prefix = np.cumsum(sorted_hessians)
    total_gradient = gradient_prefix[-1]
    total_hessian = hessian_prefix[-1]

    left_gradient = gradient_prefix[distinct]
    left_hessian = hessian_prefix[distinct]
    right_gradient = total_gradient - left_gradient
    right_hessian = total_hessian - left_hessian

    parent_score = total_gradient**2 / (total_hessian + reg_lambda)
    gains = (
        left_gradient**2 / (left_hessian + reg_lambda)
        + right_gradient**2 / (right_hessian + reg_lambda)
        - parent_score
    )
    gains = np.where(valid, gains, -np.inf)
    best = int(np.argmax(gains))
    if not np.isfinite(gains[best]) or gains[best] <= 1e-12:
        return None
    position = distinct[best]
    threshold = 0.5 * (sorted_values[position] + sorted_values[position + 1])
    return RegressionSplit(
        threshold=float(threshold),
        score=float(gains[best]),
        left_count=int(left_counts[best]),
        right_count=int(right_counts[best]),
    )
