"""Network representation learning (NRL).

The paper learns low-dimensional user node embeddings from the transaction
network and concatenates them with the basic features.  Two methods are
evaluated:

* **DeepWalk** (unsupervised): truncated random walks + skip-gram with
  negative sampling (word2vec).  Selected by the paper for its efficiency,
  effectiveness and simplicity, and unaffected by label imbalance.
* **Structure2Vec** (supervised): mean-field style neighbourhood aggregation
  trained with the fraud ground truth, which benefits from labels but also
  suffers from their imbalance.

Both are reimplemented from scratch on NumPy; the distributed (parameter
server) training drivers live in :mod:`repro.nrl.distributed` and run on the
KunPeng simulation.
"""

from repro.nrl.embeddings import EmbeddingSet, top1_neighbor_recall
from repro.nrl.word2vec import SkipGramConfig, SkipGramTrainer, Vocabulary, build_vocabulary
from repro.nrl.deepwalk import DeepWalk, DeepWalkConfig
from repro.nrl.structure2vec import Structure2Vec, Structure2VecConfig
from repro.nrl.base import NRLModel

__all__ = [
    "EmbeddingSet",
    "top1_neighbor_recall",
    "SkipGramConfig",
    "SkipGramTrainer",
    "Vocabulary",
    "build_vocabulary",
    "DeepWalk",
    "DeepWalkConfig",
    "Structure2Vec",
    "Structure2VecConfig",
    "NRLModel",
]
