"""Common interface of network representation learning models."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence

from repro.graph.network import TransactionNetwork
from repro.nrl.embeddings import EmbeddingSet


class NRLModel(ABC):
    """A model that maps every node of a transaction network to a vector.

    The contract mirrors the paper's offline NRL step: ``fit`` consumes the
    transaction network built from historical records (and, for supervised
    models, node labels), and :meth:`embeddings` returns the learned
    :class:`~repro.nrl.embeddings.EmbeddingSet` that is uploaded to Ali-HBase.
    """

    @abstractmethod
    def fit(
        self,
        network: TransactionNetwork,
        *,
        node_labels: Optional[dict[str, int]] = None,
    ) -> "NRLModel":
        """Learn embeddings for every node of ``network``."""

    @abstractmethod
    def embeddings(self) -> EmbeddingSet:
        """Return the learned embeddings (raises if :meth:`fit` was not called)."""

    @property
    @abstractmethod
    def dimension(self) -> int:
        """Dimensionality of the learned embeddings."""

    def embed_nodes(self, nodes: Sequence[str]) -> "EmbeddingSet":
        """Restrict the learned embeddings to ``nodes`` (missing ids get zeros)."""
        full = self.embeddings()
        return full.subset(nodes)
