"""DeepWalk on the transaction network.

DeepWalk first transforms the topology of the transaction network into linear
node sequences with truncated random walks, then learns node embeddings by
running skip-gram with negative sampling over those sequences.  The paper
selects it "for its efficiency, effectiveness and simplicity" and because it
needs no labels — the topological information is extracted without being
influenced by the extreme label imbalance.

The paper's production configuration: walk length 50, number of samplings 100
(each node starts 100 walks), embedding dimension 32.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.exceptions import EmbeddingError
from repro.graph.network import TransactionNetwork
from repro.graph.random_walk import RandomWalkConfig, RandomWalker
from repro.nrl.base import NRLModel
from repro.nrl.embeddings import EmbeddingSet
from repro.nrl.word2vec import SkipGramConfig, SkipGramTrainer
from repro.rng import SeedLike, ensure_rng, spawn_child


@dataclass
class DeepWalkConfig:
    """Configuration of DeepWalk (walk generation + skip-gram)."""

    walk: RandomWalkConfig = field(default_factory=RandomWalkConfig)
    skipgram: SkipGramConfig = field(default_factory=SkipGramConfig)
    seed: Optional[int] = None

    @classmethod
    def paper_defaults(cls, *, dimension: int = 32, num_walks_per_node: int = 100) -> "DeepWalkConfig":
        """The hyperparameters reported in Section 5.1 of the paper."""
        return cls(
            walk=RandomWalkConfig(walk_length=50, num_walks_per_node=num_walks_per_node),
            skipgram=SkipGramConfig(dimension=dimension),
        )

    @classmethod
    def fast(cls, *, dimension: int = 32, seed: Optional[int] = None) -> "DeepWalkConfig":
        """A reduced configuration for tests and laptop-scale benchmarks."""
        return cls(
            walk=RandomWalkConfig(walk_length=20, num_walks_per_node=8),
            skipgram=SkipGramConfig(dimension=dimension, epochs=1, window=4),
            seed=seed,
        )

    def validate(self) -> None:
        self.walk.validate()
        self.skipgram.validate()


class DeepWalk(NRLModel):
    """Unsupervised node-embedding model (random walks + skip-gram)."""

    def __init__(self, config: DeepWalkConfig | None = None, *, rng: SeedLike = None):
        self.config = config or DeepWalkConfig()
        self.config.validate()
        self._rng = ensure_rng(self.config.seed if rng is None else rng)
        self._embeddings: Optional[EmbeddingSet] = None
        self._trainer: Optional[SkipGramTrainer] = None

    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        return self.config.skipgram.dimension

    def fit(
        self,
        network: TransactionNetwork,
        *,
        node_labels: Optional[dict[str, int]] = None,
    ) -> "DeepWalk":
        """Learn embeddings for every node of ``network``.

        ``node_labels`` is accepted for interface compatibility but unused —
        DeepWalk is unsupervised by design.
        """
        if network.num_nodes == 0:
            raise EmbeddingError("cannot fit DeepWalk on an empty network")
        walker = RandomWalker(network, self.config.walk, rng=spawn_child(self._rng, salt=11))
        corpus = walker.generate()
        trainer = SkipGramTrainer(self.config.skipgram, rng=spawn_child(self._rng, salt=13))
        embeddings = trainer.fit(corpus)
        # Nodes that never appeared in a walk (isolated nodes) get zero vectors
        # so that downstream feature assembly always finds a row.
        self._embeddings = embeddings.subset(network.nodes())
        self._embeddings.name = "deepwalk"
        self._trainer = trainer
        return self

    def embeddings(self) -> EmbeddingSet:
        if self._embeddings is None:
            raise EmbeddingError("DeepWalk has not been fitted")
        return self._embeddings

    @property
    def final_loss(self) -> float:
        """Mean skip-gram loss over the last few batches (training diagnostic)."""
        if self._trainer is None or not self._trainer.loss_history:
            raise EmbeddingError("DeepWalk has not been fitted")
        tail = self._trainer.loss_history[-10:]
        return float(sum(tail) / len(tail))
