"""Distributed DeepWalk on the KunPeng parameter server.

The paper reimplements word2vec on KunPeng because no public NRL
implementation scales to industrial transaction networks.  The division of
labour (Section 4.3):

* worker nodes receive the node sequences from random walks; every iteration
  each worker reads a batch of sequences, generates negative samples, pulls
  the embeddings referenced by the batch from the servers, applies gradient
  descent and pushes the row-sparse updates back,
* server nodes store row-range shards of the embedding matrices, answer pull
  requests and apply the workers' updates.

:class:`DistributedDeepWalk` reproduces that loop on the simulated
:class:`~repro.kunpeng.cluster.KunPengCluster` in two modes:

* ``mode="sparse"`` (default) — the paper's pull/compute/push cycle.  Walks
  are *streamed* in batches from the vectorised walk engine (the corpus is
  never materialised), encoded into skip-gram pair streams, and every round
  each worker pulls only the rows its minibatch touches (centers for ``w_in``,
  contexts ∪ negatives for ``w_out``), computes sparse gradients and pushes
  them back to the owning shards.
* ``mode="dense"`` — the old model-average baseline: every round each worker
  pulls both full matrices, applies local SGD and the servers average the
  replicas.  Kept for A/B comparison of communication volume and quality in
  ``bench_fig10_scalability.py``.

Both modes honour worker failure injection with automatic recovery and record
per-round communication, which the cost model converts into Figure 10's
timings.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.exceptions import EmbeddingError
from repro.graph.network import TransactionNetwork
from repro.graph.random_walk import RandomWalkConfig, RandomWalker
from repro.kunpeng.cluster import ClusterConfig, KunPengCluster
from repro.kunpeng.cost_model import ClusterCostModel, TrainingTimeEstimate
from repro.kunpeng.failover import FailureInjector
from repro.kunpeng.worker import WorkerNode
from repro.logging_utils import get_logger
from repro.nrl.base import NRLModel
from repro.nrl.embeddings import EmbeddingSet
from repro.nrl.word2vec import (
    SkipGramConfig,
    SparseBatch,
    Vocabulary,
    build_negative_table,
    encode_walk_batch,
    generate_skipgram_pairs,
    generate_skipgram_pairs_batch,
    sgns_batch_update,
    sgns_sparse_step,
)
from repro.rng import SeedLike, ensure_rng, spawn_child

logger = get_logger("nrl.distributed")

TRAINING_MODES = ("sparse", "dense")


@dataclass
class DistributedDeepWalkConfig:
    """Configuration of the PS-distributed DeepWalk run."""

    cluster: ClusterConfig = field(default_factory=lambda: ClusterConfig(num_machines=4))
    walk: RandomWalkConfig = field(default_factory=RandomWalkConfig)
    skipgram: SkipGramConfig = field(default_factory=SkipGramConfig)
    #: ``"sparse"`` = pull/compute/push on referenced rows only (the paper's
    #: design); ``"dense"`` = full-matrix pulls + model averaging (baseline).
    mode: str = "sparse"
    #: Synchronous rounds per epoch; each round every worker processes one
    #: minibatch of ``skipgram.batch_size`` pairs, in both modes.
    rounds_per_epoch: int = 5
    #: Probability that a worker crashes before a round (fault-tolerance tests).
    failure_probability: float = 0.0
    #: PS backend: ``"inline"`` (in-process simulation) or ``"process"``
    #: (real shard processes over shared memory); results are equivalent.
    backend: str = "inline"
    seed: Optional[int] = None

    def validate(self) -> None:
        self.cluster.validate()
        self.walk.validate()
        self.skipgram.validate()
        if self.mode not in TRAINING_MODES:
            raise EmbeddingError(f"mode must be one of {TRAINING_MODES}, got {self.mode!r}")
        if self.rounds_per_epoch < 1:
            raise EmbeddingError("rounds_per_epoch must be at least 1")


class _PairBuffer:
    """FIFO of (center, context) chunks feeding one worker's minibatches.

    Chunks are consumed through a read offset so a take() only copies the
    pairs it hands out, never the (much larger) remaining stream.
    """

    def __init__(self) -> None:
        self._chunks: deque[Tuple[np.ndarray, np.ndarray]] = deque()
        self._offset = 0  # consumed prefix of the leftmost chunk
        self.size = 0

    def add(self, centers: np.ndarray, contexts: np.ndarray) -> None:
        self._chunks.append((centers, contexts))
        self.size += centers.shape[0]

    def take(self, count: int) -> Tuple[np.ndarray, np.ndarray]:
        """Pop up to ``count`` pairs in stream order."""
        taken_c: List[np.ndarray] = []
        taken_x: List[np.ndarray] = []
        remaining = count
        while remaining > 0 and self._chunks:
            centers, contexts = self._chunks[0]
            step = min(centers.shape[0] - self._offset, remaining)
            taken_c.append(centers[self._offset : self._offset + step])
            taken_x.append(contexts[self._offset : self._offset + step])
            self._offset += step
            remaining -= step
            self.size -= step
            if self._offset == centers.shape[0]:
                self._chunks.popleft()
                self._offset = 0
        if not taken_c:
            return np.empty(0, np.int64), np.empty(0, np.int64)
        return np.concatenate(taken_c), np.concatenate(taken_x)


class DistributedDeepWalk(NRLModel):
    """DeepWalk trained with data parallelism on the KunPeng cluster."""

    def __init__(self, config: DistributedDeepWalkConfig | None = None, *, rng: SeedLike = None):
        self.config = config or DistributedDeepWalkConfig()
        self.config.validate()
        self._rng = ensure_rng(self.config.seed if rng is None else rng)
        self.cluster = KunPengCluster(self.config.cluster, backend=self.config.backend)
        self.failure_injector = FailureInjector(
            self.cluster,
            failure_probability=self.config.failure_probability,
            rng=spawn_child(self._rng, salt=41),
        )
        self._embeddings: Optional[EmbeddingSet] = None
        self.rounds_completed = 0
        self.loss_history: List[float] = []
        #: Integer seed of the walk stream; fixed at :meth:`fit` time so the
        #: corpus can be replayed (tests, dense/sparse A/B on equal data).
        self.walk_seed: Optional[int] = None
        self.vocabulary_: Optional[Vocabulary] = None
        self._walker: Optional[RandomWalker] = None

    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        """Embedding dimensionality of the trained vectors."""
        return self.config.skipgram.dimension

    @property
    def mode(self) -> str:
        """Training loop variant: "sparse" pull/push or the "dense" baseline."""
        return self.config.mode

    def _replay_walker(self) -> RandomWalker:
        """A fresh walker over the run's fixed walk stream (shared CSR arrays)."""
        assert self._walker is not None and self.walk_seed is not None
        return self._walker.reseeded(ensure_rng(self.walk_seed))

    # ------------------------------------------------------------------
    def fit(
        self,
        network: TransactionNetwork,
        *,
        node_labels: Optional[dict[str, int]] = None,
    ) -> "DistributedDeepWalk":
        """Train node embeddings for the network on the KunPeng cluster."""
        if network.num_nodes == 0:
            raise EmbeddingError("cannot fit DistributedDeepWalk on an empty network")
        cfg = self.config
        self.walk_seed = int(spawn_child(self._rng, salt=11).integers(0, 2**63 - 1))
        self._walker = RandomWalker(network, cfg.walk, rng=ensure_rng(self.walk_seed))

        # 1. Stream the walk corpus once to build the vocabulary; the
        #    configured min_count pruning applies exactly as in the
        #    single-machine SkipGramTrainer path.  Dense mode materialises the
        #    corpus anyway, so its batches are generated once and shared.
        walk_batches: Optional[List[np.ndarray]] = None
        if cfg.mode == "dense":
            walk_batches = list(self._replay_walker().iter_walk_batches())
        vocabulary, node_to_token = self._build_vocabulary(network, walk_batches)
        self.vocabulary_ = vocabulary
        table = build_negative_table(vocabulary.counts(), cfg.skipgram.negative_table_size)

        # 2. Initialise the embedding matrices, sharded row-wise on the servers.
        dimension = cfg.skipgram.dimension
        init_rng = spawn_child(self._rng, salt=13)
        w_in = (init_rng.random((len(vocabulary), dimension)) - 0.5) / dimension
        w_out = np.zeros((len(vocabulary), dimension))
        self.cluster.create_parameter("w_in", w_in)
        self.cluster.create_parameter("w_out", w_out)

        # 3. Train.
        pair_rng = spawn_child(self._rng, salt=17)
        if cfg.mode == "sparse":
            self._fit_sparse(network, node_to_token, table, pair_rng)
        else:
            assert walk_batches is not None
            self._fit_dense(walk_batches, node_to_token, table, pair_rng)

        final = self.cluster.pull_matrix("w_in")
        embeddings = EmbeddingSet(vocabulary.tokens(), final, name="deepwalk_distributed")
        self._embeddings = embeddings.subset(network.nodes())
        self._embeddings.name = "deepwalk_distributed"
        return self

    # ------------------------------------------------------------------
    def _build_vocabulary(
        self,
        network: TransactionNetwork,
        walk_batches: Optional[List[np.ndarray]] = None,
    ) -> Tuple[Vocabulary, np.ndarray]:
        """Count walk tokens in one streaming pass and prune by min_count.

        Returns the vocabulary plus the ``node index -> vocabulary index`` map
        used to encode walk batches (``-1`` marks pruned nodes).  When the
        caller already materialised the walk batches (dense mode) they are
        counted directly instead of regenerating the stream.
        """
        counts = np.zeros(network.num_nodes, dtype=np.int64)
        batches = (
            walk_batches
            if walk_batches is not None
            else self._replay_walker().iter_walk_batches()
        )
        for batch in batches:
            flat = batch[batch >= 0]
            counts += np.bincount(flat, minlength=network.num_nodes)
        kept = np.flatnonzero(counts >= self.config.skipgram.min_count)
        if kept.size == 0:
            raise EmbeddingError("corpus produced an empty vocabulary")
        vocabulary = Vocabulary()
        for index in kept:
            vocabulary.add(network.node_at(int(index)), int(counts[index]))
        node_to_token = np.full(network.num_nodes, -1, dtype=np.int64)
        node_to_token[kept] = np.arange(kept.size)
        return vocabulary, node_to_token

    def _pair_stream(self, node_to_token: np.ndarray) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Endless stream of encoded (centers, contexts) chunks.

        Cycles over the fixed walk stream (same corpus every epoch, like the
        materialised dense path) without ever holding more than one walk batch.
        Pairs are shuffled within each chunk: the batched pair generator groups
        pairs by window offset, which would otherwise feed minibatches long
        runs of identical-offset, same-neighbourhood pairs.
        """
        window = self.config.skipgram.window
        shuffle_rng = spawn_child(self._rng, salt=19)
        while True:
            produced = False
            for batch in self._replay_walker().iter_walk_batches():
                encoded = encode_walk_batch(batch, node_to_token)
                centers, contexts = generate_skipgram_pairs_batch(encoded, window)
                if centers.size:
                    produced = True
                    order = shuffle_rng.permutation(centers.shape[0])
                    yield centers[order], contexts[order]
            if not produced:
                raise EmbeddingError("corpus produced no skip-gram pairs")

    def _learning_rate(self, round_index: int, total_rounds: int) -> float:
        cfg = self.config.skipgram
        progress = round_index / max(total_rounds, 1)
        return max(cfg.min_learning_rate, cfg.learning_rate * (1.0 - progress))

    # ------------------------------------------------------------------
    def _fit_sparse(
        self,
        network: TransactionNetwork,
        node_to_token: np.ndarray,
        negative_table: np.ndarray,
        pair_rng: np.random.Generator,
    ) -> None:
        """The paper's loop: stream pairs, pull referenced rows, push updates."""
        cfg = self.config
        batch_size = cfg.skipgram.batch_size
        stream = self._pair_stream(node_to_token)
        buffers = [_PairBuffer() for _ in self.cluster.workers]
        total_rounds = cfg.skipgram.epochs * cfg.rounds_per_epoch
        self.cluster.scatter_data(
            [network.num_nodes * cfg.walk.num_walks_per_node // len(self.cluster.workers)]
            * len(self.cluster.workers)
        )

        for round_index in range(total_rounds):
            self.failure_injector.maybe_fail(round_index)
            self.failure_injector.heal()
            learning_rate = self._learning_rate(round_index, total_rounds)
            self.cluster.begin_round()
            for worker, buffer in zip(self.cluster.workers, buffers):
                while buffer.size < batch_size:
                    centers, contexts = next(stream)
                    buffer.add(centers, contexts)
                centers, contexts = buffer.take(batch_size)
                negatives = negative_table[
                    pair_rng.integers(
                        0, negative_table.shape[0], size=(centers.shape[0], cfg.skipgram.negatives)
                    )
                ]
                loss = self._sparse_worker_step(
                    worker, centers, contexts, negatives, learning_rate
                )
                self.loss_history.append(loss)
            self.cluster.end_round()
            self.rounds_completed += 1

    def _sparse_worker_step(
        self,
        worker: WorkerNode,
        centers: np.ndarray,
        contexts: np.ndarray,
        negatives: np.ndarray,
        learning_rate: float,
    ) -> float:
        """One pull/compute/push cycle for one worker's minibatch."""
        batch = SparseBatch.from_pairs(centers, contexts, negatives)

        def _step(_worker: WorkerNode) -> float:
            v_in = self.cluster.pull_row_block("w_in", batch.rows_in)
            v_out = self.cluster.pull_row_block("w_out", batch.rows_out)
            grad_in, grad_out, loss = sgns_sparse_step(v_in, v_out, batch)
            self.cluster.push_row_block(
                "w_in", batch.rows_in, grad_in, learning_rate=learning_rate
            )
            self.cluster.push_row_block(
                "w_out", batch.rows_out, grad_out, learning_rate=learning_rate
            )
            return loss

        return worker.run(_step, compute_units=float(centers.shape[0]))

    # ------------------------------------------------------------------
    def _fit_dense(
        self,
        walk_batches: List[np.ndarray],
        node_to_token: np.ndarray,
        negative_table: np.ndarray,
        pair_rng: np.random.Generator,
    ) -> None:
        """Model-average baseline: full-matrix pulls, local SGD, averaging."""
        cfg = self.config
        # Encode straight from the index batches (same mapping the sparse
        # stream uses), round-robin the walks across workers like split_corpus.
        encoded_walks: List[np.ndarray] = []
        for batch in walk_batches:
            encoded = encode_walk_batch(batch, node_to_token)
            encoded_walks.extend(row[row >= 0] for row in encoded)
        num_workers = len(self.cluster.workers)
        worker_pairs: List[Tuple[np.ndarray, np.ndarray]] = [
            generate_skipgram_pairs(encoded_walks[start::num_workers], cfg.skipgram.window)
            for start in range(num_workers)
        ]
        self.cluster.scatter_data([p[0].shape[0] for p in worker_pairs])

        total_rounds = cfg.skipgram.epochs * cfg.rounds_per_epoch
        for round_index in range(total_rounds):
            self.failure_injector.maybe_fail(round_index)
            self.failure_injector.heal()
            learning_rate = self._learning_rate(round_index, total_rounds)
            self.cluster.begin_round()
            replicas_in: List[np.ndarray] = []
            replicas_out: List[np.ndarray] = []
            for worker, (centers, contexts) in zip(self.cluster.workers, worker_pairs):
                if centers.size == 0:
                    continue
                local_in = self.cluster.pull_matrix("w_in")
                local_out = self.cluster.pull_matrix("w_out")
                self._dense_worker_round(
                    worker,
                    centers,
                    contexts,
                    local_in,
                    local_out,
                    negative_table,
                    learning_rate,
                    pair_rng,
                )
                replicas_in.append(local_in)
                replicas_out.append(local_out)
            if replicas_in:
                self.cluster.push_model_average("w_in", replicas_in)
                self.cluster.push_model_average("w_out", replicas_out)
            self.cluster.end_round()
            self.rounds_completed += 1

    def _dense_worker_round(
        self,
        worker: WorkerNode,
        centers: np.ndarray,
        contexts: np.ndarray,
        local_in: np.ndarray,
        local_out: np.ndarray,
        negative_table: np.ndarray,
        learning_rate: float,
        rng: np.random.Generator,
    ) -> None:
        """One worker's local pass over (a sample of) its pair partition."""
        cfg = self.config.skipgram

        def _step(_worker: WorkerNode) -> float:
            batch_size = min(cfg.batch_size, centers.shape[0])
            batch = rng.choice(centers.shape[0], size=batch_size, replace=False)
            negatives = negative_table[
                rng.integers(0, negative_table.shape[0], size=(batch_size, cfg.negatives))
            ]
            return sgns_batch_update(
                local_in, local_out, centers[batch], contexts[batch], negatives, learning_rate
            )

        loss = worker.run(
            _step, compute_units=float(min(cfg.batch_size, centers.shape[0]))
        )
        self.loss_history.append(loss)

    # ------------------------------------------------------------------
    def embeddings(self) -> EmbeddingSet:
        """The trained embedding set (raises before :meth:`fit`)."""
        if self._embeddings is None:
            raise EmbeddingError("DistributedDeepWalk has not been fitted")
        return self._embeddings

    def close(self) -> None:
        """Release the cluster backend (shard processes, shared memory)."""
        self.cluster.close()

    def workload_summary(self) -> Dict[str, float]:
        """Compute/communication totals of the finished run (cost-model input)."""
        return self.cluster.workload_summary()

    def estimate_time(self, cost_model: ClusterCostModel | None = None) -> TrainingTimeEstimate:
        """Convert the recorded workload into an estimated wall-clock time.

        Uses the actual per-round transferred row counts recorded by the
        cluster (excluding out-of-round traffic such as the final checkpoint
        download), so dense and sparse runs are costed by what they really
        moved.
        """
        summary = self.workload_summary()
        model = cost_model or ClusterCostModel()
        if summary["rounds_recorded"] > 0:
            per_round = summary["values_per_round"]
        else:
            per_round = summary["values_transferred"] / max(self.rounds_completed, 1)
        return model.estimate(
            total_compute_units=summary["worker_compute_units"],
            comm_values_per_round=per_round,
            num_rounds=max(self.rounds_completed, 1),
            cluster=self.config.cluster,
        )
