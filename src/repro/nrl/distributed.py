"""Distributed DeepWalk on the KunPeng parameter server.

The paper reimplements word2vec on KunPeng because no public NRL
implementation scales to industrial transaction networks.  The division of
labour (Section 4.3):

* worker nodes receive the node sequences from random walks; every iteration
  each worker reads a batch of sequences, generates negative samples, pulls
  the embeddings from the servers, applies gradient descent and uploads the
  updated embeddings,
* server nodes store the embedding matrices, answer pull requests and
  aggregate the workers' updates with a **model average** operation.

:class:`DistributedDeepWalk` reproduces exactly that loop on the simulated
:class:`~repro.kunpeng.cluster.KunPengCluster`, including optional worker
failure injection with automatic recovery, and reports the workload summary
the cost model converts into Figure 10's timings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import EmbeddingError
from repro.graph.network import TransactionNetwork
from repro.graph.random_walk import RandomWalkConfig, RandomWalker, split_corpus
from repro.kunpeng.cluster import ClusterConfig, KunPengCluster
from repro.kunpeng.cost_model import ClusterCostModel, TrainingTimeEstimate
from repro.kunpeng.failover import FailureInjector
from repro.kunpeng.worker import WorkerNode
from repro.logging_utils import get_logger
from repro.nrl.base import NRLModel
from repro.nrl.embeddings import EmbeddingSet
from repro.nrl.word2vec import (
    SkipGramConfig,
    build_negative_table,
    build_vocabulary,
    generate_skipgram_pairs,
    sgns_batch_update,
)
from repro.rng import SeedLike, ensure_rng, spawn_child

logger = get_logger("nrl.distributed")


@dataclass
class DistributedDeepWalkConfig:
    """Configuration of the PS-distributed DeepWalk run."""

    cluster: ClusterConfig = field(default_factory=lambda: ClusterConfig(num_machines=4))
    walk: RandomWalkConfig = field(default_factory=RandomWalkConfig)
    skipgram: SkipGramConfig = field(default_factory=SkipGramConfig)
    #: Synchronous model-average rounds per epoch.
    rounds_per_epoch: int = 5
    #: Probability that a worker crashes before a round (fault-tolerance tests).
    failure_probability: float = 0.0
    seed: Optional[int] = None

    def validate(self) -> None:
        self.cluster.validate()
        self.walk.validate()
        self.skipgram.validate()
        if self.rounds_per_epoch < 1:
            raise EmbeddingError("rounds_per_epoch must be at least 1")


class DistributedDeepWalk(NRLModel):
    """DeepWalk trained with data parallelism + model averaging on KunPeng."""

    def __init__(self, config: DistributedDeepWalkConfig | None = None, *, rng: SeedLike = None):
        self.config = config or DistributedDeepWalkConfig()
        self.config.validate()
        self._rng = ensure_rng(self.config.seed if rng is None else rng)
        self.cluster = KunPengCluster(self.config.cluster)
        self.failure_injector = FailureInjector(
            self.cluster,
            failure_probability=self.config.failure_probability,
            rng=spawn_child(self._rng, salt=41),
        )
        self._embeddings: Optional[EmbeddingSet] = None
        self.rounds_completed = 0

    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        return self.config.skipgram.dimension

    def fit(
        self,
        network: TransactionNetwork,
        *,
        node_labels: Optional[dict[str, int]] = None,
    ) -> "DistributedDeepWalk":
        if network.num_nodes == 0:
            raise EmbeddingError("cannot fit DistributedDeepWalk on an empty network")
        cfg = self.config

        # 1. Random-walk corpus, generated once and partitioned across workers.
        walker = RandomWalker(network, cfg.walk, rng=spawn_child(self._rng, salt=11))
        corpus = walker.generate()
        vocabulary = build_vocabulary(corpus)
        table = build_negative_table(vocabulary.counts(), cfg.skipgram.negative_table_size)

        # 2. Initialise the embedding matrices on the parameter servers.
        dimension = cfg.skipgram.dimension
        init_rng = spawn_child(self._rng, salt=13)
        w_in = (init_rng.random((len(vocabulary), dimension)) - 0.5) / dimension
        w_out = np.zeros((len(vocabulary), dimension))
        self.cluster.create_parameter("w_in", w_in)
        self.cluster.create_parameter("w_out", w_out)

        # 3. Scatter encoded (center, context) pairs across the workers.
        partitions = split_corpus(corpus, len(self.cluster.workers))
        worker_pairs: List[Tuple[np.ndarray, np.ndarray]] = []
        for partition in partitions:
            encoded = [vocabulary.encode(sentence) for sentence in partition]
            worker_pairs.append(generate_skipgram_pairs(encoded, cfg.skipgram.window))
        self.cluster.scatter_data([p[0].shape[0] for p in worker_pairs])

        # 4. Synchronous rounds: local SGD per worker, then model averaging.
        total_rounds = cfg.skipgram.epochs * cfg.rounds_per_epoch
        pair_rng = spawn_child(self._rng, salt=17)
        for round_index in range(total_rounds):
            self.failure_injector.maybe_fail(round_index)
            self.failure_injector.heal()
            replicas_in: List[np.ndarray] = []
            replicas_out: List[np.ndarray] = []
            progress = round_index / max(total_rounds, 1)
            learning_rate = max(
                cfg.skipgram.min_learning_rate, cfg.skipgram.learning_rate * (1.0 - progress)
            )
            for worker, (centers, contexts) in zip(self.cluster.workers, worker_pairs):
                if centers.size == 0:
                    continue
                local_in = self.cluster.pull_matrix("w_in")
                local_out = self.cluster.pull_matrix("w_out")
                self._worker_round(
                    worker,
                    centers,
                    contexts,
                    local_in,
                    local_out,
                    table,
                    learning_rate,
                    pair_rng,
                )
                replicas_in.append(local_in)
                replicas_out.append(local_out)
            if replicas_in:
                self.cluster.push_model_average("w_in", replicas_in)
                self.cluster.push_model_average("w_out", replicas_out)
            self.rounds_completed += 1

        final = self.cluster.pull_matrix("w_in")
        embeddings = EmbeddingSet(vocabulary.tokens(), final, name="deepwalk_distributed")
        self._embeddings = embeddings.subset(network.nodes())
        self._embeddings.name = "deepwalk_distributed"
        return self

    def _worker_round(
        self,
        worker: WorkerNode,
        centers: np.ndarray,
        contexts: np.ndarray,
        local_in: np.ndarray,
        local_out: np.ndarray,
        negative_table: np.ndarray,
        learning_rate: float,
        rng: np.random.Generator,
    ) -> None:
        """One worker's local pass over (a sample of) its pair partition."""
        cfg = self.config.skipgram

        def _step(_worker: WorkerNode) -> None:
            batch_size = min(cfg.batch_size, centers.shape[0])
            batch = rng.choice(centers.shape[0], size=batch_size, replace=False)
            negatives = negative_table[
                rng.integers(0, negative_table.shape[0], size=(batch_size, cfg.negatives))
            ]
            sgns_batch_update(
                local_in, local_out, centers[batch], contexts[batch], negatives, learning_rate
            )

        worker.run(_step, compute_units=float(min(cfg.batch_size, centers.shape[0])))

    # ------------------------------------------------------------------
    def embeddings(self) -> EmbeddingSet:
        if self._embeddings is None:
            raise EmbeddingError("DistributedDeepWalk has not been fitted")
        return self._embeddings

    def workload_summary(self) -> Dict[str, float]:
        """Compute/communication totals of the finished run (cost-model input)."""
        return self.cluster.workload_summary()

    def estimate_time(self, cost_model: ClusterCostModel | None = None) -> TrainingTimeEstimate:
        """Convert the recorded workload into an estimated wall-clock time."""
        summary = self.workload_summary()
        model = cost_model or ClusterCostModel()
        return model.estimate(
            total_compute_units=summary["worker_compute_units"],
            comm_values_per_round=summary["values_transferred"] / max(self.rounds_completed, 1),
            num_rounds=max(self.rounds_completed, 1),
            cluster=self.config.cluster,
        )
