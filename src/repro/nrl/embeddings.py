"""Embedding containers.

An :class:`EmbeddingSet` holds the learned user node embeddings: a dense
matrix plus the node-id index.  It is the artefact the offline pipeline writes
to Ali-HBase (one column per dimension, per the paper's Figure 7) and the
Model Server reads back at prediction time.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import EmbeddingError


class EmbeddingSet:
    """Immutable mapping ``node id -> d-dimensional vector``."""

    def __init__(self, node_ids: Sequence[str], matrix: np.ndarray, *, name: str = "embeddings"):
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise EmbeddingError("embedding matrix must be 2-dimensional")
        if len(node_ids) != matrix.shape[0]:
            raise EmbeddingError(
                f"{len(node_ids)} node ids do not match matrix with {matrix.shape[0]} rows"
            )
        if len(set(node_ids)) != len(node_ids):
            raise EmbeddingError("node ids must be unique")
        self._node_ids: List[str] = list(node_ids)
        self._matrix = matrix
        self._index: Dict[str, int] = {node: i for i, node in enumerate(self._node_ids)}
        self.name = name

    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        return int(self._matrix.shape[1])

    @property
    def matrix(self) -> np.ndarray:
        """The raw (num_nodes, dimension) matrix; do not mutate."""
        return self._matrix

    def node_ids(self) -> List[str]:
        return list(self._node_ids)

    def __len__(self) -> int:
        return len(self._node_ids)

    def __contains__(self, node: str) -> bool:
        return node in self._index

    def __iter__(self) -> Iterator[str]:
        return iter(self._node_ids)

    def __getitem__(self, node: str) -> np.ndarray:
        try:
            return self._matrix[self._index[node]]
        except KeyError as exc:
            raise EmbeddingError(f"no embedding for node {node!r}") from exc

    def get(self, node: str, default: Optional[np.ndarray] = None) -> np.ndarray:
        """Vector for ``node``; unseen nodes fall back to ``default`` (zeros)."""
        row = self._index.get(node)
        if row is None:
            if default is None:
                return np.zeros(self.dimension, dtype=np.float64)
            return np.asarray(default, dtype=np.float64)
        return self._matrix[row]

    # ------------------------------------------------------------------
    def lookup(self, nodes: Sequence[str]) -> np.ndarray:
        """Stack vectors for ``nodes`` into a (len(nodes), d) matrix.

        Unknown nodes map to the zero vector, matching the production
        behaviour where a brand-new user has no embedding in HBase yet.
        """
        result = np.zeros((len(nodes), self.dimension), dtype=np.float64)
        for position, node in enumerate(nodes):
            row = self._index.get(node)
            if row is not None:
                result[position] = self._matrix[row]
        return result

    def subset(self, nodes: Iterable[str]) -> "EmbeddingSet":
        """Embeddings restricted to ``nodes`` (unknown ids become zero rows)."""
        nodes = list(nodes)
        return EmbeddingSet(nodes, self.lookup(nodes), name=self.name)

    def normalized(self) -> "EmbeddingSet":
        """Return a copy with L2-normalised rows (zero rows stay zero)."""
        norms = np.linalg.norm(self._matrix, axis=1, keepdims=True)
        safe = np.where(norms == 0.0, 1.0, norms)
        return EmbeddingSet(self._node_ids, self._matrix / safe, name=self.name)

    def concatenate(self, other: "EmbeddingSet") -> "EmbeddingSet":
        """Concatenate two embedding sets along the feature axis.

        Used for the paper's "DW+S2V" configurations.  The result covers the
        union of node ids; missing vectors in either input are zeros.
        """
        nodes = list(dict.fromkeys(self._node_ids + other.node_ids()))
        left = self.lookup(nodes)
        right = other.lookup(nodes)
        return EmbeddingSet(
            nodes, np.hstack([left, right]), name=f"{self.name}+{other.name}"
        )

    def cosine_similarity(self, a: str, b: str) -> float:
        """Cosine similarity between two nodes' vectors (0 when either is zero)."""
        va, vb = self.get(a), self.get(b)
        denom = np.linalg.norm(va) * np.linalg.norm(vb)
        if denom == 0.0:
            return 0.0
        return float(np.dot(va, vb) / denom)

    def most_similar(self, node: str, *, top_k: int = 10) -> List[Tuple[str, float]]:
        """Nearest neighbours of ``node`` by cosine similarity."""
        query = self.get(node)
        query_norm = np.linalg.norm(query)
        if query_norm == 0.0:
            return []
        norms = np.linalg.norm(self._matrix, axis=1)
        safe = np.where(norms == 0.0, 1.0, norms)
        scores = (self._matrix @ query) / (safe * query_norm)
        order = np.argsort(-scores)
        results: List[Tuple[str, float]] = []
        for row in order:
            candidate = self._node_ids[row]
            if candidate == node:
                continue
            results.append((candidate, float(scores[row])))
            if len(results) >= top_k:
                break
        return results

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, List[float]]:
        """Plain-dict representation (used by the HBase upload path)."""
        return {node: self._matrix[i].tolist() for node, i in self._index.items()}

    @classmethod
    def from_dict(cls, mapping: Mapping[str, Sequence[float]], *, name: str = "embeddings") -> "EmbeddingSet":
        nodes = list(mapping.keys())
        if not nodes:
            raise EmbeddingError("cannot build an EmbeddingSet from an empty mapping")
        matrix = np.array([mapping[n] for n in nodes], dtype=np.float64)
        return cls(nodes, matrix, name=name)

    def save(self, path: str | Path) -> None:
        """Persist to ``<path>.npz`` + a JSON side-car with the node index."""
        path = Path(path)
        np.savez_compressed(path.with_suffix(".npz"), matrix=self._matrix)
        payload = {"name": self.name, "node_ids": self._node_ids}
        path.with_suffix(".json").write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: str | Path) -> "EmbeddingSet":
        path = Path(path)
        payload = json.loads(path.with_suffix(".json").read_text())
        matrix = np.load(path.with_suffix(".npz"))["matrix"]
        return cls(payload["node_ids"], matrix, name=payload.get("name", "embeddings"))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EmbeddingSet(name={self.name!r}, nodes={len(self)}, dim={self.dimension})"


def top1_neighbor_recall(embeddings: "EmbeddingSet", labels: Mapping[str, object]) -> float:
    """Fraction of labelled nodes whose nearest embedding neighbour shares the label.

    The intrinsic quality metric used for dense/sparse DeepWalk A/B runs
    (recall@top-1): cosine nearest neighbour over all labelled nodes with a
    non-zero vector.  Raises if fewer than two such nodes exist.
    """
    nodes = [
        node
        for node in embeddings.node_ids()
        if node in labels and float(np.linalg.norm(embeddings[node])) > 0.0
    ]
    if len(nodes) < 2:
        raise EmbeddingError("top1_neighbor_recall needs at least two labelled nodes")
    matrix = embeddings.subset(nodes).normalized().matrix
    similarity = matrix @ matrix.T
    np.fill_diagonal(similarity, -np.inf)
    top1 = np.argmax(similarity, axis=1)
    label_list = [labels[node] for node in nodes]
    hits = sum(1 for i, j in enumerate(top1) if label_list[i] == label_list[j])
    return hits / len(nodes)
